//! Optimizers stepping on a [`Params`] store.

use crate::tape::{ParamId, Params};
use crate::tensor::Tensor;

/// Clip the global gradient norm to `max_norm` (no-op when under).
pub fn clip_grad_norm(params: &mut Params, max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for i in 0..params.len() {
        total += params.grad(ParamId(i)).norm_sq();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for i in 0..params.len() {
            let g = params.grad_mut(ParamId(i));
            for v in g.data_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// New optimizer.
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Apply one step using the accumulated gradients, then zero them.
    pub fn step(&mut self, params: &mut Params) {
        if self.velocity.len() != params.len() {
            self.velocity = (0..params.len())
                .map(|i| {
                    let v = params.value(ParamId(i));
                    Tensor::zeros(v.rows(), v.cols())
                })
                .collect();
        }
        for i in 0..params.len() {
            let g = params.grad(ParamId(i)).clone();
            let vel = &mut self.velocity[i];
            for (v, gv) in vel.data_mut().iter_mut().zip(g.data().iter()) {
                *v = self.momentum * *v + gv;
            }
            let lr = self.lr;
            let vel = self.velocity[i].clone();
            params.value_mut(ParamId(i)).axpy(-lr, &vel);
        }
        params.zero_grads();
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style; 0 disables).
    pub weight_decay: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Adam {
        self.weight_decay = wd;
        self
    }

    /// Apply one step using the accumulated gradients, then zero them.
    pub fn step(&mut self, params: &mut Params) {
        if self.m.len() != params.len() {
            let mk = |params: &Params| {
                (0..params.len())
                    .map(|i| {
                        let v = params.value(ParamId(i));
                        Tensor::zeros(v.rows(), v.cols())
                    })
                    .collect::<Vec<_>>()
            };
            self.m = mk(params);
            self.v = mk(params);
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = params.grad(ParamId(i)).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), gv) in
                m.data_mut().iter_mut().zip(v.data_mut().iter_mut()).zip(g.data().iter())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let val = params.value_mut(ParamId(i));
            for ((pv, mv), vv) in
                val.data_mut().iter_mut().zip(self.m[i].data().iter()).zip(self.v[i].data().iter())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *pv -= lr * (mhat / (vhat.sqrt() + eps) + wd * *pv);
            }
        }
        params.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    fn quadratic_loss(params: &Params, id: ParamId) -> (Tape, crate::tape::Var) {
        // loss = mean((p - 3)^2): minimum at p = 3.
        let mut tape = Tape::new();
        let p = tape.param(params, id);
        let target = Tensor::full(1, 2, 3.0);
        let loss = tape.mse_loss(p, &target);
        (tape, loss)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = Params::new();
        let id = params.add("p", Tensor::from_vec(1, 2, vec![0.0, 10.0]));
        let mut opt = Sgd::new(0.2, 0.5);
        for _ in 0..100 {
            let (mut tape, loss) = quadratic_loss(&params, id);
            tape.backward(loss, &mut params);
            opt.step(&mut params);
        }
        for &v in params.value(id).data() {
            assert!((v - 3.0).abs() < 1e-3, "{v}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = Params::new();
        let id = params.add("p", Tensor::from_vec(1, 2, vec![-5.0, 20.0]));
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let (mut tape, loss) = quadratic_loss(&params, id);
            tape.backward(loss, &mut params);
            opt.step(&mut params);
        }
        for &v in params.value(id).data() {
            assert!((v - 3.0).abs() < 1e-2, "{v}");
        }
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut params = Params::new();
        let id = params.add("p", Tensor::full(1, 1, 1.0));
        let (mut tape, loss) = quadratic_loss_1(&params, id);
        tape.backward(loss, &mut params);
        assert!(params.grad(id).get(0, 0) != 0.0);
        Adam::new(0.01).step(&mut params);
        assert_eq!(params.grad(id).get(0, 0), 0.0);
    }

    fn quadratic_loss_1(params: &Params, id: ParamId) -> (Tape, crate::tape::Var) {
        let mut tape = Tape::new();
        let p = tape.param(params, id);
        let target = Tensor::full(1, 1, 3.0);
        let loss = tape.mse_loss(p, &target);
        (tape, loss)
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let mut params = Params::new();
        let id = params.add("p", Tensor::full(1, 4, 100.0));
        let (mut tape, loss) = {
            let mut tape = Tape::new();
            let p = tape.param(&params, id);
            let target = Tensor::zeros(1, 4);
            let loss = tape.mse_loss(p, &target);
            (tape, loss)
        };
        tape.backward(loss, &mut params);
        let before = clip_grad_norm(&mut params, 1.0);
        assert!(before > 1.0);
        let after: f32 = params.grad(id).norm_sq().sqrt();
        assert!((after - 1.0).abs() < 1e-4, "{after}");
    }
}

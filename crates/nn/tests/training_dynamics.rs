//! Integration tests of the nn crate's training dynamics: whole models
//! must learn, not just pass local gradient checks.

use lite_nn::init::{normal, rng};
use lite_nn::layers::{
    normalized_adjacency, Conv1dBank, Dense, GcnLayer, Lstm, TowerMlp, TransformerBlock,
};
use lite_nn::optim::{clip_grad_norm, Adam};
use lite_nn::tape::{Params, Tape};
use lite_nn::tensor::Tensor;

#[test]
fn conv_bank_learns_a_positional_pattern() {
    // Label = does the sequence contain the motif [+1, -1] in adjacent
    // rows of channel 0; a width-2 conv must learn it.
    let mut r = rng(3);
    let mut params = Params::new();
    let bank = Conv1dBank::new(&mut params, "c", 2, &[2], 6, &mut r);
    let head = Dense::new(&mut params, "h", 6, 1, &mut r);
    let mut opt = Adam::new(0.01);

    let make = |with_motif: bool, seed: u64| -> Tensor {
        let mut x = normal(12, 2, 0.3, &mut rng(seed));
        if with_motif {
            x.set(5, 0, 2.0);
            x.set(6, 0, -2.0);
        }
        x
    };
    let mut final_loss = f32::INFINITY;
    for step in 0..250 {
        let mut tape = Tape::new();
        let mut outs = Vec::new();
        let mut targets = Tensor::zeros(8, 1);
        for i in 0..8u64 {
            let label = i % 2 == 0;
            let x = tape.leaf(make(label, 100 + step as u64 * 8 + i));
            let f = bank.forward(&mut tape, &params, x);
            outs.push(head.forward(&mut tape, &params, f));
            targets.set(i as usize, 0, if label { 1.0 } else { -1.0 });
        }
        let pred = tape.vstack(&outs);
        let loss = tape.mse_loss(pred, &targets);
        final_loss = tape.value(loss).get(0, 0);
        tape.backward(loss, &mut params);
        clip_grad_norm(&mut params, 5.0);
        opt.step(&mut params);
    }
    assert!(final_loss < 0.4, "conv did not learn the motif: loss {final_loss}");
}

#[test]
fn gcn_learns_to_count_high_degree_graphs() {
    // Two graph families on 5 nodes: a path vs a star. Target = +1/-1.
    let mut r = rng(5);
    let mut params = Params::new();
    let g1 = GcnLayer::new(&mut params, "g1", 5, 8, &mut r);
    let g2 = GcnLayer::new(&mut params, "g2", 8, 8, &mut r);
    let head = Dense::new(&mut params, "h", 8, 1, &mut r);
    let mut opt = Adam::new(0.02);

    let path = normalized_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let star = normalized_adjacency(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    // Positional one-hot node features make the structures separable.
    let mut feats = Tensor::zeros(5, 5);
    for i in 0..5 {
        feats.set(i, i, 1.0);
    }

    let mut final_loss = f32::INFINITY;
    for _ in 0..200 {
        let mut tape = Tape::new();
        let mut outs = Vec::new();
        let mut targets = Tensor::zeros(2, 1);
        for (i, a_hat) in [&path, &star].iter().enumerate() {
            let a = tape.leaf((*a_hat).clone());
            let h0 = tape.leaf(feats.clone());
            let h1 = g1.forward(&mut tape, &params, a, h0);
            let h2 = g2.forward(&mut tape, &params, a, h1);
            let pooled = tape.col_max(h2);
            outs.push(head.forward(&mut tape, &params, pooled));
            targets.set(i, 0, if i == 0 { 1.0 } else { -1.0 });
        }
        let pred = tape.vstack(&outs);
        let loss = tape.mse_loss(pred, &targets);
        final_loss = tape.value(loss).get(0, 0);
        tape.backward(loss, &mut params);
        opt.step(&mut params);
    }
    assert!(final_loss < 0.05, "GCN cannot separate path from star: {final_loss}");
}

#[test]
fn lstm_learns_first_token_dependence() {
    // Target depends only on the first timestep: the recurrent state must
    // carry it to the end.
    let mut r = rng(7);
    let mut params = Params::new();
    let lstm = Lstm::new(&mut params, "l", 2, 6, 12, &mut r);
    let head = Dense::new(&mut params, "h", 6, 1, &mut r);
    let mut opt = Adam::new(0.02);
    let mut final_loss = f32::INFINITY;
    for step in 0..250 {
        let mut tape = Tape::new();
        let mut outs = Vec::new();
        let mut targets = Tensor::zeros(4, 1);
        for i in 0..4u64 {
            let flag = i % 2 == 0;
            let mut x = normal(8, 2, 0.2, &mut rng(500 + step as u64 * 4 + i));
            x.set(0, 0, if flag { 1.5 } else { -1.5 });
            let xv = tape.leaf(x);
            let h = lstm.forward(&mut tape, &params, xv);
            outs.push(head.forward(&mut tape, &params, h));
            targets.set(i as usize, 0, if flag { 1.0 } else { -1.0 });
        }
        let pred = tape.vstack(&outs);
        let loss = tape.mse_loss(pred, &targets);
        final_loss = tape.value(loss).get(0, 0);
        tape.backward(loss, &mut params);
        clip_grad_norm(&mut params, 5.0);
        opt.step(&mut params);
    }
    assert!(final_loss < 0.3, "LSTM forgot the first token: loss {final_loss}");
}

#[test]
fn transformer_trains_without_nan() {
    let mut r = rng(11);
    let mut params = Params::new();
    let block = TransformerBlock::new(&mut params, "t", 8, 2, 16, &mut r);
    let head = Dense::new(&mut params, "h", 8, 1, &mut r);
    let mut opt = Adam::new(5e-3);
    for step in 0..40 {
        let mut tape = Tape::new();
        let x = tape.leaf(normal(10, 8, 0.5, &mut rng(900 + step)));
        let enc = block.forward(&mut tape, &params, x);
        let out = head.forward(&mut tape, &params, enc);
        let loss = tape.mse_loss(out, &Tensor::full(1, 1, 0.7));
        assert!(tape.value(loss).get(0, 0).is_finite(), "NaN at step {step}");
        tape.backward(loss, &mut params);
        clip_grad_norm(&mut params, 5.0);
        opt.step(&mut params);
    }
}

#[test]
fn tower_mlp_hidden_embedding_moves_under_grad_reverse() {
    // The adversarial update must push encoder weights in the *opposite*
    // direction of the discriminator's objective.
    let mut r = rng(13);
    let mut params = Params::new();
    let mlp = TowerMlp::new(&mut params, "m", 8, 2, 1, &mut r);
    let disc = Dense::new(&mut params, "d", mlp.hidden_width(), 1, &mut r);
    let x = normal(6, 8, 1.0, &mut rng(14));
    let labels = Tensor::from_vec(6, 1, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);

    // Gradient of the first MLP weight under plain vs reversed loss.
    let grad_first = |params: &mut Params, reversed: bool| -> f32 {
        params.zero_grads();
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let (_, hidden) = mlp.forward_with_hidden(&mut tape, params, xv);
        let h = if reversed { tape.grad_reverse(hidden, 1.0) } else { hidden };
        let logits = disc.forward(&mut tape, params, h);
        let loss = tape.bce_logits_loss(logits, &labels);
        tape.backward(loss, params);
        // First hidden layer's weight gradient, first element.
        let first_id = lite_nn::tape::ParamId(0);
        params.grad(first_id).data()[0]
    };
    let plain = grad_first(&mut params, false);
    let reversed = grad_first(&mut params, true);
    assert!((plain + reversed).abs() < 1e-6 * (1.0 + plain.abs()), "{plain} vs {reversed}");
}

//! Shared tuner runners for Table VI and Figure 8.
//!
//! Each competitor tunes one application instance on the production
//! cluster. Methods that execute trial configurations (BO, DDPG, DDPG-C)
//! charge each trial's *simulated* execution time against their budget,
//! exactly how the paper accounts tuning overhead; LITE recommends from
//! the model in milliseconds.

use lite_bayesopt::{BoObservation, BoTuner};
use lite_core::experiment::Dataset;
use lite_core::recommend::LiteTuner;
use lite_ddpg::DdpgTuner;
use lite_metrics::ranking::EXECUTION_CAP_S;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf, NUM_KNOBS};
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::DataSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The tuning budget for the trial-based competitors (the paper's "2h").
pub const TUNING_BUDGET_S: f64 = 7200.0;

/// Outcome of tuning one application with one method.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Best configuration's execution time (capped).
    pub time_s: f64,
    /// (overhead seconds, best-so-far) trajectory for trial-based methods;
    /// a single point for one-shot methods.
    pub trace: Vec<(f64, f64)>,
    /// Wall-clock seconds this tuner spent *deciding* (model inference;
    /// excludes simulated application time).
    pub decide_wall_s: f64,
}

/// Execute a configuration on the target workload (capped).
pub fn execute(
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    conf: &SparkConf,
    seed: u64,
) -> f64 {
    simulate(cluster, conf, &build_job(app, data), seed).capped_time(EXECUTION_CAP_S)
}

/// One-shot method: evaluate a fixed configuration.
pub fn tune_fixed(
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    conf: &SparkConf,
    seed: u64,
) -> TuneOutcome {
    let t = execute(cluster, app, data, conf, seed);
    TuneOutcome { time_s: t, trace: vec![(t, t)], decide_wall_s: 0.0 }
}

/// Rank `n` random configurations with a predictive model and execute the
/// argmin (the paper's "MLP" competitor protocol, also reused for any
/// `predict_app`-style model without ACG).
pub fn tune_by_model_ranking(
    predict: impl Fn(&SparkConf) -> f64,
    space: &ConfSpace,
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    n: usize,
    seed: u64,
) -> TuneOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let wall = Instant::now();
    let confs: Vec<SparkConf> = (0..n).map(|_| space.sample(&mut rng)).collect();
    let score = |c: &SparkConf| -> f64 {
        if lite_sparksim::exec::preflight(cluster, c, data.bytes).is_err() {
            EXECUTION_CAP_S * 10.0
        } else {
            predict(c)
        }
    };
    let best = confs
        .iter()
        .min_by(|a, b| score(a).total_cmp(&score(b)))
        .expect("non-empty candidates")
        .clone();
    let decide_wall_s = wall.elapsed().as_secs_f64();
    let t = execute(cluster, app, data, &best, seed ^ 0xeec);
    TuneOutcome { time_s: t, trace: vec![(t, t)], decide_wall_s }
}

/// LITE: ACG + NECS ranking, execute the top recommendation.
pub fn tune_lite(
    tuner: &LiteTuner,
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    seed: u64,
) -> TuneOutcome {
    let wall = Instant::now();
    let ranked = tuner
        .recommend(app, data, cluster, seed)
        .expect("app in training set (use recommend_cold otherwise)");
    let decide_wall_s = wall.elapsed().as_secs_f64();
    let t = execute(cluster, app, data, &ranked[0].conf, seed ^ 0x117e);
    TuneOutcome { time_s: t, trace: vec![(t, t)], decide_wall_s }
}

/// BO(2h): GP + EI over the normalized cube, warm-started OtterTune-style
/// from the app's best training runs (their small-data times scaled by the
/// data-volume ratio serve as prior observations).
pub fn tune_bo(
    ds: &Dataset,
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    seed: u64,
) -> TuneOutcome {
    // Five most similar training instances: same app, largest inputs,
    // fastest runs first.
    let mut candidates: Vec<&lite_core::experiment::AppRun> =
        ds.runs.iter().filter(|r| r.app == app).collect();
    candidates.sort_by(|a, b| {
        b.data.bytes.cmp(&a.data.bytes).then(ds.run_time(a).total_cmp(&ds.run_time(b)))
    });
    let warm: Vec<BoObservation> = candidates
        .iter()
        .take(5)
        .map(|r| {
            let scale = data.bytes as f64 / r.data.bytes.max(1) as f64;
            BoObservation {
                point: r.conf.normalized(&ds.space).to_vec(),
                time_s: (ds.run_time(r) * scale).min(EXECUTION_CAP_S),
            }
        })
        .collect();

    let wall = Instant::now();
    let tuner = BoTuner::new(NUM_KNOBS, seed);
    let space = ds.space.clone();
    let mut eval = 0u64;
    let (trace, _) = tuner.run(
        &warm,
        |p| {
            let mut u = [0.0; NUM_KNOBS];
            u.copy_from_slice(p);
            let conf = space.decode(&u);
            eval += 1;
            execute(cluster, app, data, &conf, seed ^ (eval << 20))
        },
        TUNING_BUDGET_S,
    );
    let decide_wall_s = wall.elapsed().as_secs_f64();
    let best = trace.last().map(|t| t.best_s).unwrap_or(EXECUTION_CAP_S);
    TuneOutcome {
        time_s: best,
        trace: trace.iter().map(|t| (t.overhead_s, t.best_s)).collect(),
        decide_wall_s,
    }
}

/// DDPG(2h) / DDPG-C(2h). `code_features` empty = plain DDPG (CDBTune
/// state: inner status); non-empty = DDPG-C (QTune: + code features).
pub fn tune_ddpg(
    space: &ConfSpace,
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    code_features: &[f32],
    seed: u64,
) -> TuneOutcome {
    let plan = build_job(app, data);
    let make_state = |result: &lite_sparksim::result::RunResult| -> Vec<f32> {
        let mut s: Vec<f32> = result.inner_status().iter().map(|v| *v as f32).collect();
        s.extend_from_slice(code_features);
        s
    };
    let wall = Instant::now();
    // First trial: default configuration anchors the reward.
    let first = simulate(cluster, &space.default_conf(), &plan, seed ^ 0xd0);
    let t_default = first.capped_time(EXECUTION_CAP_S);
    let initial_state = make_state(&first);

    let mut tuner = DdpgTuner::new(initial_state.len(), NUM_KNOBS, seed);
    let mut eval = 0u64;
    let space2 = space.clone();
    let (trace, _) = tuner.run(
        initial_state,
        t_default,
        |action| {
            let mut u = [0.0; NUM_KNOBS];
            for (o, a) in u.iter_mut().zip(action.iter()) {
                *o = *a as f64;
            }
            let conf = space2.decode(&u);
            eval += 1;
            let result = simulate(cluster, &conf, &plan, seed ^ (eval << 18));
            (result.capped_time(EXECUTION_CAP_S), make_state(&result))
        },
        TUNING_BUDGET_S - t_default,
    );
    let decide_wall_s = wall.elapsed().as_secs_f64();
    let best = trace.last().map(|t| t.best_s.min(t_default)).unwrap_or(t_default);
    let mut full_trace = vec![(t_default, t_default)];
    full_trace.extend(trace.iter().map(|t| (t_default + t.overhead_s, t.best_s.min(t_default))));
    TuneOutcome { time_s: best, trace: full_trace, decide_wall_s }
}

/// App-level code features for DDPG-C: the operation histogram of the
/// application's plan, L1-normalized.
pub fn app_code_features(ds: &Dataset, app: AppId, data: &DataSpec) -> Vec<f32> {
    let w = ds.registry.op_onehot_width();
    let mut hist = vec![0.0f32; w];
    let plan = build_job(app, data);
    for stage in &plan.stages {
        if let Some(key) = ds.registry.key_of(app, &stage.name) {
            for &op in &ds.registry.get(key).dag_ops {
                hist[op] += 1.0;
            }
        }
    }
    let total: f32 = hist.iter().sum();
    if total > 0.0 {
        for h in &mut hist {
            *h /= total;
        }
    }
    hist
}

/// Unified-dispatch runner: any tuner behind the
/// [`Tuner`](lite_core::tuner::Tuner) trait proposes, the simulator
/// executes, and the outcome feeds back through `observe` — the bench-side
/// twin of `Service::start_tuner`, so benches exercise exactly the
/// propose/observe contract the service serves.
pub fn tune_unified(
    tuner: &mut dyn lite_core::tuner::Tuner,
    cluster: &ClusterSpec,
    app: AppId,
    data: &DataSpec,
    rounds: usize,
    seed: u64,
) -> TuneOutcome {
    use lite_core::tuner::{Feedback, TuneRequest};
    let plan = build_job(app, data);
    let mut best = f64::INFINITY;
    let mut overhead = 0.0;
    let mut trace = Vec::new();
    let mut decide_wall_s = 0.0;
    for i in 0..rounds.max(1) {
        let round_seed = seed.wrapping_add(i as u64);
        let wall = Instant::now();
        let result = tuner.recommend(&TuneRequest {
            app,
            data: *data,
            cluster: cluster.clone(),
            k: 1,
            seed: round_seed,
        });
        decide_wall_s += wall.elapsed().as_secs_f64();
        let conf = match result {
            Ok(r) if !r.ranked.is_empty() => r.ranked[0].conf.clone(),
            // Degradation ladder: an unavailable or cold tuner falls back
            // to the default configuration rather than aborting the run.
            _ => ConfSpace::table_iv().default_conf(),
        };
        let run = simulate(cluster, &conf, &plan, round_seed ^ 0x0d15_ea5e);
        let t = run.capped_time(EXECUTION_CAP_S);
        overhead += t;
        best = best.min(t);
        trace.push((overhead, best));
        tuner.observe(Feedback { app, data: *data, cluster: cluster.clone(), conf, result: run });
    }
    TuneOutcome { time_s: best, trace, decide_wall_s }
}

//! # lite-bench — the experiment harness
//!
//! One binary per paper table/figure (see DESIGN.md §3) plus criterion
//! micro-benches. This library holds the shared protocol pieces:
//! dataset construction, the evaluation settings grid (clusters A/B/C on
//! validation data + "Large" on cluster C test data), gold-ranking
//! evaluation, the rule-based "Manual" tuner, and table printing.
//!
//! Set `LITE_BENCH_QUICK=1` to shrink every experiment (fewer sampled
//! configurations, fewer epochs) for smoke runs.

// The table printers below are a legitimate stdout owner (bench output is
// the deliverable), exempted from the workspace print_stdout deny.
#![allow(clippy::print_stdout)]

pub mod tuning;

use lite_core::baselines::AnyModel;
use lite_core::experiment::{gold_times, Dataset, DatasetBuilder, PredictionContext};
use lite_metrics::ranking::{hr_at_k, ndcg_at_k};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, Knob, SparkConf};
use lite_workloads::apps::AppId;
use lite_workloads::data::{DataSpec, SizeTier};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Whether quick (smoke) mode is enabled via `LITE_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("LITE_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Directory run manifests are appended to (override with
/// `LITE_BENCH_RESULTS`; defaults to `results/` under the cwd).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("LITE_BENCH_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Append a report's manifest to [`results_dir`]. Failures are logged, not
/// fatal — a read-only checkout should not kill a finished bench run.
pub fn finish_report(report: &lite_obs::Report) {
    match report.finish(results_dir()) {
        Ok(path) => eprintln!("[report] manifest appended to {}", path.display()),
        Err(e) => eprintln!("[report] could not write manifest: {e}"),
    }
}

/// Configurations sampled per training cell (paper-scale vs quick).
pub fn train_confs_per_cell() -> usize {
    if quick_mode() {
        2
    } else {
        6
    }
}

/// NECS epochs for full experiments.
pub fn necs_epochs() -> usize {
    if quick_mode() {
        4
    } else {
        30
    }
}

/// Candidate configurations per ranking evaluation.
pub fn num_candidates() -> usize {
    if quick_mode() {
        8
    } else {
        40
    }
}

/// Build the paper's offline training dataset (all apps, clusters A/B/C,
/// four small tiers).
pub fn training_dataset(seed: u64) -> Dataset {
    DatasetBuilder::paper_training(train_confs_per_cell(), seed).build()
}

/// One evaluation setting of Table VII: an application instance on a
/// cluster with a data tier.
#[derive(Debug, Clone)]
pub struct EvalSetting {
    /// Group label: `"Cluster A"`, `"Cluster B"`, `"Cluster C"`, `"Large"`.
    pub group: &'static str,
    /// Application.
    pub app: AppId,
    /// Cluster the instance runs on.
    pub cluster: ClusterSpec,
    /// Input data.
    pub data: DataSpec,
}

/// The Table VII evaluation grid: every app on each cluster with
/// validation (mid) data, plus large test data on cluster C.
pub fn eval_settings() -> Vec<EvalSetting> {
    let mut out = Vec::new();
    let groups: [(&'static str, ClusterSpec, SizeTier); 4] = [
        ("Cluster A", ClusterSpec::cluster_a(), SizeTier::Valid),
        ("Cluster B", ClusterSpec::cluster_b(), SizeTier::Valid),
        ("Cluster C", ClusterSpec::cluster_c(), SizeTier::Valid),
        ("Large", ClusterSpec::cluster_c(), SizeTier::Test),
    ];
    for (group, cluster, tier) in groups {
        for app in AppId::all() {
            out.push(EvalSetting { group, app, cluster: cluster.clone(), data: app.dataset(tier) });
        }
    }
    out
}

/// Gold candidate set for one setting: seeded random configurations plus
/// their simulated (capped) execution times.
pub struct GoldSet {
    /// Candidate configurations.
    pub confs: Vec<SparkConf>,
    /// Simulated execution times (failure-capped).
    pub times: Vec<f64>,
}

/// Build the gold set for a setting (deterministic per seed).
pub fn gold_set(space: &ConfSpace, setting: &EvalSetting, n: usize, seed: u64) -> GoldSet {
    let mut rng = StdRng::seed_from_u64(seed ^ ((setting.app.index() as u64) << 8));
    let confs: Vec<SparkConf> = (0..n).map(|_| space.sample(&mut rng)).collect();
    let times = gold_times(&setting.cluster, setting.app, &setting.data, &confs, seed);
    GoldSet { confs, times }
}

/// HR@5 / NDCG@5 of a model on one setting, given its gold set. Returns
/// `None` when the model cannot produce a warm prediction context.
pub fn ranking_scores(
    model: &AnyModel,
    ds: &Dataset,
    setting: &EvalSetting,
    gold: &GoldSet,
) -> Option<(f64, f64)> {
    let ctx = PredictionContext::warm(&ds.registry, setting.app, &setting.data, &setting.cluster)?;
    let preds: Vec<f64> = gold
        .confs
        .iter()
        .map(|c| {
            // Statically invalid configurations are rejected by the
            // engine's pre-flight before any model is consulted — every
            // method gets this check uniformly.
            if lite_sparksim::exec::preflight(&setting.cluster, c, setting.data.bytes).is_err() {
                lite_metrics::ranking::EXECUTION_CAP_S * 10.0
            } else {
                model.predict_app(&ds.registry, &ctx, c)
            }
        })
        .collect();
    Some((hr_at_k(&preds, &gold.times, 5), ndcg_at_k(&preds, &gold.times, 5)))
}

/// The rule-based "Manual" tuner: encodes the standard cloudera/databricks
/// sizing guidance a hired expert applies (5 cores per executor, leave one
/// core and 1 GB per node for the OS, parallelism = 2–3× total cores,
/// 128 MB partitions, compression on).
pub fn manual_conf(space: &ConfSpace, cluster: &ClusterSpec) -> SparkConf {
    let mut c = space.default_conf();
    let cores_per_exec = 5.0_f64.min(cluster.cores_per_node as f64 - 1.0).max(1.0);
    let execs_per_node = ((cluster.cores_per_node as f64 - 1.0) / cores_per_exec).floor().max(1.0);
    let instances = execs_per_node * cluster.nodes as f64;
    let mem_per_exec =
        ((cluster.mem_gb_per_node - 1.0) / execs_per_node * 0.9 - 0.5).floor().max(1.0);
    c.set(space, Knob::ExecutorCores, cores_per_exec);
    c.set(space, Knob::ExecutorInstances, instances);
    c.set(space, Knob::ExecutorMemoryGb, mem_per_exec);
    c.set(space, Knob::ExecutorMemoryOverheadMb, (mem_per_exec * 1024.0 * 0.1).max(384.0));
    c.set(space, Knob::DefaultParallelism, 2.5 * instances * cores_per_exec);
    c.set(space, Knob::DriverMemoryGb, 4.0);
    c.set(space, Knob::DriverCores, 2.0);
    c.set(space, Knob::FilesMaxPartitionMb, 128.0);
    c.set(space, Knob::MemoryFraction, 0.6);
    c.set(space, Knob::MemoryStorageFraction, 0.5);
    c.set(space, Knob::ReducerMaxSizeInFlightMb, 48.0);
    c.set(space, Knob::ShuffleCompress, 1.0);
    c.set(space, Knob::ShuffleSpillCompress, 1.0);
    c.set(space, Knob::ShuffleFileBufferKb, 64.0);
    c
}

/// Print a markdown-ish table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (c, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!(" {c:>w$} |"));
    }
    println!("{line}");
}

/// Print a header + separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let mut line = String::from("|");
    for w in widths {
        line.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{line}");
}

/// Format a float to 4 decimal places (ranking metrics).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Format seconds like the paper's t columns.
pub fn secs(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_grid_covers_four_groups_times_fifteen_apps() {
        let s = eval_settings();
        assert_eq!(s.len(), 60);
        assert_eq!(s.iter().filter(|e| e.group == "Large").count(), 15);
    }

    #[test]
    fn manual_conf_is_valid_and_feasible() {
        let space = ConfSpace::table_iv();
        for cluster in ClusterSpec::all_evaluation_clusters() {
            let c = manual_conf(&space, &cluster);
            assert!(space.is_valid(&c), "{}: invalid manual conf", cluster.name);
            assert!(
                lite_sparksim::exec::allocate(&cluster, &c).is_some(),
                "{}: manual conf does not allocate",
                cluster.name
            );
        }
    }

    #[test]
    fn gold_set_is_deterministic() {
        let space = ConfSpace::table_iv();
        let setting = &eval_settings()[0];
        let a = gold_set(&space, setting, 5, 3);
        let b = gold_set(&space, setting, 5, 3);
        assert_eq!(a.times, b.times);
    }
}

//! Table IX: ranking performance of NECS with vs without Adaptive Model
//! Update, per cluster, with a Wilcoxon signed-rank test on the increase.
//!
//! Protocol (paper Section V-F): train NECS per cluster on its training
//! instances; split the cluster's validation applications into two folds;
//! fine-tune on the feedback of one fold via AMU; evaluate ranking on the
//! other fold; four runs with different fold splits.

use lite_bench::{f4, finish_report, gold_set, necs_epochs, num_candidates, EvalSetting};
use lite_core::amu::{adaptive_model_update, AmuConfig};
use lite_core::experiment::{extract_stage_instances, Dataset, DatasetBuilder};
use lite_core::features::StageInstance;
use lite_core::necs::{Necs, NecsConfig};
use lite_metrics::stats::wilcoxon_signed_rank;
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("table09_amu");
    report.field("quick_mode", lite_bench::quick_mode());
    let clusters = ClusterSpec::all_evaluation_clusters();
    let widths = [10usize, 9, 9, 9, 9, 9, 9];
    let mut table = report.table(
        "Table IX: HR@5 / NDCG@5 for NECS vs NECS_u (Adaptive Model Update)",
        &["cluster", "HR", "HR_u", "p(HR)", "NDCG", "NDCG_u", "p(NDCG)"],
        &widths,
    );

    for cluster in &clusters {
        // Per-cluster training set (all apps, small tiers, this cluster).
        let ds: Dataset = DatasetBuilder {
            apps: AppId::all().to_vec(),
            clusters: vec![cluster.clone()],
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell: lite_bench::train_confs_per_cell(),
            seed: 21,
        }
        .build();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let base = Necs::train(
            &ds.registry,
            &ds.space,
            &refs,
            NecsConfig { epochs: necs_epochs(), ..Default::default() },
        );
        eprintln!(
            "[table09] {} base NECS ready ({:.0}s)",
            cluster.name,
            t0.elapsed().as_secs_f64()
        );

        let mut hr_pairs: Vec<(f64, f64)> = Vec::new();
        let mut ndcg_pairs: Vec<(f64, f64)> = Vec::new();
        let runs = if lite_bench::quick_mode() { 1 } else { 4 };
        for run in 0..runs {
            // Split validation apps into two folds.
            let mut apps: Vec<AppId> = AppId::all().to_vec();
            let mut rng = StdRng::seed_from_u64(500 + run);
            apps.shuffle(&mut rng);
            let (feedback_apps, eval_apps) = apps.split_at(5);

            // Collect feedback: recommended-ish runs of the feedback fold
            // on validation data (the "newly collected feedback" DT).
            let mut target: Vec<StageInstance> = Vec::new();
            for (k, &app) in feedback_apps.iter().enumerate() {
                let data = app.dataset(SizeTier::Valid);
                for j in 0..4 {
                    let conf = ds.space.sample(&mut rng);
                    let result =
                        simulate(cluster, &conf, &build_job(app, &data), 910 + 17 * k as u64 + j);
                    extract_stage_instances(
                        &ds.registry,
                        app,
                        &conf,
                        &data,
                        cluster,
                        &result,
                        usize::MAX - (k * 8 + j as usize),
                        &mut target,
                    );
                }
            }
            let tgt_refs: Vec<&StageInstance> = target.iter().collect();

            // Fine-tune a copy via AMU.
            let mut updated = base.clone();
            adaptive_model_update(
                &mut updated,
                &ds.registry,
                &refs,
                &tgt_refs,
                &AmuConfig { epochs: 4, ..Default::default() },
            );

            // Evaluate both on the held-out fold's validation instances.
            for &app in eval_apps {
                let setting = EvalSetting {
                    group: "valid",
                    app,
                    cluster: cluster.clone(),
                    data: app.dataset(SizeTier::Valid),
                };
                let gold = gold_set(
                    &ds.space,
                    &setting,
                    num_candidates(),
                    600 + run * 37 + app.index() as u64,
                );
                let score = |m: &Necs| {
                    let model = AnyModelRef(m);
                    model.scores(&ds, &setting, &gold)
                };
                if let (Some((h0, n0)), Some((h1, n1))) = (score(&base), score(&updated)) {
                    hr_pairs.push((h0, h1));
                    ndcg_pairs.push((n0, n1));
                }
            }
            eprintln!(
                "[table09] {} run {} done ({:.0}s)",
                cluster.name,
                run,
                t0.elapsed().as_secs_f64()
            );
        }

        let mean = |v: &[(f64, f64)], i: usize| -> f64 {
            v.iter().map(|p| if i == 0 { p.0 } else { p.1 }).sum::<f64>() / v.len() as f64
        };
        let p_hr = wilcoxon_signed_rank(
            &hr_pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
            &hr_pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
        );
        let p_ndcg = wilcoxon_signed_rank(
            &ndcg_pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
            &ndcg_pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
        );
        table.row(&[
            cluster.name.clone(),
            f4(mean(&hr_pairs, 0)),
            f4(mean(&hr_pairs, 1)),
            format!("{:.4}", p_hr.p_value),
            f4(mean(&ndcg_pairs, 0)),
            f4(mean(&ndcg_pairs, 1)),
            format!("{:.4}", p_ndcg.p_value),
        ]);
    }
    report.note("\nPaper shape: NECS_u >= NECS on every cluster with p < 0.05.");
    finish_report(&report);
    eprintln!("[table09] total {:.0}s", t0.elapsed().as_secs_f64());
}

/// Minimal scoring shim over a borrowed NECS (avoids cloning into
/// `AnyModel`).
struct AnyModelRef<'a>(&'a Necs);

impl AnyModelRef<'_> {
    fn scores(
        &self,
        ds: &Dataset,
        setting: &EvalSetting,
        gold: &lite_bench::GoldSet,
    ) -> Option<(f64, f64)> {
        let ctx = lite_core::experiment::PredictionContext::warm(
            &ds.registry,
            setting.app,
            &setting.data,
            &setting.cluster,
        )?;
        let preds: Vec<f64> = gold
            .confs
            .iter()
            .map(|c| {
                if lite_sparksim::exec::preflight(&setting.cluster, c, setting.data.bytes).is_err()
                {
                    lite_metrics::ranking::EXECUTION_CAP_S * 10.0
                } else {
                    self.0.predict_app(&ds.registry, &ctx, c)
                }
            })
            .collect();
        Some((
            lite_metrics::ranking::hr_at_k(&preds, &gold.times, 5),
            lite_metrics::ranking::ndcg_at_k(&preds, &gold.times, 5),
        ))
    }
}

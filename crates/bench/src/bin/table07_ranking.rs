//! Table VII: ranking performance (HR@5 / NDCG@5) of the full model grid
//! across clusters A/B/C (validation data) and Large (test data, cluster
//! C).
//!
//! Grid: {LightGBM, MLP} × {W, S, WC, SC, SCG} + LSTM+MLP +
//! Transformer+MLP + GCN+MLP + NECS. Paper shape to reproduce:
//! code features beat no-code features (WC > W, SC > S), stage-level
//! beats app-level (SC > WC), and NECS is best overall, including on
//! Large jobs.

use lite_bench::{
    eval_settings, f4, finish_report, gold_set, necs_epochs, num_candidates, ranking_scores,
    training_dataset,
};
use lite_core::baselines::{
    AnyModel, EncoderKind, EstimatorKind, FeatureSet, NeuralBaseline, TabularModel,
};
use lite_core::features::StageInstance;
use lite_core::necs::{Necs, NecsConfig};
use lite_obs::Report;
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("table07_ranking");
    report.field("quick_mode", lite_bench::quick_mode());
    let ds = report.phase("dataset", || training_dataset(1));
    report.field("dataset_runs", ds.runs.len());
    report.field("dataset_instances", ds.instances.len());
    eprintln!(
        "[table07] dataset: {} runs / {} instances ({:.0}s)",
        ds.runs.len(),
        ds.instances.len(),
        t0.elapsed().as_secs_f64()
    );
    let refs: Vec<&StageInstance> = ds.instances.iter().collect();

    // Gold sets, shared by every model: two independent candidate draws
    // per setting to cut ranking-metric variance.
    let settings: Vec<_> = eval_settings().into_iter().flat_map(|s| [s.clone(), s]).collect();
    let golds: Vec<_> = report.phase("gold_sets", || {
        settings
            .iter()
            .enumerate()
            .map(|(i, s)| gold_set(&ds.space, s, num_candidates(), 7 + i as u64))
            .collect::<Vec<_>>()
    });

    let mut models: Vec<AnyModel> = report.phase("train", || {
        let mut models: Vec<AnyModel> = Vec::new();
        for kind in [EstimatorKind::Gbdt, EstimatorKind::Mlp] {
            for fs in
                [FeatureSet::W, FeatureSet::S, FeatureSet::Wc, FeatureSet::Sc, FeatureSet::Scg]
            {
                let t = Instant::now();
                let m = TabularModel::fit(&ds, kind, fs, 11);
                eprintln!("[table07] trained {} in {:.0}s", m.label(), t.elapsed().as_secs_f64());
                models.push(AnyModel::Tabular(m));
            }
        }
        let seq_epochs = (necs_epochs() / 3).max(4);
        for enc in [EncoderKind::Lstm, EncoderKind::Transformer, EncoderKind::Gcn] {
            let t = Instant::now();
            let m = NeuralBaseline::train(&ds, &refs, enc, seq_epochs, 13);
            eprintln!("[table07] trained {} in {:.0}s", enc.label(), t.elapsed().as_secs_f64());
            models.push(AnyModel::Neural(m));
        }
        models
    });
    {
        let t = Instant::now();
        let necs = report.phase("train_necs", || {
            Necs::train(
                &ds.registry,
                &ds.space,
                &refs,
                NecsConfig { epochs: necs_epochs(), ..Default::default() },
            )
        });
        eprintln!("[table07] trained NECS in {:.0}s", t.elapsed().as_secs_f64());
        models.push(AnyModel::Necs(necs));
    }

    // Evaluate: average per group.
    let groups = ["Cluster A", "Cluster B", "Cluster C", "Large"];
    let widths = [16usize, 17, 17, 17, 17];
    let mut header = vec!["model"];
    header.extend(groups);
    let mut table = report.table(
        "Table VII: ranking performance (HR@5 | NDCG@5), averaged over 15 applications",
        &header,
        &widths,
    );
    let mut summary: HashMap<String, f64> = HashMap::new();
    for model in &models {
        let mut row = vec![model.label()];
        for group in groups {
            let mut hr = Vec::new();
            let mut ndcg = Vec::new();
            for (setting, gold) in settings.iter().zip(golds.iter()) {
                if setting.group != group {
                    continue;
                }
                if let Some((h, n)) = ranking_scores(model, &ds, setting, gold) {
                    hr.push(h);
                    ndcg.push(n);
                }
            }
            let mh = hr.iter().sum::<f64>() / hr.len().max(1) as f64;
            let mn = ndcg.iter().sum::<f64>() / ndcg.len().max(1) as f64;
            if group == "Large" {
                summary.insert(model.label(), mn);
            }
            row.push(format!("{} | {}", f4(mh), f4(mn)));
        }
        table.row(&row);
    }

    let necs_large = summary.get("NECS").copied().unwrap_or(0.0);
    let best_other = summary
        .iter()
        .filter(|(k, _)| k.as_str() != "NECS")
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    report.field("necs_large_ndcg5", necs_large);
    report.field("best_competitor_large_ndcg5", best_other);
    report.note(&format!(
        "\nLarge-jobs NDCG@5: NECS {} vs best competitor {} (paper: NECS ~10% ahead on large jobs).",
        f4(necs_large),
        f4(best_other)
    ));
    finish_report(&report);
    eprintln!("[table07] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! Table VII: ranking performance (HR@5 / NDCG@5) of the full model grid
//! across clusters A/B/C (validation data) and Large (test data, cluster
//! C).
//!
//! Grid: {LightGBM, MLP} × {W, S, WC, SC, SCG} + LSTM+MLP +
//! Transformer+MLP + GCN+MLP + NECS. Paper shape to reproduce:
//! code features beat no-code features (WC > W, SC > S), stage-level
//! beats app-level (SC > WC), and NECS is best overall, including on
//! Large jobs.

use lite_bench::{
    eval_settings, f4, gold_set, num_candidates, print_header, print_row, ranking_scores,
    training_dataset, necs_epochs,
};
use lite_core::baselines::{
    AnyModel, EncoderKind, EstimatorKind, FeatureSet, NeuralBaseline, TabularModel,
};
use lite_core::features::StageInstance;
use lite_core::necs::{Necs, NecsConfig};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let ds = training_dataset(1);
    eprintln!(
        "[table07] dataset: {} runs / {} instances ({:.0}s)",
        ds.runs.len(),
        ds.instances.len(),
        t0.elapsed().as_secs_f64()
    );
    let refs: Vec<&StageInstance> = ds.instances.iter().collect();

    // Gold sets, shared by every model: two independent candidate draws
    // per setting to cut ranking-metric variance.
    let settings: Vec<_> = eval_settings()
        .into_iter()
        .flat_map(|s| [s.clone(), s])
        .collect();
    let golds: Vec<_> = settings
        .iter()
        .enumerate()
        .map(|(i, s)| gold_set(&ds.space, s, num_candidates(), 7 + i as u64))
        .collect();

    let mut models: Vec<AnyModel> = Vec::new();
    for kind in [EstimatorKind::Gbdt, EstimatorKind::Mlp] {
        for fs in [FeatureSet::W, FeatureSet::S, FeatureSet::Wc, FeatureSet::Sc, FeatureSet::Scg] {
            let t = Instant::now();
            let m = TabularModel::fit(&ds, kind, fs, 11);
            eprintln!("[table07] trained {} in {:.0}s", m.label(), t.elapsed().as_secs_f64());
            models.push(AnyModel::Tabular(m));
        }
    }
    let seq_epochs = (necs_epochs() / 3).max(4);
    for enc in [EncoderKind::Lstm, EncoderKind::Transformer, EncoderKind::Gcn] {
        let t = Instant::now();
        let m = NeuralBaseline::train(&ds, &refs, enc, seq_epochs, 13);
        eprintln!("[table07] trained {} in {:.0}s", enc.label(), t.elapsed().as_secs_f64());
        models.push(AnyModel::Neural(m));
    }
    {
        let t = Instant::now();
        let necs = Necs::train(
            &ds.registry,
            &ds.space,
            &refs,
            NecsConfig { epochs: necs_epochs(), ..Default::default() },
        );
        eprintln!("[table07] trained NECS in {:.0}s", t.elapsed().as_secs_f64());
        models.push(AnyModel::Necs(necs));
    }

    // Evaluate: average per group.
    let groups = ["Cluster A", "Cluster B", "Cluster C", "Large"];
    println!("\n# Table VII: ranking performance (HR@5 | NDCG@5), averaged over 15 applications\n");
    let widths = [16usize, 17, 17, 17, 17];
    let mut header = vec!["model"];
    header.extend(groups);
    print_header(&header, &widths);
    let mut summary: HashMap<String, f64> = HashMap::new();
    for model in &models {
        let mut row = vec![model.label()];
        for group in groups {
            let mut hr = Vec::new();
            let mut ndcg = Vec::new();
            for (setting, gold) in settings.iter().zip(golds.iter()) {
                if setting.group != group {
                    continue;
                }
                if let Some((h, n)) = ranking_scores(model, &ds, setting, gold) {
                    hr.push(h);
                    ndcg.push(n);
                }
            }
            let mh = hr.iter().sum::<f64>() / hr.len().max(1) as f64;
            let mn = ndcg.iter().sum::<f64>() / ndcg.len().max(1) as f64;
            if group == "Large" {
                summary.insert(model.label(), mn);
            }
            row.push(format!("{} | {}", f4(mh), f4(mn)));
        }
        print_row(&row, &widths);
    }

    let necs_large = summary.get("NECS").copied().unwrap_or(0.0);
    let best_other = summary
        .iter()
        .filter(|(k, _)| k.as_str() != "NECS")
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nLarge-jobs NDCG@5: NECS {} vs best competitor {} (paper: NECS ~10% ahead on large jobs).",
        f4(necs_large),
        f4(best_other)
    );
    eprintln!("[table07] total {:.0}s", t0.elapsed().as_secs_f64());
}

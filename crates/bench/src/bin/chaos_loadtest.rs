//! Chaos load test: the tuning service under an armed fault injector.
//!
//! Four phases, reported into `results/chaos_loadtest.manifest.jsonl`:
//!
//! 1. **baseline** — fault-free service; resilient TCP clients record the
//!    reference p99 latency.
//! 2. **chaos** — the same mix with torn frames, injected request latency,
//!    scoring failures, updater panics and failed swaps, plus simulator
//!    wounds (executor loss, stragglers, forced OOM/spill) on every
//!    feedback run. Proves: no request is lost forever, no `Internal`
//!    errors surface, the degraded service keeps answering, and p99 stays
//!    within 5x of baseline.
//! 3. **breaker drill** — a 100% torn-frame storm trips the client-side
//!    circuit breaker; disarming the injector lets it walk
//!    Open -> HalfOpen -> Closed.
//! 4. **backends** — LITE, BO, and DDPG behind the unified `Tuner` trait,
//!    each serving propose/observe rounds through `Service::start_tuner`.
//!
//! `--smoke` (or `LITE_BENCH_QUICK=1`) shrinks every phase for CI. Exit
//! status is non-zero when a request is permanently lost or an `Internal`
//! error reaches a client.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_bench::finish_report;
use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_core::tuner::Tuner;
use lite_obs::{Registry, Report, Tracer};
use lite_serve::net::serve_tcp;
use lite_serve::{
    BreakerConfig, BreakerState, ClusterRef, ErrorCode, ModelSnapshot, Request, ResilientClient,
    RetryPolicy, ServeConfig, Service, ServiceHandle,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::ConfSpace;
use lite_sparksim::exec::{simulate_faulted, SimObs};
use lite_sparksim::fault::{FaultInjector, FaultKind};
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;

const SERVED_APPS: [AppId; 2] = [AppId::Sort, AppId::KMeans];

struct PhaseStats {
    latencies_s: Vec<f64>,
    lost: u64,
    internal: u64,
}

fn p99(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    latencies[(latencies.len() - 1) * 99 / 100]
}

fn main() {
    let quick =
        lite_bench::quick_mode() || std::env::args().any(|a| a == "--smoke" || a == "--quick");
    // The chaos phase panics the updater thread on purpose; keep the
    // default hook for everything else so real failures still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected updater panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected updater panic"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let t0 = Instant::now();
    let report = Report::new("chaos_loadtest");
    report.field("quick_mode", quick);
    let threads: usize = if quick { 2 } else { 4 };
    let reqs_per_thread: usize = if quick { 25 } else { 120 };
    report.field("client_threads", threads);
    report.field("requests_per_thread", reqs_per_thread);

    let ds = report.phase("dataset", || {
        Arc::new(
            DatasetBuilder {
                apps: SERVED_APPS.to_vec(),
                clusters: vec![ClusterSpec::cluster_a()],
                tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
                confs_per_cell: if quick { 2 } else { 3 },
                seed: 777,
            }
            .build(),
        )
    });
    let tuner = report.phase("train", || {
        LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: if quick { 2 } else { 4 }, ..Default::default() },
            777,
        )
    });
    eprintln!("[chaos] model ready ({:.0}s)", t0.elapsed().as_secs_f64());

    // ---- phase 1: fault-free baseline -----------------------------------
    let baseline = run_phase(&report, "baseline", &ds, &tuner, None, threads, reqs_per_thread);
    let mut base_lat = baseline.latencies_s.clone();
    let base_p99 = p99(&mut base_lat);
    report.field("baseline_p99_ms", base_p99 * 1e3);

    // ---- phase 2: chaos --------------------------------------------------
    let faults = Arc::new(
        FaultInjector::new(0xC4A0)
            .with(FaultKind::TornFrame, 0.25)
            .with_delay(FaultKind::RequestDelay, 0.10, Duration::from_millis(2))
            .with(FaultKind::ScoreFail, 0.05)
            .with(FaultKind::UpdaterPanic, 0.60)
            .with_delay(FaultKind::SwapDelay, 0.30, Duration::from_millis(5))
            .with(FaultKind::SwapFail, 0.25),
    );
    let chaos =
        run_phase(&report, "chaos", &ds, &tuner, Some(faults.clone()), threads, reqs_per_thread);
    let mut chaos_lat = chaos.latencies_s.clone();
    let chaos_p99 = p99(&mut chaos_lat);
    report.field("chaos_p99_ms", chaos_p99 * 1e3);
    let p99_ratio = if base_p99 > 0.0 { chaos_p99 / base_p99 } else { 0.0 };
    report.field("p99_ratio", p99_ratio);
    for (label, count) in faults.summary() {
        report.field(&format!("fired_{label}"), count);
    }

    // ---- phase 3: breaker drill -----------------------------------------
    let breaker_ok = report.phase("breaker_drill", || breaker_drill(&report, &ds, &tuner));

    // ---- phase 4: unified backends --------------------------------------
    report.phase("backends", || backend_sweep(&report, &ds, quick));

    // ---- verdict ---------------------------------------------------------
    let lost = baseline.lost + chaos.lost;
    let internal = baseline.internal + chaos.internal;
    report.field("requests_lost", lost);
    report.field("internal_errors", internal);
    let p99_bounded = base_p99 <= 0.0 || chaos_p99 <= 5.0 * base_p99;
    report.field("p99_bounded_5x", p99_bounded);
    report.field("breaker_cycle_complete", breaker_ok);

    let widths = [22usize, 12];
    let mut table = report.table("chaos verdict", &["check", "value"], &widths);
    table.row(&["baseline_p99_ms".into(), format!("{:.2}", base_p99 * 1e3)]);
    table.row(&["chaos_p99_ms".into(), format!("{:.2}", chaos_p99 * 1e3)]);
    table.row(&["p99_ratio".into(), format!("{p99_ratio:.2}")]);
    table.row(&["requests_lost".into(), format!("{lost}")]);
    table.row(&["internal_errors".into(), format!("{internal}")]);
    table.row(&["breaker_cycle".into(), format!("{breaker_ok}")]);
    drop(table);

    if !p99_bounded {
        report.note(&format!(
            "WARNING: chaos p99 {:.2}ms exceeded 5x the baseline p99 {:.2}ms",
            chaos_p99 * 1e3,
            base_p99 * 1e3
        ));
    }
    if !breaker_ok {
        report.note("WARNING: breaker never completed Open -> HalfOpen -> Closed");
    }
    report.note(&format!(
        "chaos held: {} requests served across both phases, {lost} lost, {internal} internal.",
        baseline.latencies_s.len() + chaos.latencies_s.len()
    ));
    finish_report(&report);
    eprintln!("[chaos] total {:.0}s", t0.elapsed().as_secs_f64());

    let strict_fail = !quick && (!p99_bounded || !breaker_ok);
    if lost > 0 || internal > 0 || strict_fail {
        eprintln!(
            "[chaos] FAIL: lost={lost} internal={internal} p99_bounded={p99_bounded} \
             breaker={breaker_ok}"
        );
        std::process::exit(1);
    }
}

/// One serving phase: start a (possibly wounded) service + TCP front-end,
/// hammer it with resilient clients, and drive sim-wounded feedback until
/// the updater has both failed (when chaos is armed) and recovered.
fn run_phase(
    report: &Report,
    name: &str,
    ds: &Arc<Dataset>,
    tuner: &LiteTuner,
    faults: Option<Arc<FaultInjector>>,
    threads: usize,
    reqs_per_thread: usize,
) -> PhaseStats {
    let wall = Instant::now();
    let registry = Registry::new();
    let mut config = ServeConfig::builder()
        .workers(2)
        .queue_capacity(64)
        .update_batch(8)
        .amu(AmuConfig { epochs: 1, half_batch: 32, ..Default::default() })
        .build()
        .expect("valid chaos config");
    config.faults = faults.clone();
    let snapshot = ModelSnapshot::from_tuner(tuner);
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::disabled());
    let handle = service.handle();
    let server = serve_tcp(service.handle(), "127.0.0.1:0").expect("bind TCP front-end");
    let addr = server.local_addr();

    let lost = Arc::new(AtomicU64::new(0));
    let internal = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..threads)
        .map(|t| {
            let lost = lost.clone();
            let internal = internal.clone();
            std::thread::spawn(move || {
                let mut client = ResilientClient::single(
                    addr,
                    RetryPolicy {
                        max_attempts: 10,
                        base: Duration::from_millis(1),
                        cap: Duration::from_millis(15),
                        seed: 0xC11E_0000 + t as u64,
                    },
                    BreakerConfig {
                        failure_threshold: 0.9,
                        cooldown: Duration::from_millis(20),
                        ..Default::default()
                    },
                );
                let mut latencies = Vec::with_capacity(reqs_per_thread);
                for i in 0..reqs_per_thread {
                    let app = SERVED_APPS[(t + i) % SERVED_APPS.len()];
                    let data = app.dataset(SizeTier::Valid);
                    let started = Instant::now();
                    // "No request dropped forever": a fresh retry budget
                    // per round; only full exhaustion of every round
                    // counts as lost.
                    let mut served = false;
                    let request = Request::Recommend {
                        app,
                        data,
                        cluster: ClusterRef::Preset("cluster-a".to_string()),
                        k: 3,
                        seed: (i % 8) as u64,
                        trace: None,
                    };
                    for _round in 0..5 {
                        match client.call(&request) {
                            Ok(_) => {
                                latencies.push(started.elapsed().as_secs_f64());
                                served = true;
                                break;
                            }
                            Err(lite_serve::ClientError::Exhausted { last, .. }) => {
                                if last == Some(ErrorCode::Internal) {
                                    internal.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(lite_serve::ClientError::Rejected(code)) => {
                                if code == ErrorCode::Internal {
                                    internal.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                        }
                    }
                    if !served {
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
                latencies
            })
        })
        .collect();

    // Feedback driver: executed recommendations flow back as observations;
    // with chaos armed, each execution runs through the wounded simulator
    // and the updater eats panics/failed swaps until we disarm it.
    let sim_faults = faults.as_ref().map(|_| {
        FaultInjector::new(0x51A0)
            .with(FaultKind::ExecutorLoss, 0.15)
            .with(FaultKind::Straggler, 0.30)
            .with(FaultKind::ForcedOom, 0.05)
            .with(FaultKind::ForcedSpill, 0.20)
    });
    let cluster = ds.clusters[0].clone();
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let obs = SimObs::disabled();
    let mut updater_failed_at: Option<u64> = None;
    let mut feedback_runs = 0u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    // Until a swap lands: under chaos, first wait for an updater failure,
    // then disarm and require the pinned service to recover.
    while handle.swap_count() == 0 && Instant::now() < deadline {
        if let Some(f) = &faults {
            if updater_failed_at.is_none() && handle.stats().updater_failures > 0 {
                updater_failed_at = Some(feedback_runs);
                assert!(handle.degraded(), "updater failure must degrade the service");
                f.disarm();
            }
        }
        match handle.recommend(AppId::KMeans, &data, &cluster, 1, 7000 + feedback_runs) {
            Ok(rec) => {
                let result = simulate_faulted(
                    &cluster,
                    &rec.ranked[0].conf,
                    &plan,
                    7000 + feedback_runs,
                    &obs,
                    sim_faults.as_ref(),
                );
                let _ =
                    handle.observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result);
                feedback_runs += 1;
            }
            Err(_) => std::thread::yield_now(),
        }
    }

    let latencies_s: Vec<f64> =
        clients.into_iter().flat_map(|c| c.join().expect("client thread panicked")).collect();
    let stats = handle.stats();
    report.field(&format!("{name}_requests_ok"), latencies_s.len());
    report.field(&format!("{name}_feedback_runs"), feedback_runs);
    report.field(&format!("{name}_hot_swaps"), stats.swap_count);
    report.field(&format!("{name}_updater_failures"), stats.updater_failures);
    report.field(&format!("{name}_fallbacks"), stats.fallbacks);
    report.field(&format!("{name}_degraded_at_end"), stats.degraded);
    if let Some(sf) = &sim_faults {
        for (label, count) in sf.summary() {
            report.field(&format!("{name}_sim_{label}"), count);
        }
    }
    report.phase_s(name, wall.elapsed().as_secs_f64());
    server.shutdown();
    service.shutdown();
    eprintln!(
        "[chaos] {name}: {} ok, {} lost, {} internal, {} swaps, {} updater failures",
        latencies_s.len(),
        lost.load(Ordering::Relaxed),
        internal.load(Ordering::Relaxed),
        stats.swap_count,
        stats.updater_failures,
    );
    PhaseStats {
        latencies_s,
        lost: lost.load(Ordering::Relaxed),
        internal: internal.load(Ordering::Relaxed),
    }
}

/// A 100% torn-frame storm followed by recovery: returns true when the
/// client breaker demonstrably walked Open -> HalfOpen -> Closed.
fn breaker_drill(report: &Report, ds: &Arc<Dataset>, tuner: &LiteTuner) -> bool {
    let faults = Arc::new(FaultInjector::new(0xB4EA).with(FaultKind::TornFrame, 1.0));
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 16,
        faults: Some(faults.clone()),
        ..Default::default()
    };
    let registry = Registry::new();
    let snapshot = ModelSnapshot::from_tuner(tuner);
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::disabled());
    let server = serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");

    let mut client = ResilientClient::single(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            seed: 77,
        },
        BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(25),
            probe_quota: 1,
        },
    );

    // Storm: every response torn, the breaker must trip.
    let _ = client.call(&Request::Ping);
    let opened = client.breaker_transitions().opened;
    // Recovery: faults off, cooldown passes, probe succeeds, breaker
    // closes.
    faults.disarm();
    std::thread::sleep(Duration::from_millis(30));
    let recovered = client.call(&Request::Ping).is_ok();
    let tr = client.breaker_transitions();
    let closed_state = client.breaker_states()[0].1 == BreakerState::Closed;
    report.field("breaker_opened", tr.opened);
    report.field("breaker_half_opened", tr.half_opened);
    report.field("breaker_closed", tr.closed);
    server.shutdown();
    service.shutdown();
    eprintln!(
        "[chaos] breaker drill: opened={} half_opened={} closed={} recovered={recovered}",
        tr.opened, tr.half_opened, tr.closed
    );
    opened >= 1 && tr.half_opened >= 1 && tr.closed >= 1 && recovered && closed_state
}

/// LITE, BO, and DDPG each serve propose/observe rounds behind the unified
/// trait — both through `Service::start_tuner` and the bench-side
/// `tune_unified` dispatcher.
fn backend_sweep(report: &Report, ds: &Arc<Dataset>, quick: bool) {
    let space = ConfSpace::table_iv();
    let lite = LiteTuner::from_dataset(
        ds,
        NecsConfig { epochs: 1, batch_size: 256, ..Default::default() },
        778,
    );
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(lite),
        Box::new(lite_bayesopt::BoServeTuner::new(space.clone(), 17)),
        Box::new(lite_ddpg::DdpgServeTuner::new(space.clone(), 17)),
    ];
    let cluster = ds.clusters[0].clone();
    let data = AppId::Sort.dataset(SizeTier::Valid);
    let rounds = if quick { 3 } else { 8 };
    let mut served = Vec::new();
    for tuner in tuners {
        let name = tuner.name();
        let registry = Registry::new();
        let config = ServeConfig { workers: 1, queue_capacity: 8, ..Default::default() };
        let service = Service::start_tuner(tuner, config, &registry, Tracer::disabled());
        let handle = service.handle();
        let ok = serve_rounds(&handle, &cluster, rounds);
        report.field(&format!("backend_{name}_rounds"), ok);
        served.push((name, ok));
        service.shutdown();
    }
    // The same three backends through the bench dispatcher (no service).
    let mut bo: Box<dyn Tuner> = Box::new(lite_bayesopt::BoServeTuner::new(space, 18));
    let outcome =
        lite_bench::tuning::tune_unified(bo.as_mut(), &cluster, AppId::Sort, &data, rounds, 91);
    report.field("tune_unified_bo_best_s", outcome.time_s);
    let line = served.iter().map(|(n, ok)| format!("{n}:{ok}")).collect::<Vec<_>>().join(" ");
    report.note(&format!("unified backends served rounds — {line}"));
    eprintln!("[chaos] backends: {line}");
    for (name, ok) in &served {
        assert_eq!(*ok, rounds, "{name} backend failed to serve every round");
    }
}

fn serve_rounds(handle: &ServiceHandle, cluster: &ClusterSpec, rounds: usize) -> usize {
    let data = AppId::Sort.dataset(SizeTier::Valid);
    let plan = build_job(AppId::Sort, &data);
    let mut ok = 0;
    for seed in 0..rounds as u64 {
        let Ok(rec) = handle.recommend(AppId::Sort, &data, cluster, 1, seed) else { continue };
        let result = lite_sparksim::exec::simulate(cluster, &rec.ranked[0].conf, &plan, 50 + seed);
        if handle.observe(AppId::Sort, &data, cluster, &rec.ranked[0].conf, &result).is_ok() {
            ok += 1;
        }
    }
    ok
}

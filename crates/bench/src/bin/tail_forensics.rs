//! Tail forensics for lite-serve: traced TCP load against a live service,
//! per-phase latency attribution, slow-request exemplar capture, and the
//! tracing-overhead budget check.
//!
//! Reported into `results/tail_forensics.manifest.jsonl`:
//! * per-phase p50/p99 latency attribution from the `serve.phase.*_ns`
//!   histograms, with each phase's share of attributed time,
//! * the slowest captured exemplar: how many distinct phases it spans and
//!   what fraction of its end-to-end time the phase spans account for
//!   (asserted ≥ 95 %),
//! * the `tailtrace` admin op answering over TCP with the same exemplars,
//! * measured tracing overhead vs an identical untraced server, as a
//!   median paired-batch ratio (asserted < 5 %, the same robust-minimum
//!   idiom as the simulator's `obs_overhead` gate).
//!
//! The captured exemplars are also written as Chrome trace-event JSON
//! (`results/tail_forensics.trace.json`, Perfetto-loadable), and the
//! traced server runs under the sampling profiler, producing a tag-stack
//! flamegraph (`results/tail_forensics.flame.svg`). The overhead
//! comparison servers run without the profiler — that gate measures
//! tracing alone, unchanged.
//!
//! `LITE_BENCH_QUICK=1` shrinks the run for smoke testing.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_bench::finish_report;
use lite_core::amu::AmuConfig;
use lite_core::experiment::DatasetBuilder;
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::trace::Phase;
use lite_obs::{Json, Profiler, Registry, Report, Tracer};
use lite_serve::{
    ClientBuilder, ClusterRef, ModelSnapshot, Request, Response, ServeConfig, Service, TraceConfig,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;

const SERVED_APPS: [AppId; 3] = [AppId::Sort, AppId::KMeans, AppId::PageRank];

fn main() {
    let t0 = Instant::now();
    let quick = lite_bench::quick_mode();
    let report = Report::new("tail_forensics");
    report.field("quick_mode", quick);

    let client_threads: usize = 3;
    let min_reqs_per_thread: usize = if quick { 40 } else { 200 };
    report.field("client_threads", client_threads);
    report.field("min_reqs_per_thread", min_reqs_per_thread);

    // ---- offline phase: dataset + model ---------------------------------
    let ds = report.phase("dataset", || {
        Arc::new(
            DatasetBuilder {
                apps: SERVED_APPS.to_vec(),
                clusters: vec![ClusterSpec::cluster_a()],
                tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
                confs_per_cell: if quick { 2 } else { 3 },
                seed: 4711,
            }
            .build(),
        )
    });
    let tuner = report.phase("train", || {
        LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: if quick { 2 } else { 6 }, ..Default::default() },
            4711,
        )
    });
    eprintln!("[tail] model ready ({:.0}s)", t0.elapsed().as_secs_f64());

    let config = |trace: Option<TraceConfig>| ServeConfig {
        workers: 2,
        queue_capacity: 64,
        update_batch: 1_000_000,
        amu: AmuConfig { epochs: 1, half_batch: 64, ..Default::default() },
        trace,
        ..Default::default()
    };
    let trace_cfg = TraceConfig { capture_threshold: Duration::ZERO, exemplar_top_k: 16 };
    let registry = Registry::new();
    // The forensic server also runs the sampling profiler, so the same
    // run yields phase attribution AND a tag-stack flamegraph.
    let profiler = Profiler::new(Duration::from_millis(1));
    let service = Service::start(
        ModelSnapshot::from_tuner(&tuner),
        ds.clone(),
        ServeConfig { profiler: Some(profiler.clone()), ..config(Some(trace_cfg.clone())) },
        &registry,
        Tracer::disabled(),
    );
    let handle = service.handle();
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // ---- traced load over TCP -------------------------------------------
    let latencies_s = report.phase("load", || {
        let clients: Vec<_> = (0..client_threads)
            .map(|t| {
                std::thread::spawn(move || {
                    // Pin protocol v2: this bench measures the JSON trace
                    // plane, not the v3 binary fast path.
                    let mut client =
                        ClientBuilder::new().protocol(2).connect(addr).expect("connect");
                    assert_eq!(client.protocol_version(), 2, "server must speak v2");
                    let mut lat = Vec::with_capacity(min_reqs_per_thread);
                    for i in 0..min_reqs_per_thread {
                        let app = SERVED_APPS[(t + i) % SERVED_APPS.len()];
                        let data = app.dataset(SizeTier::Valid);
                        let seed = (i % 8) as u64;
                        let id = ((t as u64 + 1) << 32) | (i as u64 + 1);
                        let t_req = Instant::now();
                        let resp = client
                            .call(&Request::Recommend {
                                app,
                                data,
                                cluster: ClusterRef::Preset("cluster-a".to_string()),
                                k: 5,
                                seed,
                                trace: Some(id),
                            })
                            .expect("recommend");
                        if let Response::Recommend { trace, .. } = resp {
                            lat.push(t_req.elapsed().as_secs_f64());
                            assert_eq!(trace, Some(id), "traced response must echo its id");
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut lat: Vec<f64> =
            clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();
        lat.sort_by(f64::total_cmp);
        lat
    });
    let pct = |samples: &[f64], q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples[((samples.len() - 1) as f64 * q).round() as usize]
    };
    let (e2e_p50_ms, e2e_p99_ms) = (pct(&latencies_s, 0.50) * 1e3, pct(&latencies_s, 0.99) * 1e3);
    report.field("requests_ok", latencies_s.len());
    report.field("e2e_p50_ms", e2e_p50_ms);
    report.field("e2e_p99_ms", e2e_p99_ms);

    // ---- the tailtrace op answers over TCP ------------------------------
    let mut admin = ClientBuilder::new().connect(addr).expect("connect");
    let tail =
        admin.call(&Request::Tailtrace).expect("tailtrace").into_admin().expect("tailtrace doc");
    assert_eq!(tail.get("ok").and_then(Json::as_bool), Some(true), "{tail:?}");
    let wire_exemplars = tail.get("exemplars").and_then(Json::as_arr).expect("exemplars").len();
    assert!(wire_exemplars >= 1, "tailtrace must return captured exemplars");
    drop(admin);

    let (completed, captured) = handle.tail_totals();
    let exemplars = handle.tail_exemplars();
    report.field("completed", completed);
    report.field("captured", captured);
    report.field("exemplars", exemplars.len());
    report.field("tailtrace_wire_exemplars", wire_exemplars);

    // ---- per-phase attribution ------------------------------------------
    let snapshot = registry.snapshot();
    // Accept is the idle wait for the next request frame — real time, but
    // outside the request's end-to-end window, so it is excluded from
    // attribution shares.
    let attributed_sum: u64 = Phase::ALL
        .iter()
        .filter(|p| **p != Phase::Accept)
        .filter_map(|p| snapshot.histogram(p.metric_name()))
        .map(|h| h.sum)
        .sum();
    let widths = [14usize, 8, 10, 10, 9];
    let mut table = report.table(
        "tail forensics — per-phase latency attribution",
        &["phase", "count", "p50_us", "p99_us", "share_pct"],
        &widths,
    );
    for phase in Phase::ALL {
        let h = snapshot.histogram(phase.metric_name()).cloned().unwrap_or_else(|| {
            panic!("phase {} has no histogram {}", phase.name(), phase.metric_name())
        });
        let share = if phase == Phase::Accept || attributed_sum == 0 {
            0.0
        } else {
            h.sum as f64 / attributed_sum as f64 * 100.0
        };
        table.row(&[
            phase.name().to_string(),
            format!("{}", h.count),
            format!("{:.1}", h.p50 as f64 / 1e3),
            format!("{:.1}", h.p99 as f64 / 1e3),
            format!("{share:.1}"),
        ]);
    }
    drop(table);

    // ---- the slowest exemplar accounts for its own tail ------------------
    let top = exemplars.first().expect("at least one exemplar");
    let distinct: BTreeSet<usize> = top.spans.iter().map(|s| s.phase as usize).collect();
    let span_sum: u64 =
        top.spans.iter().filter(|s| s.phase != Phase::Accept).map(|s| s.duration_ns()).sum();
    let attribution_pct = span_sum as f64 / top.total_ns.max(1) as f64 * 100.0;
    report.field("top_exemplar_total_ms", top.total_ns as f64 / 1e6);
    report.field("top_exemplar_distinct_phases", distinct.len());
    report.field("top_exemplar_attribution_pct", attribution_pct);
    report.note(&format!(
        "slowest request ({:.2} ms end to end) spans {} distinct phases covering {:.1}% of it.",
        top.total_ns as f64 / 1e6,
        distinct.len(),
        attribution_pct
    ));
    assert!(
        distinct.len() >= 8,
        "a slow TCP request must cross >= 8 distinct phases, saw {distinct:?}"
    );
    assert!(
        attribution_pct >= 95.0,
        "phase spans must account for >= 95% of the slowest request's end-to-end time, \
         got {attribution_pct:.1}%"
    );

    // ---- Chrome trace artifact ------------------------------------------
    let trace_doc = lite_obs::chrome_trace_exemplars(&exemplars);
    let dir = lite_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let trace_path = dir.join("tail_forensics.trace.json");
    match std::fs::write(&trace_path, trace_doc.render()) {
        Ok(()) => eprintln!("[tail] chrome trace written to {}", trace_path.display()),
        Err(e) => eprintln!("[tail] could not write chrome trace: {e}"),
    }

    // ---- flamegraph artifact from the same profiled run ------------------
    let prof_report = profiler.report(10);
    report.field("prof_samples", prof_report.samples);
    report.field("prof_distinct_stacks", prof_report.distinct_stacks);
    let flame_path = dir.join("tail_forensics.flame.svg");
    match std::fs::write(&flame_path, profiler.flame_svg("tail_forensics — tag-stack CPU profile"))
    {
        Ok(()) => eprintln!("[tail] flamegraph written to {}", flame_path.display()),
        Err(e) => eprintln!("[tail] could not write flamegraph: {e}"),
    }

    server.shutdown();
    report.metrics(&registry);

    // ---- overhead: traced vs untraced server, paired batches ------------
    let plain_registry = Registry::new();
    let plain_service = Service::start(
        ModelSnapshot::from_tuner(&tuner),
        ds.clone(),
        config(None),
        &plain_registry,
        Tracer::disabled(),
    );
    let plain_server =
        lite_serve::net::serve_tcp(plain_service.handle(), "127.0.0.1:0").expect("bind");
    // A second traced server so both sides start with a cold cache.
    let probe_registry = Registry::new();
    let probe_service = Service::start(
        ModelSnapshot::from_tuner(&tuner),
        ds.clone(),
        config(Some(trace_cfg)),
        &probe_registry,
        Tracer::disabled(),
    );
    let probe_server =
        lite_serve::net::serve_tcp(probe_service.handle(), "127.0.0.1:0").expect("bind");

    let ratio = report.phase("overhead", || {
        let mut base =
            ClientBuilder::new().protocol(2).connect(plain_server.local_addr()).expect("connect");
        let mut probe =
            ClientBuilder::new().protocol(2).connect(probe_server.local_addr()).expect("connect");
        assert_eq!(base.protocol_version(), 2);
        assert_eq!(probe.protocol_version(), 2);
        let data = AppId::KMeans.dataset(SizeTier::Valid);
        let recommend = |seed: u64, trace: Option<u64>| Request::Recommend {
            app: AppId::KMeans,
            data,
            cluster: ClusterRef::Preset("cluster-a".to_string()),
            k: 3,
            seed,
            trace,
        };
        // Warm up both paths (and both caches) identically.
        for i in 0..16 {
            let _ = base.call(&recommend(i % 8, None));
            let _ = probe.call(&recommend(i % 8, Some(i + 1)));
        }
        let base = RefCell::new(base);
        let probe = RefCell::new(probe);
        robust_ratio(
            quick,
            &|seed| {
                let resp = base.borrow_mut().call(&recommend(seed % 8, None)).expect("recommend");
                std::hint::black_box(resp);
            },
            &|seed| {
                let resp = probe
                    .borrow_mut()
                    .call(&recommend(seed % 8, Some(seed + 17)))
                    .expect("recommend");
                std::hint::black_box(resp);
            },
        )
    });
    plain_server.shutdown();
    probe_server.shutdown();
    plain_service.shutdown();
    probe_service.shutdown();
    service.shutdown();

    report.field("overhead_ratio", ratio);
    report.note(&format!(
        "tracing overhead vs an untraced server: {:+.1}% (median paired-batch ratio {ratio:.4}).",
        (ratio - 1.0) * 100.0
    ));
    assert!(
        ratio < 1.05,
        "tracing adds {:.1}% to request latency (ratio {ratio:.4}); the budget is 5%",
        (ratio - 1.0) * 100.0
    );

    finish_report(&report);
    eprintln!("[tail] total {:.0}s", t0.elapsed().as_secs_f64());
}

/// Median of per-batch wall-clock ratios `probe / base` — the two closures
/// run back to back inside every batch so machine-speed drift cancels out
/// of each ratio (the `obs_overhead` idiom).
fn median_paired_ratio(quick: bool, attempt: u64, base: &dyn Fn(u64), probe: &dyn Fn(u64)) -> f64 {
    let batches: usize = if quick { 15 } else { 41 };
    let runs_per_batch: u64 = if quick { 6 } else { 10 };
    let mut ratios = Vec::with_capacity(batches);
    for b in 0..batches as u64 {
        let seed0 = (attempt * batches as u64 + b) * runs_per_batch;
        let t0 = Instant::now();
        for i in 0..runs_per_batch {
            base(seed0 + i);
        }
        let base_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for i in 0..runs_per_batch {
            probe(seed0 + i);
        }
        ratios.push(t1.elapsed().as_secs_f64() / base_s.max(1e-12));
    }
    ratios.sort_by(f64::total_cmp);
    ratios[batches / 2]
}

/// Smallest paired-ratio median over up to three attempts: noise can
/// inflate one attempt, but it cannot make a genuinely slow path measure
/// fast three times in a row.
fn robust_ratio(quick: bool, base: &dyn Fn(u64), probe: &dyn Fn(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for attempt in 0..3 {
        best = best.min(median_paired_ratio(quick, attempt, base, probe));
        if best < 1.04 {
            break;
        }
    }
    best
}

//! Figure 8: tuning-overhead case study on DecisionTree (DT) and
//! LinearRegression (LR).
//!
//! BO and DDPG iterate build-predict-probe epochs against the large job,
//! each epoch costing a full application execution; the plotted curves are
//! best-execution-time-so-far vs cumulative overhead. LITE's single point
//! is its sub-two-second recommendation. Paper shape: LITE sits at the far
//! left (minimal overhead) at a height close to the best the iterative
//! tuners ever reach.

use lite_bench::tuning::{tune_bo, tune_ddpg, tune_lite};
use lite_bench::{necs_epochs, print_header, print_row, training_dataset};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let ds = training_dataset(1);
    let lite = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: necs_epochs(), ..Default::default() },
        1,
    );
    eprintln!("[fig08] LITE ready ({:.0}s)", t0.elapsed().as_secs_f64());
    let cluster = ClusterSpec::cluster_c();

    for (app, seed) in [(AppId::DecisionTree, 8801u64), (AppId::LinearRegression, 8802)] {
        let data = app.dataset(SizeTier::Test);
        println!("\n# Figure 8 — {} (large data, cluster C)\n", app.name());

        let bo = tune_bo(&ds, &cluster, app, &data, seed);
        let ddpg = tune_ddpg(&ds.space, &cluster, app, &data, &[], seed);
        let lite_out = tune_lite(&lite, &cluster, app, &data, seed);

        let widths = [10usize, 14, 14];
        print_header(&["overhead_s", "BO best_s", "DDPG best_s"], &widths);
        // Merge the two traces onto a common overhead axis.
        let steps: Vec<f64> = {
            let mut s: Vec<f64> = bo
                .trace
                .iter()
                .chain(ddpg.trace.iter())
                .map(|(o, _)| *o)
                .collect();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s.dedup_by(|a, b| (*a - *b).abs() < 1.0);
            s
        };
        let best_at = |trace: &[(f64, f64)], o: f64| -> Option<f64> {
            trace.iter().take_while(|(ov, _)| *ov <= o).map(|(_, b)| *b).last()
        };
        for o in &steps {
            print_row(
                &[
                    format!("{o:.0}"),
                    best_at(&bo.trace, *o).map_or("-".into(), |b| format!("{b:.0}")),
                    best_at(&ddpg.trace, *o).map_or("-".into(), |b| format!("{b:.0}")),
                ],
                &widths,
            );
        }
        let bo_best = bo.time_s;
        let ddpg_best = ddpg.time_s;
        println!(
            "\nLITE point: overhead {:.2}s (model inference only) -> execution time {:.0}s",
            lite_out.decide_wall_s, lite_out.time_s
        );
        println!(
            "Final best after the full {:.0}s budget: BO {bo_best:.0}s, DDPG {ddpg_best:.0}s.",
            lite_bench::tuning::TUNING_BUDGET_S
        );
        println!(
            "LITE / best-iterative ratio: {:.2} (paper: LITE near-optimal at minimal overhead)",
            lite_out.time_s / bo_best.min(ddpg_best)
        );
    }
    eprintln!("[fig08] total {:.0}s", t0.elapsed().as_secs_f64());
}

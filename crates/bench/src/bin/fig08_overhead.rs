//! Figure 8: tuning-overhead case study on DecisionTree (DT) and
//! LinearRegression (LR).
//!
//! BO and DDPG iterate build-predict-probe epochs against the large job,
//! each epoch costing a full application execution; the plotted curves are
//! best-execution-time-so-far vs cumulative overhead. LITE's single point
//! is its sub-two-second recommendation. Paper shape: LITE sits at the far
//! left (minimal overhead) at a height close to the best the iterative
//! tuners ever reach.

use lite_bench::tuning::{tune_bo, tune_ddpg, tune_lite};
use lite_bench::{finish_report, necs_epochs, training_dataset};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("fig08_overhead");
    report.field("quick_mode", lite_bench::quick_mode());
    report.field("budget_s", lite_bench::tuning::TUNING_BUDGET_S);
    let ds = report.phase("dataset", || training_dataset(1));
    let lite = report.phase("train_lite", || {
        LiteTuner::from_dataset(&ds, NecsConfig { epochs: necs_epochs(), ..Default::default() }, 1)
    });
    eprintln!("[fig08] LITE ready ({:.0}s)", t0.elapsed().as_secs_f64());
    let cluster = ClusterSpec::cluster_c();

    for (app, seed) in [(AppId::DecisionTree, 8801u64), (AppId::LinearRegression, 8802)] {
        let data = app.dataset(SizeTier::Test);

        let bo = tune_bo(&ds, &cluster, app, &data, seed);
        let ddpg = tune_ddpg(&ds.space, &cluster, app, &data, &[], seed);
        let lite_out = tune_lite(&lite, &cluster, app, &data, seed);

        let widths = [10usize, 14, 14];
        let mut table = report.table(
            &format!("Figure 8 — {} (large data, cluster C)", app.name()),
            &["overhead_s", "BO best_s", "DDPG best_s"],
            &widths,
        );
        // Merge the two traces onto a common overhead axis.
        let steps: Vec<f64> = {
            let mut s: Vec<f64> =
                bo.trace.iter().chain(ddpg.trace.iter()).map(|(o, _)| *o).collect();
            s.sort_by(f64::total_cmp);
            s.dedup_by(|a, b| (*a - *b).abs() < 1.0);
            s
        };
        let best_at = |trace: &[(f64, f64)], o: f64| -> Option<f64> {
            trace.iter().take_while(|(ov, _)| *ov <= o).map(|(_, b)| *b).last()
        };
        for o in &steps {
            table.row(&[
                format!("{o:.0}"),
                best_at(&bo.trace, *o).map_or("-".into(), |b| format!("{b:.0}")),
                best_at(&ddpg.trace, *o).map_or("-".into(), |b| format!("{b:.0}")),
            ]);
        }
        let bo_best = bo.time_s;
        let ddpg_best = ddpg.time_s;
        report.field(&format!("{}.lite_overhead_s", app.abbrev()), lite_out.decide_wall_s);
        report.field(&format!("{}.lite_time_s", app.abbrev()), lite_out.time_s);
        report.field(&format!("{}.bo_best_s", app.abbrev()), bo_best);
        report.field(&format!("{}.ddpg_best_s", app.abbrev()), ddpg_best);
        report.note(&format!(
            "\nLITE point: overhead {:.2}s (model inference only) -> execution time {:.0}s",
            lite_out.decide_wall_s, lite_out.time_s
        ));
        report.note(&format!(
            "Final best after the full {:.0}s budget: BO {bo_best:.0}s, DDPG {ddpg_best:.0}s.",
            lite_bench::tuning::TUNING_BUDGET_S
        ));
        report.note(&format!(
            "LITE / best-iterative ratio: {:.2} (paper: LITE near-optimal at minimal overhead)",
            lite_out.time_s / bo_best.min(ddpg_best)
        ));
    }
    finish_report(&report);
    eprintln!("[fig08] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! Static vs dynamic cold-start: wall-time and equivalence — plus the
//! interactive-latency section behind `lite-lsp`.
//!
//! The paper's cold-start path runs every new application once on the
//! smallest dataset to instrument its stage codes. The static analysis
//! plane (`lite-analyze`) recovers the same stage templates from source
//! text alone. This bench times both providers over all 15 workloads,
//! asserts they produce identical `StageCode`s, and reports the speedup
//! of skipping the instrumentation run entirely.
//!
//! The `analyze_latency` section measures the editor loop: single-line
//! edits to every corpus main source pushed through the memoizing
//! [`DocAnalyzer`] (reparse + dataflow + lints), against a from-scratch
//! [`analyze_source`] baseline. The incremental p99 must stay under
//! 5 ms — asserted here and gated against the committed manifest by
//! benchdiff in `scripts/verify.sh`.

use std::time::Instant;

use lite_analyze::{analyze_source, DocAnalyzer};
use lite_bench::{finish_report, quick_mode};
use lite_obs::Report;
use lite_workloads::apps::AppId;
use lite_workloads::instrument::{instrument_app, static_stage_codes};

/// `q`-th percentile of an unsorted sample, by nearest-rank on a copy.
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Apply the `k`-th deterministic single-line edit: toggle a trailing
/// space on one line, so exactly one statement chunk changes content.
fn edit(text: &str, k: usize) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let i = (k * 7 + 3) % lines.len();
    if lines[i].ends_with(' ') {
        lines[i].pop();
    } else {
        lines[i].push(' ');
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn main() {
    let reps = if quick_mode() { 1 } else { 5 };
    let report = Report::new("analyze_bench");
    let widths = [6, 11, 12, 12, 9, 6];
    let mut table = report.table(
        "Static vs dynamic cold-start extraction",
        &["app", "#templates", "dynamic(us)", "static(us)", "speedup", "equal"],
        &widths,
    );

    let mut total_dynamic_us = 0.0;
    let mut total_static_us = 0.0;
    let mut all_equal = true;
    for app in AppId::all() {
        // Warm both paths once, then time the best of `reps` runs.
        let dynamic = instrument_app(app);
        let statik = static_stage_codes(app);
        let equal = dynamic == statik;
        all_equal &= equal;

        let mut dyn_us = f64::INFINITY;
        let mut sta_us = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(instrument_app(app));
            dyn_us = dyn_us.min(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            std::hint::black_box(static_stage_codes(app));
            sta_us = sta_us.min(t.elapsed().as_secs_f64() * 1e6);
        }
        total_dynamic_us += dyn_us;
        total_static_us += sta_us;
        table.row(&[
            app.abbrev().to_string(),
            dynamic.len().to_string(),
            format!("{dyn_us:.0}"),
            format!("{sta_us:.0}"),
            format!("{:.1}x", dyn_us / sta_us),
            if equal { "yes".to_string() } else { "NO".to_string() },
        ]);
    }

    report.field("apps", AppId::all().len() as u64);
    report.field("all_equal", u64::from(all_equal));
    report.field("total_dynamic_us", total_dynamic_us);
    report.field("total_static_us", total_static_us);
    report.field("speedup", total_dynamic_us / total_static_us);
    report.note(&format!(
        "\nCold-start extraction over all 15 apps: {:.1} ms instrumented vs {:.1} ms static ({:.1}x).",
        total_dynamic_us / 1e3,
        total_static_us / 1e3,
        total_dynamic_us / total_static_us
    ));
    report.note(if all_equal {
        "Static extraction is StageCode-identical to the instrumented run on every app."
    } else {
        "EQUIVALENCE FAILURE: static extraction diverged from instrumentation."
    });

    // ---- analyze_latency: the interactive editing loop ----------------
    let edits_per_app = if quick_mode() { 8 } else { 40 };
    let mut lat_table = report.table(
        "Incremental re-analysis latency (single-line edits)",
        &["app", "inc p50(us)", "inc p99(us)", "full p50(us)", "reuse"],
        &[6, 11, 11, 12, 7],
    );
    let mut inc_us_all = Vec::new();
    let mut full_us_all = Vec::new();
    for app in AppId::all() {
        let mut doc = DocAnalyzer::new();
        let mut text = app.main_source().to_string();
        let cold = doc.update(&text);
        let chunks = cold.stats.chunks.max(1);
        let mut inc_us = Vec::new();
        let mut full_us = Vec::new();
        let mut reused = 0usize;
        for k in 0..edits_per_app {
            text = edit(&text, k);
            let t = Instant::now();
            let analysis = doc.update(&text);
            inc_us.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(
                analysis.stats.reparsed <= 2,
                "{app}: a one-line edit reparsed {} chunks",
                analysis.stats.reparsed
            );
            reused += analysis.stats.reused;
            let t = Instant::now();
            std::hint::black_box(analyze_source(&text));
            full_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
        lat_table.row(&[
            app.abbrev().to_string(),
            format!("{:.0}", percentile(&inc_us, 0.5)),
            format!("{:.0}", percentile(&inc_us, 0.99)),
            format!("{:.0}", percentile(&full_us, 0.5)),
            format!("{:.0}%", 100.0 * reused as f64 / (edits_per_app * chunks) as f64),
        ]);
        inc_us_all.extend(inc_us);
        full_us_all.extend(full_us);
    }
    let inc_p50_ms = percentile(&inc_us_all, 0.5) / 1e3;
    let inc_p99_ms = percentile(&inc_us_all, 0.99) / 1e3;
    let full_p50_ms = percentile(&full_us_all, 0.5) / 1e3;
    let full_p99_ms = percentile(&full_us_all, 0.99) / 1e3;
    report.field("edits", (edits_per_app * AppId::all().len()) as u64);
    report.field("incremental_p50_ms", inc_p50_ms);
    report.field("incremental_p99_ms", inc_p99_ms);
    report.field("full_p50_ms", full_p50_ms);
    report.field("full_p99_ms", full_p99_ms);
    report.note(&format!(
        "\nEditor loop over the 15-app corpus: incremental p50 {:.3} ms / p99 {:.3} ms \
         (from-scratch p50 {:.3} ms).",
        inc_p50_ms, inc_p99_ms, full_p50_ms
    ));

    finish_report(&report);
    assert!(all_equal, "static extraction diverged from instrumentation");
    assert!(
        inc_p99_ms < 5.0,
        "incremental re-analysis p99 {inc_p99_ms:.3} ms breaches the 5 ms editor budget"
    );
}

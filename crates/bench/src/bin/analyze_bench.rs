//! Static vs dynamic cold-start: wall-time and equivalence.
//!
//! The paper's cold-start path runs every new application once on the
//! smallest dataset to instrument its stage codes. The static analysis
//! plane (`lite-analyze`) recovers the same stage templates from source
//! text alone. This bench times both providers over all 15 workloads,
//! asserts they produce identical `StageCode`s, and reports the speedup
//! of skipping the instrumentation run entirely.

use std::time::Instant;

use lite_bench::{finish_report, quick_mode};
use lite_obs::Report;
use lite_workloads::apps::AppId;
use lite_workloads::instrument::{instrument_app, static_stage_codes};

fn main() {
    let reps = if quick_mode() { 1 } else { 5 };
    let report = Report::new("analyze_bench");
    let widths = [6, 11, 12, 12, 9, 6];
    let mut table = report.table(
        "Static vs dynamic cold-start extraction",
        &["app", "#templates", "dynamic(us)", "static(us)", "speedup", "equal"],
        &widths,
    );

    let mut total_dynamic_us = 0.0;
    let mut total_static_us = 0.0;
    let mut all_equal = true;
    for app in AppId::all() {
        // Warm both paths once, then time the best of `reps` runs.
        let dynamic = instrument_app(app);
        let statik = static_stage_codes(app);
        let equal = dynamic == statik;
        all_equal &= equal;

        let mut dyn_us = f64::INFINITY;
        let mut sta_us = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(instrument_app(app));
            dyn_us = dyn_us.min(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            std::hint::black_box(static_stage_codes(app));
            sta_us = sta_us.min(t.elapsed().as_secs_f64() * 1e6);
        }
        total_dynamic_us += dyn_us;
        total_static_us += sta_us;
        table.row(&[
            app.abbrev().to_string(),
            dynamic.len().to_string(),
            format!("{dyn_us:.0}"),
            format!("{sta_us:.0}"),
            format!("{:.1}x", dyn_us / sta_us),
            if equal { "yes".to_string() } else { "NO".to_string() },
        ]);
    }

    report.field("apps", AppId::all().len() as u64);
    report.field("all_equal", u64::from(all_equal));
    report.field("total_dynamic_us", total_dynamic_us);
    report.field("total_static_us", total_static_us);
    report.field("speedup", total_dynamic_us / total_static_us);
    report.note(&format!(
        "\nCold-start extraction over all 15 apps: {:.1} ms instrumented vs {:.1} ms static ({:.1}x).",
        total_dynamic_us / 1e3,
        total_static_us / 1e3,
        total_dynamic_us / total_static_us
    ));
    report.note(if all_equal {
        "Static extraction is StageCode-identical to the instrumented run on every app."
    } else {
        "EQUIVALENCE FAILURE: static extraction diverged from instrumentation."
    });
    finish_report(&report);
    assert!(all_equal, "static extraction diverged from instrumentation");
}

//! Figure 1: execution time of PageRank and TriangleCount on 160 MB input
//! under (a) a sweep of `spark.executor.cores` and (b) the joint
//! `executor.cores × executor.memory` grid.
//!
//! The paper's observation to reproduce: the optimal core count differs
//! per application, and the joint optimum is not on either axis's
//! individual optimum.
//!
//! Deviation note: on the authors' hardware memory pressure bites at
//! 160 MB already; in our simulator the same per-app divergence appears
//! one rung up the data ladder with 1 GB executors, so panel (a) uses the
//! mid-scale input (recorded in EXPERIMENTS.md).

use lite_bench::finish_report;
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, Knob};
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;

fn main() {
    let report = Report::new("fig01_knob_surface");
    let space = ConfSpace::table_iv();
    let cluster = ClusterSpec::cluster_a();
    let apps = [AppId::PageRank, AppId::TriangleCount];
    let tier = SizeTier::Valid;

    let cores: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0];
    // Panel (b) keeps the paper's 160 MB input for the joint grid.
    let tier_b = SizeTier::Train(3);
    let widths = [6, 10, 10];
    let mut ta = report.table(
        "Figure 1(a): execution time vs spark.executor.cores (mid-scale input, 1 GB executors)",
        &["cores", "PR (s)", "TC (s)"],
        &widths,
    );
    let mut best = [(0.0, f64::INFINITY); 2];
    for &c in &cores {
        let mut row = vec![format!("{c:.0}")];
        for (ai, app) in apps.iter().enumerate() {
            let mut conf = space.default_conf();
            conf.set(&space, Knob::ExecutorCores, c);
            conf.set(&space, Knob::ExecutorInstances, 2.0);
            conf.set(&space, Knob::ExecutorMemoryGb, 1.0);
            let t = simulate(&cluster, &conf, &build_job(*app, &app.dataset(tier)), 1)
                .capped_time(7200.0);
            if t < best[ai].1 {
                best[ai] = (c, t);
            }
            row.push(format!("{t:.1}"));
        }
        ta.row(&row);
    }
    report.field("pr_best_cores", best[0].0);
    report.field("tc_best_cores", best[1].0);
    report.note(&format!(
        "\nOptimal executor.cores: PageRank = {}, TriangleCount = {} (paper: per-app optima differ)\n",
        best[0].0, best[1].0
    ));

    let mems = [1.0, 2.0, 3.0, 4.0, 8.0];
    let mut widths = vec![6usize];
    widths.extend(std::iter::repeat_n(9, mems.len()));
    let mut header = vec!["cores".to_string()];
    header.extend(mems.iter().map(|m| format!("mem={m}G")));
    let mut tb = report.table(
        "Figure 1(b): PageRank time vs executor.cores x executor.memory (GB)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );
    let mut joint_best = (0.0, 0.0, f64::INFINITY);
    for &c in &[1.0, 2.0, 4.0, 6.0, 8.0] {
        let mut row = vec![format!("{c:.0}")];
        for &m in &mems {
            let mut conf = space.default_conf();
            conf.set(&space, Knob::ExecutorCores, c);
            conf.set(&space, Knob::ExecutorMemoryGb, m);
            conf.set(&space, Knob::ExecutorInstances, 4.0);
            let t = simulate(
                &cluster,
                &conf,
                &build_job(AppId::PageRank, &AppId::PageRank.dataset(tier_b)),
                1,
            )
            .capped_time(7200.0);
            if t < joint_best.2 {
                joint_best = (c, m, t);
            }
            row.push(format!("{t:.1}"));
        }
        tb.row(&row);
    }
    report.field("joint_best_cores", joint_best.0);
    report.field("joint_best_mem_gb", joint_best.1);
    report.field("joint_best_time_s", joint_best.2);
    report.note(&format!(
        "\nJoint optimum: executor.cores={}, executor.memory={} ({:.1}s) — multi-knob optimum, as in the paper",
        joint_best.0, joint_best.1, joint_best.2
    ));
    finish_report(&report);
}

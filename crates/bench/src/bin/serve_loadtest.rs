//! Load test for lite-serve: N client threads (in-process and TCP) hammer
//! a running tuning service while observed feedback forces at least one
//! background model hot-swap mid-run, then dedicated hot-path phases
//! measure the protocol-v3 serving ceiling.
//!
//! Reported into `results/serve_loadtest.manifest.jsonl`:
//! * throughput and precise p50/p95/p99 request latencies (computed from
//!   the raw sorted samples, not histogram buckets),
//! * steady-state (post-warmup) window percentiles from the SLO rollup
//!   ring — the last few seconds of the run, after caches and the
//!   allocator have settled — alongside the whole-run aggregates,
//! * `inproc_hit_rps` — repeat recommends answered by the inline
//!   whole-response fast path, no queue hop,
//! * `tcp_v3_rps` — the same mix over loopback TCP as pipelined v3
//!   binary frames, plus a v1/v2 JSON serial-client sanity check,
//! * cache hit rate and shed/error counts,
//! * the number of hot-swaps and distinct model versions clients saw,
//! * batched vs per-candidate NECS scoring time on a 30-candidate request.
//!
//! The run is continuously profiled (tag-stack sampling profiler); the
//! flamegraph lands in `results/serve_loadtest.flame.svg` with the
//! collapsed stacks next to it as `results/serve_loadtest.folded`.
//!
//! `LITE_BENCH_QUICK=1` shrinks the run for smoke testing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_bench::finish_report;
use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder, PredictionContext};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Profiler, Registry, Report, SloConfig, Tracer};
use lite_serve::{
    ClientBuilder, ClusterRef, ModelSnapshot, ProtocolConfig, Request, Response, ServeConfig,
    ServeError, Service, ServiceHandle,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;

const SERVED_APPS: [AppId; 3] = [AppId::Sort, AppId::KMeans, AppId::PageRank];

struct ClientStats {
    latencies_s: Vec<f64>,
    versions: Vec<u64>,
    shed: usize,
    errors: usize,
}

fn main() {
    let t0 = Instant::now();
    let quick = lite_bench::quick_mode();
    let report = Report::new("serve_loadtest");
    report.field("quick_mode", quick);

    let threads: usize = if quick { 4 } else { 6 };
    let tcp_threads: usize = 2.min(threads);
    let min_reqs_per_thread: usize = if quick { 30 } else { 120 };
    report.field("client_threads", threads);
    report.field("tcp_client_threads", tcp_threads);

    // ---- offline phase: dataset + model ---------------------------------
    let ds = report.phase("dataset", || {
        Arc::new(
            DatasetBuilder {
                apps: SERVED_APPS.to_vec(),
                clusters: vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_c()],
                tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
                confs_per_cell: if quick { 2 } else { 3 },
                seed: 4242,
            }
            .build(),
        )
    });
    let tuner = report.phase("train", || {
        LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: if quick { 2 } else { 6 }, ..Default::default() },
            4242,
        )
    });
    eprintln!("[loadtest] model ready ({:.0}s)", t0.elapsed().as_secs_f64());

    // ---- batched vs per-candidate scoring on one 30-candidate request ---
    batch_comparison(&report, &ds, &tuner);

    // ---- serving phase --------------------------------------------------
    let registry = Registry::new();
    // Continuous profiling (1 ms sampling) and a burn-rate SLO with 1 s
    // rollup buckets run for the whole serving phase; the SLO ring is
    // also where the steady-state window percentiles come from.
    let profiler = Profiler::new(Duration::from_millis(1));
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 64,
        update_batch: if quick { 16 } else { 24 },
        amu: AmuConfig { epochs: 1, half_batch: 64, ..Default::default() },
        // 25 ms objective: generous against the ~5 ms p99 this load
        // profile produces, so `slo_alert` in the manifest means a real
        // regression and not a default objective tuned for other loads.
        slo: Some(SloConfig { objective_ns: 25_000_000, ..SloConfig::default() }),
        profiler: Some(profiler.clone()),
        // Protocol v3 serving shape: two shards, deep pipelining, and the
        // inline whole-response cache that backs the hot-path phases.
        protocol: ProtocolConfig {
            shards: 2,
            max_pipeline: 128,
            response_cache: 4096,
            ..Default::default()
        },
        ..Default::default()
    };
    let snapshot = ModelSnapshot::from_tuner(&tuner);
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::disabled());
    let handle = service.handle();
    let server =
        lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind TCP front-end");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let serve_t0 = Instant::now();
    let clients: Vec<_> = (0..threads)
        .map(|t| {
            let handle = handle.clone();
            let stop = stop.clone();
            let use_tcp = t < tcp_threads;
            std::thread::spawn(move || {
                if use_tcp {
                    tcp_client(addr, t, min_reqs_per_thread, &stop)
                } else {
                    inproc_client(&handle, t, min_reqs_per_thread, &stop)
                }
            })
        })
        .collect();

    // Feedback driver: observe executed recommendations until the updater
    // hot-swaps at least once, so every load test demonstrates a swap
    // under concurrent read traffic.
    let cluster = ds.clusters[0].clone();
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let mut feedback_runs = 0u64;
    let feedback_deadline = Instant::now() + Duration::from_secs(600);
    while handle.swap_count() == 0 {
        if Instant::now() > feedback_deadline {
            eprintln!("[loadtest] WARNING: no hot-swap within 600 s");
            break;
        }
        match handle.recommend(AppId::KMeans, &data, &cluster, 1, 9000 + feedback_runs) {
            Ok(rec) => {
                let result = simulate(&cluster, &rec.ranked[0].conf, &plan, 9000 + feedback_runs);
                let _ =
                    handle.observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result);
                feedback_runs += 1;
            }
            Err(ServeError::Overloaded) => std::thread::yield_now(),
            Err(e) => panic!("feedback driver failed: {e}"),
        }
    }
    let swaps = handle.swap_count();
    eprintln!(
        "[loadtest] {swaps} hot-swap(s) after {feedback_runs} observed runs ({:.0}s)",
        t0.elapsed().as_secs_f64()
    );
    stop.store(true, Ordering::Release);

    let stats: Vec<ClientStats> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread panicked (deadlock-free requirement)"))
        .collect();
    let serve_wall_s = serve_t0.elapsed().as_secs_f64();
    report.phase_s("serve", serve_wall_s);
    let hit_rate = handle.cache_hit_rate();
    let (cache_hits, cache_misses) = handle.cache_counts();

    // Steady-state view: close the final (partial) rollup bucket and read
    // the fast window — the last few seconds of the run, after warmup.
    let slo_status = handle.slo_tick().expect("SLO configured for the loadtest");
    let steady = slo_status.fast;
    report.field("steady_span_s", steady.span_s);
    report.field("steady_throughput_rps", steady.rate);
    report.field("steady_p50_ms", steady.p50 as f64 / 1e6);
    report.field("steady_p99_ms", steady.p99 as f64 / 1e6);
    report.field("slo_burn_fast", slo_status.burn_fast);
    report.field("slo_alert", slo_status.alert);

    // ---- hot-path phases: inline fast path + pipelined v3 wire ----------
    let (inproc_rps, inproc_ok) = report.phase("inproc_hit", || inproc_hit_phase(&handle, quick));
    report.field("inproc_hit_rps", inproc_rps);
    report.field("inproc_hit_ok", inproc_ok);
    eprintln!("[loadtest] in-process hit path: {inproc_rps:.0} rps ({inproc_ok} requests)");

    let (tcp_v3_rps, tcp_v3_ok, pipeline_depth) =
        report.phase("tcp_v3", || tcp_v3_phase(addr, quick));
    report.field("tcp_v3_rps", tcp_v3_rps);
    report.field("tcp_v3_ok", tcp_v3_ok);
    report.field("tcp_v3_pipeline_depth", pipeline_depth);
    eprintln!(
        "[loadtest] pipelined v3 loopback: {tcp_v3_rps:.0} rps \
         ({tcp_v3_ok} requests, depth {pipeline_depth})"
    );

    let (v1_ok, v2_ok) = legacy_sanity(addr);
    report.field("legacy_v1_ok", v1_ok);
    report.field("legacy_v2_ok", v2_ok);
    assert!(v1_ok && v2_ok, "legacy JSON clients must keep working (v1={v1_ok} v2={v2_ok})");
    server.shutdown();

    // Profile artifacts: flamegraph + collapsed stacks for the whole run.
    let prof_report = profiler.report(10);
    report.field("prof_samples", prof_report.samples);
    report.field("prof_distinct_stacks", prof_report.distinct_stacks);
    report.field("prof_threads", prof_report.threads);
    let dir = lite_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    for (name, content) in [
        ("serve_loadtest.flame.svg", profiler.flame_svg("serve_loadtest — tag-stack CPU profile")),
        ("serve_loadtest.folded", profiler.folded()),
    ] {
        let path = dir.join(name);
        match std::fs::write(&path, content) {
            Ok(()) => eprintln!("[loadtest] profile artifact written to {}", path.display()),
            Err(e) => eprintln!("[loadtest] could not write {}: {e}", path.display()),
        }
    }

    service.shutdown();

    // ---- aggregate ------------------------------------------------------
    let mut latencies: Vec<f64> =
        stats.iter().flat_map(|s| s.latencies_s.iter().copied()).collect();
    latencies.sort_by(f64::total_cmp);
    let total_ok = latencies.len();
    let shed: usize = stats.iter().map(|s| s.shed).sum();
    let errors: usize = stats.iter().map(|s| s.errors).sum();
    let versions: std::collections::BTreeSet<u64> =
        stats.iter().flat_map(|s| s.versions.iter().copied()).collect();
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let throughput = total_ok as f64 / serve_wall_s.max(1e-9);

    report.field("requests_ok", total_ok);
    report.field("requests_shed", shed);
    report.field("requests_error", errors);
    report.field("feedback_runs", feedback_runs);
    report.field("hot_swaps", swaps);
    report.field("versions_seen", versions.len());
    report.field("throughput_rps", throughput);
    report.field("p50_ms", p50 * 1e3);
    report.field("p95_ms", p95 * 1e3);
    report.field("p99_ms", p99 * 1e3);
    report.field("cache_hit_rate", hit_rate);
    report.field("cache_hits", cache_hits);
    report.field("cache_misses", cache_misses);
    report.metrics(&registry);

    let widths = [16usize, 12];
    let mut table =
        report.table("serve loadtest — latency and throughput", &["metric", "value"], &widths);
    table.row(&["throughput_rps".into(), format!("{throughput:.1}")]);
    table.row(&["p50_ms".into(), format!("{:.2}", p50 * 1e3)]);
    table.row(&["p95_ms".into(), format!("{:.2}", p95 * 1e3)]);
    table.row(&["p99_ms".into(), format!("{:.2}", p99 * 1e3)]);
    table.row(&["steady_p50_ms".into(), format!("{:.2}", steady.p50 as f64 / 1e6)]);
    table.row(&["steady_p99_ms".into(), format!("{:.2}", steady.p99 as f64 / 1e6)]);
    table.row(&["inproc_hit_rps".into(), format!("{inproc_rps:.0}")]);
    table.row(&["tcp_v3_rps".into(), format!("{tcp_v3_rps:.0}")]);
    table.row(&["cache_hit_rate".into(), format!("{hit_rate:.3}")]);
    table.row(&["hot_swaps".into(), format!("{swaps}")]);
    drop(table);

    report.note(&format!(
        "{threads} client threads ({tcp_threads} over TCP) sustained for {serve_wall_s:.1}s; \
         {total_ok} requests served, {shed} shed, {errors} other errors; \
         {swaps} background hot-swap(s), clients saw {} model version(s).",
        versions.len()
    ));
    if swaps == 0 {
        report.note("WARNING: no hot-swap observed — acceptance criterion not met this run.");
    }
    report.note(&format!(
        "hot paths: inline in-process {inproc_rps:.0} rps, pipelined v3 loopback \
         {tcp_v3_rps:.0} rps (depth {pipeline_depth}); v1/v2 JSON clients still served."
    ));
    report.note(&format!(
        "steady-state window ({:.1}s): {:.1} rps, p50 {:.2} ms, p99 {:.2} ms; \
         profiler captured {} samples over {} distinct stacks \
         (flamegraph: results/serve_loadtest.flame.svg).",
        steady.span_s,
        steady.rate,
        steady.p50 as f64 / 1e6,
        steady.p99 as f64 / 1e6,
        prof_report.samples,
        prof_report.distinct_stacks
    ));
    finish_report(&report);
    eprintln!("[loadtest] total {:.0}s", t0.elapsed().as_secs_f64());
}

/// In-process client: cycles served apps and a small seed range (so the
/// prediction cache sees repeats), recording latency per successful call.
fn inproc_client(
    handle: &ServiceHandle,
    thread_id: usize,
    min_reqs: usize,
    stop: &AtomicBool,
) -> ClientStats {
    let cluster = ClusterSpec::cluster_a();
    let mut stats =
        ClientStats { latencies_s: Vec::new(), versions: Vec::new(), shed: 0, errors: 0 };
    let mut i = 0usize;
    while i < min_reqs || !stop.load(Ordering::Acquire) {
        let app = SERVED_APPS[(thread_id + i) % SERVED_APPS.len()];
        let data = app.dataset(SizeTier::Valid);
        let seed = (i % 8) as u64;
        let t = Instant::now();
        match handle.recommend(app, &data, &cluster, 5, seed) {
            Ok(resp) => {
                stats.latencies_s.push(t.elapsed().as_secs_f64());
                stats.versions.push(resp.version);
            }
            Err(ServeError::Overloaded) => stats.shed += 1,
            Err(_) => stats.errors += 1,
        }
        i += 1;
    }
    stats
}

/// TCP client: same request mix through the typed v3 binary front-end,
/// one request per round trip.
fn tcp_client(
    addr: std::net::SocketAddr,
    thread_id: usize,
    min_reqs: usize,
    stop: &AtomicBool,
) -> ClientStats {
    let mut client = ClientBuilder::new().connect(addr).expect("tcp connect");
    assert_eq!(client.protocol_version(), 3, "server must speak v3");
    let mut stats =
        ClientStats { latencies_s: Vec::new(), versions: Vec::new(), shed: 0, errors: 0 };
    let mut i = 0usize;
    while i < min_reqs || !stop.load(Ordering::Acquire) {
        let app = SERVED_APPS[(thread_id + i) % SERVED_APPS.len()];
        let data = app.dataset(SizeTier::Valid);
        let seed = (i % 8) as u64;
        let request = Request::Recommend {
            app,
            data,
            cluster: ClusterRef::Preset("cluster-a".to_string()),
            k: 5,
            seed,
            trace: None,
        };
        let t = Instant::now();
        match client.call(&request) {
            Ok(Response::Recommend { version, .. }) => {
                stats.latencies_s.push(t.elapsed().as_secs_f64());
                stats.versions.push(version);
            }
            Ok(Response::Error { code, .. }) => {
                if code == lite_serve::ErrorCode::Overloaded {
                    stats.shed += 1;
                } else {
                    stats.errors += 1;
                }
            }
            Ok(_) | Err(_) => stats.errors += 1,
        }
        i += 1;
    }
    stats
}

/// Hot-path phase 1: repeat recommends against the in-process handle. The
/// seed range keeps every request inside the warmed whole-response cache,
/// so this measures the inline fast path (one atomic stamp load + cache
/// clone), not the queue.
fn inproc_hit_phase(handle: &ServiceHandle, quick: bool) -> (f64, usize) {
    let cluster = ClusterSpec::cluster_a();
    let total: usize = if quick { 20_000 } else { 400_000 };
    // Warm every key once (and once more after any in-flight swap).
    for i in 0..(2 * SERVED_APPS.len() * 8) {
        let app = SERVED_APPS[i % SERVED_APPS.len()];
        let data = app.dataset(SizeTier::Valid);
        let _ = handle.recommend(app, &data, &cluster, 5, (i % 8) as u64);
    }
    let datas: Vec<_> = SERVED_APPS.iter().map(|a| a.dataset(SizeTier::Valid)).collect();
    let t = Instant::now();
    let mut ok = 0usize;
    for i in 0..total {
        let which = i % SERVED_APPS.len();
        let seed = (i % 8) as u64;
        if handle.recommend(SERVED_APPS[which], &datas[which], &cluster, 5, seed).is_ok() {
            ok += 1;
        }
    }
    let rps = ok as f64 / t.elapsed().as_secs_f64().max(1e-9);
    (rps, ok)
}

/// Hot-path phase 2: the same repeat mix over loopback TCP as pipelined
/// v3 binary frames. The reactor answers straight from the inline
/// response cache, so one connection saturates the wire path.
fn tcp_v3_phase(addr: std::net::SocketAddr, quick: bool) -> (f64, usize, usize) {
    let depth = 128usize;
    let mut client = ClientBuilder::new().pipeline_depth(depth).connect(addr).expect("v3 connect");
    assert_eq!(client.protocol_version(), 3, "server must speak v3");
    let batch: Vec<Request> = (0..512)
        .map(|i| {
            let which = i % SERVED_APPS.len();
            Request::Recommend {
                app: SERVED_APPS[which],
                data: SERVED_APPS[which].dataset(SizeTier::Valid),
                cluster: ClusterRef::Preset("cluster-a".to_string()),
                k: 5,
                seed: (i % 8) as u64,
                trace: None,
            }
        })
        .collect();
    // Warm the wire path and the response cache.
    let _ = client.pipeline(&batch).expect("warmup batch");
    let total: usize = if quick { 10_000 } else { 200_000 };
    let rounds = total.div_ceil(batch.len());
    let t = Instant::now();
    let mut ok = 0usize;
    for _ in 0..rounds {
        let responses = client.pipeline(&batch).expect("pipelined batch");
        ok += responses.iter().filter(|r| r.is_ok()).count();
    }
    let rps = ok as f64 / t.elapsed().as_secs_f64().max(1e-9);
    (rps, ok, depth)
}

/// Legacy-client sanity: v1 and v2 JSON serial clients still get answers
/// from the same server, byte-compatible negotiation included.
fn legacy_sanity(addr: std::net::SocketAddr) -> (bool, bool) {
    let request = Request::Recommend {
        app: AppId::Sort,
        data: AppId::Sort.dataset(SizeTier::Valid),
        cluster: ClusterRef::Preset("cluster-a".to_string()),
        k: 3,
        seed: 1,
        trace: None,
    };
    let check = |version: u64| -> bool {
        let Ok(mut client) = ClientBuilder::new().protocol(version).connect(addr) else {
            return false;
        };
        client.protocol_version() == version
            && matches!(client.call(&request), Ok(Response::Recommend { .. }))
            && matches!(client.call(&Request::Ping), Ok(Response::Pong { .. }))
    };
    (check(1), check(2))
}

/// Time one 30-candidate request scored per-candidate (30 single-row NECS
/// passes) vs batched (one 30×stages pass) and record the speedup.
fn batch_comparison(report: &Report, ds: &Dataset, tuner: &LiteTuner) {
    let cluster = ClusterSpec::cluster_a();
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let ctx = PredictionContext::warm(&ds.registry, AppId::KMeans, &data, &cluster)
        .expect("KMeans is warm");
    let confs = tuner.acg.candidates_seeded(AppId::KMeans, &data, &ctx.env, 30, 17);
    let reps = if lite_bench::quick_mode() { 3 } else { 10 };

    // Warm up once so allocator effects do not bias either side.
    let batch_ref = tuner.model.predict_app_batch(&tuner.registry, &ctx, &confs);

    let t = Instant::now();
    let mut per: Vec<f64> = Vec::new();
    for _ in 0..reps {
        per = confs.iter().map(|c| tuner.model.predict_app(&tuner.registry, &ctx, c)).collect();
    }
    let percand_s = t.elapsed().as_secs_f64() / reps as f64;

    let t = Instant::now();
    let mut batch: Vec<f64> = Vec::new();
    for _ in 0..reps {
        batch = tuner.model.predict_app_batch(&tuner.registry, &ctx, &confs);
    }
    let batch_s = t.elapsed().as_secs_f64() / reps as f64;

    assert_eq!(batch, batch_ref, "batched scoring must be deterministic");
    let max_rel = per
        .iter()
        .zip(batch.iter())
        .map(|(a, b)| (a - b).abs() / a.abs().max(1.0))
        .fold(0.0f64, f64::max);
    assert!(max_rel <= 1e-9, "batched and per-candidate predictions diverged: {max_rel}");

    let speedup = percand_s / batch_s.max(1e-12);
    report.field("batch30_percand_s", percand_s);
    report.field("batch30_batched_s", batch_s);
    report.field("batch30_speedup", speedup);
    report.note(&format!(
        "30-candidate scoring: per-candidate {:.1} ms vs batched {:.1} ms ({speedup:.1}x).",
        percand_s * 1e3,
        batch_s * 1e3
    ));
    eprintln!(
        "[loadtest] batch comparison: {:.1} ms -> {:.1} ms ({speedup:.1}x)",
        percand_s * 1e3,
        batch_s * 1e3
    );
}

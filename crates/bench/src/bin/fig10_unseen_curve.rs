//! Figure 10: ranking performance vs the fraction of never-seen
//! applications.
//!
//! For each `n`, NECS is trained on `15 − n` randomly chosen applications
//! and evaluated on the `n` held-out ones (cold-start contexts), averaged
//! over several runs. Paper shape: performance degrades smoothly, stays
//! above the best warm competitor up to x ≈ 0.4, and above the average
//! warm competitor up to x ≈ 0.7.

use lite_bench::{f4, finish_report, gold_set, num_candidates, train_confs_per_cell, EvalSetting};
use lite_core::experiment::{DatasetBuilder, PredictionContext};
use lite_core::features::StageInstance;
use lite_core::necs::{Necs, NecsConfig};
use lite_metrics::ranking::{hr_at_k, ndcg_at_k, EXECUTION_CAP_S};
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("fig10_unseen_curve");
    report.field("quick_mode", lite_bench::quick_mode());
    let cluster = ClusterSpec::cluster_c();
    let apps = AppId::all();
    let ns: Vec<usize> =
        if lite_bench::quick_mode() { vec![1, 7] } else { vec![1, 3, 5, 7, 10, 14] };
    let runs = if lite_bench::quick_mode() { 1 } else { 3 };
    // Fewer epochs per model: this figure trains ns.len() x runs models.
    let epochs = if lite_bench::quick_mode() { 3 } else { 15 };

    let widths = [8usize, 8, 9, 9];
    let mut table = report.table(
        "Figure 10: ranking vs fraction of never-seen applications (cluster C validation)",
        &["x=n/15", "n", "HR@5", "NDCG@5"],
        &widths,
    );

    for &n in &ns {
        let mut hr_acc = 0.0;
        let mut ndcg_acc = 0.0;
        let mut counted = 0.0;
        for run in 0..runs {
            let mut pool: Vec<AppId> = apps.to_vec();
            let mut rng = StdRng::seed_from_u64(1300 + 31 * n as u64 + run);
            pool.shuffle(&mut rng);
            let (unseen, seen) = pool.split_at(n);

            let ds = DatasetBuilder {
                apps: seen.to_vec(),
                clusters: ClusterSpec::all_evaluation_clusters(),
                tiers: SizeTier::train_tiers().to_vec(),
                confs_per_cell: train_confs_per_cell(),
                seed: 61 + run,
            }
            .build();
            let refs: Vec<&StageInstance> = ds.instances.iter().collect();
            let model = Necs::train(
                &ds.registry,
                &ds.space,
                &refs,
                NecsConfig { epochs, ..Default::default() },
            );

            for (ai, &app) in unseen.iter().enumerate() {
                let setting = EvalSetting {
                    group: "unseen",
                    app,
                    cluster: cluster.clone(),
                    data: app.dataset(SizeTier::Valid),
                };
                let gold =
                    gold_set(&ds.space, &setting, num_candidates(), 2200 + 101 * run + ai as u64);
                let mut reg = ds.registry.clone();
                let ctx = PredictionContext::cold(&mut reg, app, &setting.data, &cluster);
                let preds: Vec<f64> = gold
                    .confs
                    .iter()
                    .map(|c| {
                        if lite_sparksim::exec::preflight(&cluster, c, setting.data.bytes).is_err()
                        {
                            EXECUTION_CAP_S * 10.0
                        } else {
                            model.predict_app(&reg, &ctx, c)
                        }
                    })
                    .collect();
                hr_acc += hr_at_k(&preds, &gold.times, 5);
                ndcg_acc += ndcg_at_k(&preds, &gold.times, 5);
                counted += 1.0;
            }
        }
        table.row(&[
            format!("{:.2}", n as f64 / 15.0),
            n.to_string(),
            f4(hr_acc / counted),
            f4(ndcg_acc / counted),
        ]);
        eprintln!("[fig10] n={n} done ({:.0}s)", t0.elapsed().as_secs_f64());
    }
    report.note(
        "\nReference lines from Table VII (cluster C): best warm competitor and average warm \
         competitor — compare the curve against those values.",
    );
    finish_report(&report);
    eprintln!("[fig10] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! Table XI: ranking accuracy under warm-start vs cold-start, NECS vs
//! SCG+LightGBM, plus the oov-token ablation (Cold-UNK).
//!
//! Paper shape: the feature baseline (SCG+LightGBM) degrades sharply on
//! cold-start applications; NECS stays close to its warm-start accuracy
//! thanks to the instrumented code/DAG encoders; removing the oov node
//! token hurts cold-start robustness.

use lite_bench::{
    f4, finish_report, gold_set, necs_epochs, num_candidates, train_confs_per_cell, EvalSetting,
};
use lite_core::baselines::{EstimatorKind, FeatureSet, TabularModel};
use lite_core::experiment::{Dataset, DatasetBuilder, PredictionContext};
use lite_core::features::{StageInstance, TemplateRegistry};
use lite_core::necs::{Necs, NecsConfig};
use lite_metrics::ranking::{hr_at_k, ndcg_at_k, EXECUTION_CAP_S};
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use std::time::Instant;

/// Score a NECS model on a setting whose templates may need cold interning.
fn necs_scores(
    model: &Necs,
    registry: &mut TemplateRegistry,
    setting: &EvalSetting,
    gold: &lite_bench::GoldSet,
) -> (f64, f64) {
    let ctx = PredictionContext::cold(registry, setting.app, &setting.data, &setting.cluster);
    let preds: Vec<f64> = gold
        .confs
        .iter()
        .map(|c| {
            if lite_sparksim::exec::preflight(&setting.cluster, c, setting.data.bytes).is_err() {
                EXECUTION_CAP_S * 10.0
            } else {
                model.predict_app(registry, &ctx, c)
            }
        })
        .collect();
    (hr_at_k(&preds, &gold.times, 5), ndcg_at_k(&preds, &gold.times, 5))
}

fn main() {
    let t0 = Instant::now();
    let report = Report::new("table11_cold_ranking");
    report.field("quick_mode", lite_bench::quick_mode());
    let cluster = ClusterSpec::cluster_c();
    let apps = AppId::all();
    let eval_apps: Vec<AppId> =
        if lite_bench::quick_mode() { apps[..3].to_vec() } else { apps.to_vec() };

    // ---- Warm-start reference: models trained on everything.
    let full: Dataset = DatasetBuilder::paper_training(train_confs_per_cell(), 51).build();
    let full_refs: Vec<&StageInstance> = full.instances.iter().collect();
    let warm_necs = Necs::train(
        &full.registry,
        &full.space,
        &full_refs,
        NecsConfig { epochs: necs_epochs(), ..Default::default() },
    );
    let warm_gbdt = TabularModel::fit(&full, EstimatorKind::Gbdt, FeatureSet::Scg, 51);
    eprintln!("[table11] warm models ready ({:.0}s)", t0.elapsed().as_secs_f64());

    let mut acc = [[0.0f64; 2]; 5]; // [model][hr,ndcg]
    let labels = ["NECS warm", "NECS cold", "NECS cold-UNK", "SCG+LGBM warm", "SCG+LGBM cold"];
    let mut counted = 0.0;

    for (ai, &app) in eval_apps.iter().enumerate() {
        let setting = EvalSetting {
            group: "cold",
            app,
            cluster: cluster.clone(),
            data: app.dataset(SizeTier::Valid),
        };
        let gold = gold_set(&full.space, &setting, num_candidates(), 9400 + ai as u64);

        // Warm scores (both models trained once, before the loop).
        let warm_ctx = PredictionContext::warm(&full.registry, app, &setting.data, &cluster)
            .expect("all apps are warm in the full dataset");
        let warm_preds = |predict: &dyn Fn(&lite_sparksim::conf::SparkConf) -> f64| -> (f64, f64) {
            let preds: Vec<f64> = gold
                .confs
                .iter()
                .map(|c| {
                    if lite_sparksim::exec::preflight(&cluster, c, setting.data.bytes).is_err() {
                        EXECUTION_CAP_S * 10.0
                    } else {
                        predict(c)
                    }
                })
                .collect();
            (hr_at_k(&preds, &gold.times, 5), ndcg_at_k(&preds, &gold.times, 5))
        };
        let (h, n) = warm_preds(&|c| warm_necs.predict_app(&full.registry, &warm_ctx, c));
        acc[0][0] += h;
        acc[0][1] += n;
        let (h, n) = warm_preds(&|c| warm_gbdt.predict_app(&full.registry, &warm_ctx, c));
        acc[3][0] += h;
        acc[3][1] += n;

        // Cold models: trained without this app.
        let train_apps: Vec<AppId> = apps.iter().copied().filter(|a| *a != app).collect();
        let cold_ds = DatasetBuilder {
            apps: train_apps,
            clusters: ClusterSpec::all_evaluation_clusters(),
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell: train_confs_per_cell(),
            seed: 53,
        }
        .build();
        let cold_refs: Vec<&StageInstance> = cold_ds.instances.iter().collect();
        let cold_necs = Necs::train(
            &cold_ds.registry,
            &cold_ds.space,
            &cold_refs,
            NecsConfig { epochs: necs_epochs(), ..Default::default() },
        );
        let mut reg = cold_ds.registry.clone();
        let (h, n) = necs_scores(&cold_necs, &mut reg, &setting, &gold);
        acc[1][0] += h;
        acc[1][1] += n;

        // Cold-UNK ablation: same weights, oov node disabled.
        let mut no_oov = cold_necs.clone();
        no_oov.config.use_oov_node = false;
        let mut reg2 = cold_ds.registry.clone();
        let (h, n) = necs_scores(&no_oov, &mut reg2, &setting, &gold);
        acc[2][0] += h;
        acc[2][1] += n;

        // Cold SCG+LightGBM: intern templates, then predict.
        let cold_gbdt = TabularModel::fit(&cold_ds, EstimatorKind::Gbdt, FeatureSet::Scg, 53);
        let mut reg3 = cold_ds.registry.clone();
        let ctx = PredictionContext::cold(&mut reg3, app, &setting.data, &cluster);
        let preds: Vec<f64> = gold
            .confs
            .iter()
            .map(|c| {
                if lite_sparksim::exec::preflight(&cluster, c, setting.data.bytes).is_err() {
                    EXECUTION_CAP_S * 10.0
                } else {
                    cold_gbdt.predict_app(&reg3, &ctx, c)
                }
            })
            .collect();
        acc[4][0] += hr_at_k(&preds, &gold.times, 5);
        acc[4][1] += ndcg_at_k(&preds, &gold.times, 5);

        counted += 1.0;
        eprintln!("[table11] {} done ({:.0}s)", app.abbrev(), t0.elapsed().as_secs_f64());
    }

    let widths = [16usize, 9, 9];
    let mut table = report.table(
        "Table XI: average ranking under warm vs cold start (cluster C validation)",
        &["model", "HR@5", "NDCG@5"],
        &widths,
    );
    for (i, label) in labels.iter().enumerate() {
        table.row(&[label.to_string(), f4(acc[i][0] / counted), f4(acc[i][1] / counted)]);
    }
    report.note(
        "\nPaper shape: SCG+LightGBM drops sharply warm->cold; NECS stays close to warm accuracy; \
         removing the oov token (Cold-UNK) degrades cold-start ranking.",
    );
    finish_report(&report);
    eprintln!("[table11] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! Telemetry-plane scenario: a scraper polls the `stats`/`metrics`/
//! `trace`/`health` admin ops over TCP while recommend traffic runs, and a
//! feedback driver skews the simulator's response surface mid-run so the
//! drift monitor — not the fixed feedback batch — triggers the model swap.
//!
//! Reported into `results/telemetry_scrape.manifest.jsonl`:
//! * scrape latencies per admin op (p50/p99 from raw sorted samples),
//! * honest vs skewed observe counts and the drift summary at swap time,
//! * proof the swap beat the batch trigger (`update_batch` is set far out
//!   of reach) and that `serve.drift.alerts` fired.
//!
//! Artifacts written next to the manifest:
//! * `telemetry_scrape.prom` — final Prometheus exposition of the registry,
//! * `telemetry_scrape.trace.json` — Chrome/Perfetto trace of serve spans.
//!
//! `LITE_BENCH_QUICK=1` shrinks the run for smoke testing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_bench::finish_report;
use lite_core::amu::AmuConfig;
use lite_core::experiment::DatasetBuilder;
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Json, Registry, Report, Tracer};
use lite_serve::{
    DriftConfig, ModelSnapshot, Request, ServeConfig, ServeError, Service, ServiceHandle,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;

const SERVED_APPS: [AppId; 2] = [AppId::Sort, AppId::KMeans];
const SCRAPE_OPS: [&str; 4] = ["stats", "metrics", "health", "trace"];

/// How much slower the "cluster" gets when we skew the response surface.
/// 16x pushes rolling MAPE to ~0.94 against a model trained on the honest
/// surface — past any threshold the calibration below can pick.
const SKEW: f64 = 16.0;

struct ScrapeStats {
    /// One latency vector per entry of [`SCRAPE_OPS`].
    latencies_s: [Vec<f64>; 4],
    errors: usize,
}

fn main() {
    let t0 = Instant::now();
    let quick = lite_bench::quick_mode();
    let report = Report::new("telemetry_scrape");
    report.field("quick_mode", quick);

    // ---- offline phase: dataset + model ---------------------------------
    let ds = report.phase("dataset", || {
        Arc::new(
            DatasetBuilder {
                apps: SERVED_APPS.to_vec(),
                clusters: vec![ClusterSpec::cluster_a()],
                tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
                confs_per_cell: if quick { 2 } else { 3 },
                seed: 4242,
            }
            .build(),
        )
    });
    let tuner = report.phase("train", || {
        LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: if quick { 2 } else { 6 }, ..Default::default() },
            4242,
        )
    });
    eprintln!("[scrape] model ready ({:.0}s)", t0.elapsed().as_secs_f64());

    // ---- calibrate the drift threshold ----------------------------------
    // Measure the model's error on the honest response surface the same way
    // the service will see it (top-1 recommendation vs simulated run). The
    // top-1 error is dominated by systematic optimism (the winning
    // candidate is the one the model is most optimistic about), so the
    // baseline MAPE is high but stable; the threshold goes at the midpoint
    // between that baseline and the error the SKEW-times-slower surface
    // will produce.
    let cluster = ds.clusters[0].clone();
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let (honest_mape, pred_ratio) = {
        let samples: Vec<(f64, f64)> = (0..12u64)
            .map(|s| {
                let ranked =
                    tuner.recommend(AppId::KMeans, &data, &cluster, s).expect("KMeans is warm");
                let truth = simulate(&cluster, &ranked[0].conf, &plan, s).total_time_s.max(1e-9);
                let pred = ranked[0].predicted_s;
                ((pred - truth).abs() / truth, pred / truth)
            })
            .collect();
        let n = samples.len() as f64;
        (
            samples.iter().map(|(e, _)| e).sum::<f64>() / n,
            samples.iter().map(|(_, r)| r).sum::<f64>() / n,
        )
    };
    // Expected rolling MAPE once observed times are multiplied by SKEW.
    let skewed_mape = (pred_ratio - SKEW).abs() / SKEW;
    assert!(
        skewed_mape > honest_mape + 0.05,
        "skew {SKEW}x does not separate the error regimes \
         (honest {honest_mape:.3}, skewed {skewed_mape:.3})"
    );
    let mape_threshold = (honest_mape + skewed_mape) / 2.0;
    eprintln!(
        "[scrape] honest MAPE {honest_mape:.3}, expected skewed {skewed_mape:.3} \
         -> drift threshold {mape_threshold:.3}"
    );
    report.field("honest_mape_calibrated", honest_mape);
    report.field("skewed_mape_expected", skewed_mape);

    // ---- serving phase --------------------------------------------------
    // The batch trigger is unreachable, so a swap can only come from the
    // drift path; the tracer is enabled so `trace` exports real spans. The
    // inversion gate is disabled (a uniform slowdown preserves ranking) so
    // MAPE is the one signal under test.
    let update_batch: usize = 100_000;
    let drift =
        DriftConfig { window: 64, min_samples: 8, mape_threshold, inversion_threshold: 2.0 };
    report.field("update_batch", update_batch);
    report.field("drift_window", drift.window);
    report.field("drift_mape_threshold", drift.mape_threshold);
    let registry = Registry::new();
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 64,
        update_batch,
        drift,
        amu: AmuConfig { epochs: 1, half_batch: 64, ..Default::default() },
        ..Default::default()
    };
    let snapshot = ModelSnapshot::from_tuner(&tuner);
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::new());
    let handle = service.handle();
    let server =
        lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind TCP front-end");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let serve_t0 = Instant::now();

    // Recommend traffic: keeps the workers, cache, and latency histogram
    // busy while the scraper reads the admin plane.
    let traffic: Vec<_> = (0..2usize)
        .map(|t| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || recommend_client(&handle, t, &stop))
        })
        .collect();

    // Scraper: cycles the four admin ops over its own TCP connection.
    let scraper = {
        let stop = stop.clone();
        std::thread::spawn(move || scrape_client(addr, &stop))
    };

    // ---- feedback driver ------------------------------------------------
    // Honest observes first (the model should NOT drift on the surface it
    // was trained on), then skew the simulator mid-run and wait for the
    // drift-triggered swap.
    let honest_runs: u64 = if quick { 12 } else { 24 };
    let mut seed = 9000u64;
    for _ in 0..honest_runs {
        let rec = loop {
            match handle.recommend(AppId::KMeans, &data, &cluster, 1, seed) {
                Ok(rec) => break rec,
                Err(ServeError::Overloaded) => std::thread::yield_now(),
                Err(e) => panic!("feedback driver failed: {e}"),
            }
        };
        let result = simulate(&cluster, &rec.ranked[0].conf, &plan, seed);
        let _ = handle.observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result);
        seed += 1;
    }
    // Give the updater a poll cycle, then check the honest surface did not
    // trip the monitor.
    std::thread::sleep(Duration::from_millis(250));
    let pre_skew = handle.drift();
    report.field("honest_runs", honest_runs);
    report.field("pre_skew_mape", pre_skew.mape);
    report.field("pre_skew_drifted", pre_skew.drifted);
    assert_eq!(handle.swap_count(), 0, "no swap may happen on the honest surface");

    eprintln!(
        "[scrape] skewing response surface {SKEW}x after {honest_runs} honest runs \
         (pre-skew MAPE {:.3})",
        pre_skew.mape
    );
    let mut skewed_runs = 0u64;
    let drift_deadline = Instant::now() + Duration::from_secs(300);
    while handle.swap_count() == 0 {
        assert!(Instant::now() < drift_deadline, "drift never triggered a swap within 300 s");
        let rec = match handle.recommend(AppId::KMeans, &data, &cluster, 1, seed) {
            Ok(rec) => rec,
            Err(ServeError::Overloaded) => {
                std::thread::yield_now();
                continue;
            }
            Err(e) => panic!("feedback driver failed: {e}"),
        };
        let mut result = simulate(&cluster, &rec.ranked[0].conf, &plan, seed);
        result.total_time_s *= SKEW;
        for stage in &mut result.stages {
            stage.duration_s *= SKEW;
        }
        let _ = handle.observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result);
        skewed_runs += 1;
        seed += 1;
    }
    let swap_wall_s = serve_t0.elapsed().as_secs_f64();
    let total_observes = honest_runs + skewed_runs;
    eprintln!(
        "[scrape] drift swap after {skewed_runs} skewed runs ({total_observes} total, \
         {swap_wall_s:.1}s into serving)"
    );

    // Let the scraper see the post-swap state before tearing down.
    std::thread::sleep(Duration::from_millis(if quick { 500 } else { 1500 }));
    stop.store(true, Ordering::Release);
    let scrape = scraper.join().expect("scraper thread panicked");
    let requests: u64 =
        traffic.into_iter().map(|c| c.join().expect("traffic thread panicked")).sum();
    report.phase_s("serve", serve_t0.elapsed().as_secs_f64());

    // ---- acceptance: drift beat the batch trigger -----------------------
    let snap = registry.snapshot();
    let alerts = snap.counter("serve.drift.alerts").unwrap_or(0);
    let swaps = handle.swap_count();
    assert!(swaps >= 1, "drift must have triggered a swap");
    assert!(alerts >= 1, "serve.drift.alerts must fire: {:?}", snap.counters);
    assert!(
        total_observes < update_batch as u64,
        "swap must beat the {update_batch}-observation batch trigger"
    );
    report.field("skewed_runs", skewed_runs);
    report.field("total_observes", total_observes);
    report.field("hot_swaps", swaps);
    report.field("drift_alerts", alerts);
    report.field("traffic_requests", requests);
    report.field("scrape_errors", scrape.errors);

    // ---- final scrape -> artifacts --------------------------------------
    let mut client = lite_serve::ClientBuilder::new().connect(addr).expect("tcp connect");
    let metrics = client
        .call(&Request::Metrics)
        .expect("final metrics scrape")
        .into_admin()
        .expect("metrics doc");
    let prom = metrics.get("body").and_then(Json::as_str).expect("metrics body").to_string();
    assert!(prom.contains("# TYPE serve_drift_alerts counter"), "exposition incomplete");
    let trace = client
        .call(&Request::Trace)
        .expect("final trace scrape")
        .into_admin()
        .and_then(|doc| doc.get("trace").cloned())
        .expect("trace doc");
    let events = trace.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert!(!events.is_empty(), "enabled tracer must export spans");
    drop(client);
    server.shutdown();
    service.shutdown();

    let dir = lite_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[scrape] could not create {}: {e}", dir.display());
    }
    for (file, contents) in
        [("telemetry_scrape.prom", prom), ("telemetry_scrape.trace.json", trace.render())]
    {
        let path = dir.join(file);
        match std::fs::write(&path, contents) {
            Ok(()) => eprintln!("[scrape] wrote {}", path.display()),
            Err(e) => eprintln!("[scrape] could not write {}: {e}", path.display()),
        }
        report.field(file, true);
    }

    // ---- scrape latency percentiles -------------------------------------
    let widths = [10usize, 8, 10, 10];
    let mut table =
        report.table("admin scrape latency", &["op", "samples", "p50_ms", "p99_ms"], &widths);
    for (op, lat) in SCRAPE_OPS.iter().zip(scrape.latencies_s.iter()) {
        let mut sorted = lat.clone();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            sorted[((sorted.len() - 1) as f64 * q).round() as usize]
        };
        let (p50, p99) = (pct(0.50), pct(0.99));
        assert!(!sorted.is_empty(), "scraper never completed a {op} call");
        report.field(&format!("scrape_{op}_p50_ms"), p50 * 1e3);
        report.field(&format!("scrape_{op}_p99_ms"), p99 * 1e3);
        table.row(&[
            (*op).into(),
            format!("{}", sorted.len()),
            format!("{:.2}", p50 * 1e3),
            format!("{:.2}", p99 * 1e3),
        ]);
    }
    drop(table);
    report.metrics(&registry);

    report.note(&format!(
        "Drift-triggered swap after {skewed_runs} skewed observes ({total_observes} total, \
         batch trigger at {update_batch}); {alerts} drift alert(s); \
         scraper ran {} admin calls concurrently with {requests} recommends.",
        scrape.latencies_s.iter().map(Vec::len).sum::<usize>()
    ));
    finish_report(&report);
    eprintln!("[scrape] total {:.0}s", t0.elapsed().as_secs_f64());
}

/// Background recommend traffic; returns the number of successful calls.
fn recommend_client(handle: &ServiceHandle, thread_id: usize, stop: &AtomicBool) -> u64 {
    let cluster = ClusterSpec::cluster_a();
    let mut ok = 0u64;
    let mut i = 0usize;
    while !stop.load(Ordering::Acquire) {
        let app = SERVED_APPS[(thread_id + i) % SERVED_APPS.len()];
        let data = app.dataset(SizeTier::Valid);
        match handle.recommend(app, &data, &cluster, 5, (i % 8) as u64) {
            Ok(_) => ok += 1,
            Err(ServeError::Overloaded) => std::thread::yield_now(),
            Err(e) => panic!("traffic client failed: {e}"),
        }
        i += 1;
        // Light throttle: this thread provides background traffic for the
        // scraper, not saturation load (serve_loadtest covers that), and
        // an unthrottled loop floods the tracer's span buffer.
        std::thread::sleep(Duration::from_micros(500));
    }
    ok
}

/// Scraper: cycles `stats`/`metrics`/`health`/`trace` over one framed-JSON
/// TCP connection, timing each round trip.
fn scrape_client(addr: std::net::SocketAddr, stop: &AtomicBool) -> ScrapeStats {
    let mut client = lite_serve::ClientBuilder::new().connect(addr).expect("scraper connect");
    let mut stats = ScrapeStats { latencies_s: Default::default(), errors: 0 };
    let mut i = 0usize;
    while !stop.load(Ordering::Acquire) {
        let op = i % SCRAPE_OPS.len();
        let request = match op {
            0 => Request::Stats,
            1 => Request::Metrics,
            2 => Request::Health,
            _ => Request::Trace,
        };
        let t = Instant::now();
        let ok = matches!(client.call(&request), Ok(resp) if resp.is_ok());
        if ok {
            stats.latencies_s[op].push(t.elapsed().as_secs_f64());
        } else {
            stats.errors += 1;
        }
        i += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    stats
}

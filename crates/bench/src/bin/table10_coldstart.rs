//! Table X: cold-start tuning — ETR per never-seen application.
//!
//! Leave-one-app-out: for each application, LITE is trained without any of
//! its runs (and with vocabularies built from the other fourteen apps
//! only), then asked to tune it on large test data in cluster C. The
//! cold-start path instruments the app on its smallest dataset first.
//! Paper shape: ETR > 0.9 for most apps, average ≈ 0.95.

use lite_bench::tuning::execute;
use lite_bench::{finish_report, necs_epochs, train_confs_per_cell};
use lite_core::experiment::DatasetBuilder;
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_metrics::ranking::etr;
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("table10_coldstart");
    report.field("quick_mode", lite_bench::quick_mode());
    let cluster = ClusterSpec::cluster_c();
    let widths = [6usize, 12, 12, 8];
    let mut table = report.table(
        "Table X: cold-start ETR per never-seen application (large data, cluster C)",
        &["app", "default t(s)", "LITE t(s)", "ETR"],
        &widths,
    );

    let apps = AppId::all();
    let held_out: Vec<AppId> =
        if lite_bench::quick_mode() { vec![AppId::Terasort, AppId::KMeans] } else { apps.to_vec() };

    let mut etrs = Vec::new();
    for (ai, &held) in held_out.iter().enumerate() {
        // Train on the other fourteen apps only — vocabulary, templates,
        // NECS and ACG all exclude the held-out app.
        let train_apps: Vec<AppId> = apps.iter().copied().filter(|a| *a != held).collect();
        let ds = DatasetBuilder {
            apps: train_apps,
            clusters: ClusterSpec::all_evaluation_clusters(),
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell: train_confs_per_cell(),
            seed: 31,
        }
        .build();
        let mut lite = LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: necs_epochs(), ..Default::default() },
            31,
        );

        let data = held.dataset(SizeTier::Test);
        let seed = 7400 + ai as u64;
        let ranked = lite.recommend_cold(held, &data, &cluster, seed);
        let t_lite = execute(&cluster, held, &data, &ranked[0].conf, seed ^ 0x3);
        let t_default = execute(&cluster, held, &data, &ds.space.default_conf(), seed ^ 0x4);
        let e = etr(t_default, t_lite);
        etrs.push(e);
        table.row(&[
            held.abbrev().to_string(),
            format!("{t_default:.0}"),
            format!("{t_lite:.0}"),
            format!("{e:.2}"),
        ]);
        eprintln!("[table10] {} done ({:.0}s)", held.abbrev(), t0.elapsed().as_secs_f64());
    }
    let avg = etrs.iter().sum::<f64>() / etrs.len() as f64;
    let above = etrs.iter().filter(|&&e| e > 0.7).count();
    report.field("avg_cold_etr", avg);
    report.field("apps_above_0_7", above as u64);
    report.note(&format!(
        "\nAverage cold-start ETR = {avg:.2}; {above}/{} apps above 0.7 (paper: avg 0.95, 11/15 above 0.95 — \
         note their warm-start best competitor reached only 0.69).",
        etrs.len()
    ));
    finish_report(&report);
    eprintln!("[table10] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! LITE-RAG benchmark: ANN index quality/latency gates at scale, plus the
//! cold-start head-to-head that motivates the subsystem.
//!
//! Part 1 — synthetic index at scale (120k points, 32-dim, clustered):
//! * recall@10 against the brute-force oracle, gated at >= 0.95,
//! * single-query latency distribution, p99 gated under 1 ms,
//! * serialize → deserialize → search byte-identity on the large index.
//!
//! Part 2 — leave-one-app-out cold start on the simulator:
//! * zero-execution arm: the RAG tuner retrieves similar historical runs
//!   by static code embedding and adapts their confs to the target
//!   data/cluster scale — no simulated execution of the target app at
//!   all. Gated: beats the default configuration on average ETR.
//! * budget-cut arm: the NECS scoring budget cut to a third — a strict
//!   prefix of the full arm's ACG pool topped up with RAG's
//!   estimate-ranked warm-start seeds, the union scored by NECS. Gated:
//!   matches full-budget ACG cold start within 5 points of ETR.
//!
//! `LITE_BENCH_QUICK=1` shrinks the index to ~20k points and the
//! head-to-head to two held-out apps for smoke testing.

#![allow(clippy::print_stdout)]

use std::time::Instant;

use lite_bench::tuning::execute;
use lite_bench::{finish_report, necs_epochs, train_confs_per_cell};
use lite_core::experiment::{DatasetBuilder, PredictionContext};
use lite_core::necs::NecsConfig;
use lite_core::recommend::{score_candidates, LiteTuner};
use lite_metrics::ranking::etr;
use lite_obs::{Report, Tracer};
use lite_rag::{exact_knn, Hnsw, HnswConfig, RagConfig, RagTuner};
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in [-1, 1).
fn unit(state: &mut u64) -> f32 {
    ((splitmix64(state) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
}

fn random_vec(state: &mut u64, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| unit(state)).collect()
}

/// Clustered corpus shaped like real embedding sets: points huddle around
/// centers with a uniform background, the regime HNSW's heuristic
/// neighbor selection exists for.
fn corpus(seed: u64, n: usize, dim: usize, centers: usize) -> Vec<Vec<f32>> {
    let mut state = seed;
    let hubs: Vec<Vec<f32>> = (0..centers).map(|_| random_vec(&mut state, dim)).collect();
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                random_vec(&mut state, dim)
            } else {
                let c = &hubs[(splitmix64(&mut state) as usize) % hubs.len()];
                c.iter().map(|&x| x + 0.15 * unit(&mut state)).collect()
            }
        })
        .collect()
}

fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let t0 = Instant::now();
    let quick = lite_bench::quick_mode();
    let report = Report::new("rag_bench");
    report.field("quick_mode", quick);

    // ---- Part 1: synthetic ANN index at scale ---------------------------
    let n: usize = if quick { 20_000 } else { 120_000 };
    let dim: usize = 32;
    let k: usize = 10;
    report.field("index_points", n);
    report.field("index_dim", dim);

    let points = corpus(0x11f3_5eed, n, dim, 64);
    // Wider beams than the serving default: at 32 dims and 10^5 points the
    // recall gate needs ef ~2 orders below n, and the latency budget has
    // room for it (p99 stays far under the 1 ms gate).
    let cfg = HnswConfig { ef_construction: 200, ef_search: 160, ..HnswConfig::default() };
    report.field("ef_construction", cfg.ef_construction);
    report.field("ef_search", cfg.ef_search);
    let index = report.phase("build", || {
        let mut h = Hnsw::new(dim, cfg);
        for p in &points {
            h.insert(p);
        }
        h
    });
    let build_s = t0.elapsed().as_secs_f64();
    report.field("build_s", build_s);
    eprintln!("[rag] index built: {n} points in {build_s:.1}s");

    // recall@10 against the brute-force oracle.
    let recall_queries = if quick { 40 } else { 200 };
    let recall = report.phase("recall", || {
        let mut state = 0xbeef_u64;
        let mut hit = 0usize;
        for _ in 0..recall_queries {
            let q = random_vec(&mut state, dim);
            let approx = index.search(&q, k);
            let exact = exact_knn(index.vectors(), &q, k);
            hit += approx.iter().filter(|a| exact.iter().any(|e| e.id == a.id)).count();
        }
        hit as f64 / (recall_queries * k) as f64
    });
    report.field("recall_at_10", recall);
    report.field("recall_queries", recall_queries);

    // Single-query latency, one query at a time on one thread.
    let lat_queries = if quick { 500 } else { 2_000 };
    let mut lat_us: Vec<f64> = report.phase("latency", || {
        let mut state = 0xface_u64;
        (0..lat_queries)
            .map(|_| {
                let q = random_vec(&mut state, dim);
                let t = Instant::now();
                std::hint::black_box(index.search(&q, k));
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect()
    });
    lat_us.sort_by(f64::total_cmp);
    let (p50_us, p99_us) = (pct(&lat_us, 0.50), pct(&lat_us, 0.99));
    report.field("query_p50_us", p50_us);
    report.field("query_p99_us", p99_us);
    eprintln!("[rag] recall@{k} = {recall:.3}, query p50 {p50_us:.0}us p99 {p99_us:.0}us");

    // Serde roundtrip on the large index: byte-identical re-encode and
    // identical search results.
    let roundtrip_bytes = report.phase("serde", || {
        let bytes = index.to_bytes();
        let back = Hnsw::from_bytes(&bytes).expect("own bytes decode");
        assert_eq!(bytes, back.to_bytes(), "re-encode must reproduce the byte stream");
        let mut state = 0x5e5e_u64;
        for _ in 0..16 {
            let q = random_vec(&mut state, dim);
            assert_eq!(index.search(&q, k), back.search(&q, k), "roundtrip must not move results");
        }
        bytes.len()
    });
    report.field("index_bytes", roundtrip_bytes);

    assert!(recall >= 0.95, "recall@{k} = {recall:.3} misses the 0.95 gate (n={n}, dim={dim})");
    assert!(p99_us < 1_000.0, "single-query p99 = {p99_us:.0}us breaches the 1ms gate");

    // ---- Part 2: leave-one-app-out cold start ---------------------------
    // Full mode holds out six apps spanning all three workload categories;
    // the other nine are skipped to bound runtime (logged, not silent).
    let held_out: Vec<AppId> = if quick {
        vec![AppId::Terasort, AppId::KMeans]
    } else {
        vec![
            AppId::KMeans,
            AppId::Svm,
            AppId::PageRank,
            AppId::ShortestPaths,
            AppId::Terasort,
            AppId::Sort,
        ]
    };
    report.field("held_out_apps", held_out.len());
    eprintln!(
        "[rag] cold-start head-to-head over {}/{} apps (subset bounds runtime)",
        held_out.len(),
        AppId::all().len()
    );

    let cluster = ClusterSpec::cluster_c();
    let widths = [6usize, 11, 11, 11, 8, 8, 8];
    let mut table = report.table(
        "cold start on never-seen apps (large data, cluster C; RAG executes the target zero times)",
        &["app", "default t(s)", "rag t(s)", "seeded t(s)", "rag ETR", "full ETR", "seed ETR"],
        &widths,
    );

    let mut rag_etrs = Vec::new();
    let mut full_etrs = Vec::new();
    let mut seeded_etrs = Vec::new();
    let mut rag_wins = 0usize;
    let mut full_budget_total = 0usize;
    let mut seeded_budget_total = 0usize;
    for (ai, &held) in held_out.iter().enumerate() {
        let train_apps: Vec<AppId> = AppId::all().iter().copied().filter(|a| *a != held).collect();
        let ds = DatasetBuilder {
            apps: train_apps,
            clusters: ClusterSpec::all_evaluation_clusters(),
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell: train_confs_per_cell(),
            seed: 47,
        }
        .build();
        let rag = RagTuner::from_dataset(&ds, RagConfig::default());
        let data = held.dataset(SizeTier::Test);
        let seed = 9300 + ai as u64;

        // Zero-execution arm: retrieve + scale-adapt + estimate-rank. The
        // held-out app is never simulated before the final comparison run.
        let retrieved = rag.retrieve(held, &data, &cluster, 8).expect("non-empty store");
        let ranked = rag.rank(None, &data, &cluster, &retrieved, 3);
        let t_rag = execute(&cluster, held, &data, &ranked[0].conf, seed ^ 0x3);
        let t_default = execute(&cluster, held, &data, &ds.space.default_conf(), seed ^ 0x4);

        // Full-budget ACG cold start (the incumbent: 30 scored candidates).
        let mut lite = LiteTuner::from_dataset(
            &ds,
            NecsConfig { epochs: necs_epochs(), ..Default::default() },
            47,
        );
        let full_budget = lite.num_candidates;
        let ranked_full = lite.recommend_cold(held, &data, &cluster, seed);
        let t_full = execute(&cluster, held, &data, &ranked_full[0].conf, seed ^ 0x3);

        // Budget-cut arm: the NECS scoring budget cut to a third. The
        // reduced ACG pool is sampled with the SAME seed as the full arm
        // (so it is a strict prefix — the comparison isolates what the
        // seeds buy, not sampling luck), topped up with RAG's
        // estimate-ranked warm-start seeds, and the whole union is scored
        // by NECS alone: one estimator, no cross-estimator optimism bias.
        let reduced = (full_budget / 3).max(2);
        let mut confs = {
            let ctx = PredictionContext::cold(&mut lite.registry, held, &data, &cluster);
            lite.acg.candidates_seeded(held, &data, &ctx.env, reduced, seed)
        };
        confs.extend(ranked.iter().map(|r| r.conf.clone()));
        let seeded_budget = confs.len();
        let ctx = PredictionContext::cold(&mut lite.registry, held, &data, &cluster);
        let scores = score_candidates(
            &lite.model,
            &lite.registry,
            &ctx,
            &cluster,
            &confs,
            &Tracer::disabled(),
        );
        let best =
            scores.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map_or(0, |(i, _)| i);
        let t_seeded = execute(&cluster, held, &data, &confs[best], seed ^ 0x3);

        let (e_rag, e_full, e_seeded) =
            (etr(t_default, t_rag), etr(t_default, t_full), etr(t_default, t_seeded));
        rag_etrs.push(e_rag);
        full_etrs.push(e_full);
        seeded_etrs.push(e_seeded);
        rag_wins += usize::from(t_rag < t_default);
        full_budget_total += full_budget;
        seeded_budget_total += seeded_budget;
        table.row(&[
            held.abbrev().to_string(),
            format!("{t_default:.0}"),
            format!("{t_rag:.0}"),
            format!("{t_seeded:.0}"),
            format!("{e_rag:.2}"),
            format!("{e_full:.2}"),
            format!("{e_seeded:.2}"),
        ]);
        eprintln!("[rag] {} done ({:.0}s)", held.abbrev(), t0.elapsed().as_secs_f64());
    }
    drop(table);

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (avg_rag, avg_full, avg_seeded) = (avg(&rag_etrs), avg(&full_etrs), avg(&seeded_etrs));
    report.field("avg_rag_etr", avg_rag);
    report.field("avg_full_budget_etr", avg_full);
    report.field("avg_seeded_etr", avg_seeded);
    report.field("rag_beats_default", rag_wins);
    report.field("full_budget_candidates", full_budget_total);
    report.field("seeded_budget_candidates", seeded_budget_total);
    report.note(&format!(
        "\nzero-execution RAG: avg ETR {avg_rag:.2} vs default ({rag_wins}/{} apps faster); \
         RAG-seeded cold start reaches avg ETR {avg_seeded:.2} on {seeded_budget_total} scored \
         candidates vs {avg_full:.2} on {full_budget_total} for full-budget ACG.",
        rag_etrs.len()
    ));

    // The ETR gates need the full-fidelity NECS model (30 epochs, 6 confs
    // per cell); the quick smoke trains a 4-epoch model whose rankings are
    // close to a lottery, so quick mode only exercises the code paths.
    if quick {
        eprintln!("[rag] quick mode: cold-start ETR gates skipped (low-fidelity model)");
    } else {
        assert!(
            avg_rag > 0.0,
            "zero-execution retrieval must beat the default conf on average ETR, got {avg_rag:.3}"
        );
        assert!(
            rag_wins * 2 >= rag_etrs.len(),
            "retrieval must beat the default conf on at least half the held-out apps, \
             got {rag_wins}/{}",
            rag_etrs.len()
        );
        assert!(
            avg_seeded + 0.05 >= avg_full,
            "RAG-seeded cold start ({avg_seeded:.3}) must match full-budget ACG ({avg_full:.3}) \
             within 5 ETR points on {seeded_budget_total} vs {full_budget_total} candidates"
        );
    }

    finish_report(&report);
    eprintln!("[rag] total {:.0}s", t0.elapsed().as_secs_f64());
}

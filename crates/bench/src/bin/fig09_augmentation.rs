//! Figure 9: effect of Stage-based Code Organization on training-set size
//! and code density.
//!
//! For each application: the number of stage-level instances one
//! application run yields (the augmentation factor), and the token counts
//! of the main body vs the average stage-level code after instrumentation.
//! Paper shape: augmentation ranges from 4× (Terasort) to hundreds×
//! (SCC); stage-level token counts are a multiple of the main body's.

use lite_bench::finish_report;
use lite_obs::Report;
use lite_workloads::apps::AppId;
use lite_workloads::instrument::{augmentation_factor, instrument_app};
use lite_workloads::tokenize::tokenize;

fn main() {
    let report = Report::new("fig09_augmentation");
    let widths = [6, 11, 11, 13, 13];
    let mut table = report.table(
        "Figure 9: Stage-based Code Organization augmentation",
        &["app", "#templates", "#instances", "main tokens", "stage tokens"],
        &widths,
    );
    let mut min_aug = (AppId::Terasort, usize::MAX);
    let mut max_aug = (AppId::Terasort, 0usize);
    let mut token_ratios = Vec::new();
    for app in AppId::all() {
        let templates = instrument_app(app);
        let aug = augmentation_factor(&templates);
        let main_tokens = tokenize(app.main_source()).len();
        let stage_tokens: usize =
            templates.iter().map(|t| tokenize(&t.source).len()).sum::<usize>() / templates.len();
        token_ratios.push(stage_tokens as f64 / main_tokens as f64);
        if aug < min_aug.1 {
            min_aug = (app, aug);
        }
        if aug > max_aug.1 {
            max_aug = (app, aug);
        }
        table.row(&[
            app.abbrev().to_string(),
            templates.len().to_string(),
            aug.to_string(),
            main_tokens.to_string(),
            stage_tokens.to_string(),
        ]);
    }
    let avg_ratio = token_ratios.iter().sum::<f64>() / token_ratios.len() as f64;
    report.field("min_augmentation", min_aug.1 as u64);
    report.field("max_augmentation", max_aug.1 as u64);
    report.field("avg_token_ratio", avg_ratio);
    report.note(&format!(
        "\nAugmentation range: {}x ({}) to {}x ({}); paper reports 4x (TS) to 427x (SCC).",
        min_aug.1,
        min_aug.0.abbrev(),
        max_aug.1,
        max_aug.0.abbrev()
    ));
    report.note(&format!(
        "Average stage-code/main-code token ratio: {avg_ratio:.1}x (paper: length of codes per instance roughly tripled)."
    ));
    finish_report(&report);
}

//! Table XII: generalization across computing environments.
//!
//! NECS trained on different cluster subsets — A+B only, C only, or all
//! three — and evaluated on cluster C validation applications.
//! Paper shape: NECS_C beats NECS_AB (domain match matters), and training
//! on all clusters gives the best NDCG (environment variety transfers).

use lite_bench::{
    f4, finish_report, gold_set, necs_epochs, num_candidates, ranking_scores, train_confs_per_cell,
    EvalSetting,
};
use lite_core::baselines::AnyModel;
use lite_core::experiment::DatasetBuilder;
use lite_core::features::StageInstance;
use lite_core::necs::{Necs, NecsConfig};
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let variants: [(&str, Vec<ClusterSpec>); 3] = [
        ("NECS_AB", vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_b()]),
        ("NECS_C", vec![ClusterSpec::cluster_c()]),
        ("NECS_all", ClusterSpec::all_evaluation_clusters()),
    ];

    let report = Report::new("table12_cross_env");
    report.field("quick_mode", lite_bench::quick_mode());
    let widths = [10usize, 9, 9];
    let mut table = report.table(
        "Table XII: NECS trained on different clusters, evaluated on cluster C validation",
        &["model", "HR@5", "NDCG@5"],
        &widths,
    );

    // Shared gold sets on cluster C validation.
    let eval_cluster = ClusterSpec::cluster_c();
    let settings: Vec<EvalSetting> = AppId::all()
        .into_iter()
        .map(|app| EvalSetting {
            group: "C-valid",
            app,
            cluster: eval_cluster.clone(),
            data: app.dataset(SizeTier::Valid),
        })
        .collect();

    for (name, clusters) in variants {
        let ds = DatasetBuilder {
            apps: AppId::all().to_vec(),
            clusters,
            tiers: SizeTier::train_tiers().to_vec(),
            confs_per_cell: train_confs_per_cell(),
            seed: 71,
        }
        .build();
        let refs: Vec<&StageInstance> = ds.instances.iter().collect();
        let model = AnyModel::Necs(Necs::train(
            &ds.registry,
            &ds.space,
            &refs,
            NecsConfig { epochs: necs_epochs(), ..Default::default() },
        ));
        let golds: Vec<_> = settings
            .iter()
            .enumerate()
            .map(|(i, s)| gold_set(&ds.space, s, num_candidates(), 3100 + i as u64))
            .collect();
        let mut hr = 0.0;
        let mut ndcg = 0.0;
        let mut counted = 0.0;
        for (setting, gold) in settings.iter().zip(golds.iter()) {
            if let Some((h, n)) = ranking_scores(&model, &ds, setting, gold) {
                hr += h;
                ndcg += n;
                counted += 1.0;
            }
        }
        table.row(&[name.to_string(), f4(hr / counted), f4(ndcg / counted)]);
        eprintln!("[table12] {name} done ({:.0}s)", t0.elapsed().as_secs_f64());
    }
    report.note(
        "\nPaper shape: NECS_C > NECS_AB (environment mismatch hurts); NECS_all achieves the best NDCG.",
    );
    finish_report(&report);
    eprintln!("[table12] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! Table VI + Figure 7: end-to-end tuning performance on large test data
//! (cluster C) for Default / Manual / MLP / BO(2h) / DDPG(2h) /
//! DDPG-C(2h) / LITE.
//!
//! Paper shape to reproduce: LITE attains the least (or near-least)
//! execution time on almost every application with a decision latency of
//! seconds, while the 2-hour trial-based tuners spend orders of magnitude
//! more tuning overhead and still lose on several applications.

use lite_bench::tuning::{
    app_code_features, tune_bo, tune_by_model_ranking, tune_ddpg, tune_fixed, tune_lite,
    TuneOutcome,
};
use lite_bench::{finish_report, manual_conf, necs_epochs, num_candidates, secs, training_dataset};
use lite_core::baselines::{EstimatorKind, FeatureSet, TabularModel};
use lite_core::experiment::PredictionContext;
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_metrics::ranking::etr;
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("table06_tuning");
    report.field("quick_mode", lite_bench::quick_mode());
    report.field("budget_s", lite_bench::tuning::TUNING_BUDGET_S);

    let ds = report.phase("dataset", || training_dataset(1));
    eprintln!("[table06] dataset built ({:.0}s)", t0.elapsed().as_secs_f64());

    let lite = report.phase("train_lite", || {
        LiteTuner::from_dataset(&ds, NecsConfig { epochs: necs_epochs(), ..Default::default() }, 1)
    });
    eprintln!("[table06] LITE trained ({:.0}s)", t0.elapsed().as_secs_f64());
    let mlp_model =
        report.phase("train_mlp", || TabularModel::fit(&ds, EstimatorKind::Mlp, FeatureSet::S, 3));
    eprintln!("[table06] MLP baseline trained ({:.0}s)", t0.elapsed().as_secs_f64());

    let cluster = ClusterSpec::cluster_c();
    let methods = ["Default", "Manual", "MLP", "BO(2h)", "DDPG(2h)", "DDPG-C(2h)", "LITE"];
    let mut times: Vec<Vec<f64>> = Vec::new(); // [app][method]
    let mut lite_latency = Vec::new();

    let apps = AppId::all();
    report.phase("tune", || {
        for (ai, &app) in apps.iter().enumerate() {
            let data = app.dataset(SizeTier::Test);
            let seed = 1000 + ai as u64;
            let ctx = PredictionContext::warm(&ds.registry, app, &data, &cluster)
                .expect("all apps are warm in Table VI");

            let default = tune_fixed(&cluster, app, &data, &ds.space.default_conf(), seed);
            let manual = tune_fixed(&cluster, app, &data, &manual_conf(&ds.space, &cluster), seed);
            let mlp = tune_by_model_ranking(
                |c| mlp_model.predict_app(&ds.registry, &ctx, c),
                &ds.space,
                &cluster,
                app,
                &data,
                num_candidates(),
                seed,
            );
            let bo = tune_bo(&ds, &cluster, app, &data, seed);
            let ddpg = tune_ddpg(&ds.space, &cluster, app, &data, &[], seed);
            let code = app_code_features(&ds, app, &data);
            let ddpg_c = tune_ddpg(&ds.space, &cluster, app, &data, &code, seed);
            let lite_out: TuneOutcome = tune_lite(&lite, &cluster, app, &data, seed);
            lite_latency.push(lite_out.decide_wall_s);

            times.push(vec![
                default.time_s,
                manual.time_s,
                mlp.time_s,
                bo.time_s,
                ddpg.time_s,
                ddpg_c.time_s,
                lite_out.time_s,
            ]);
            eprintln!(
                "[table06] {} done ({:.0}s elapsed)",
                app.abbrev(),
                t0.elapsed().as_secs_f64()
            );
        }
    });

    // ---- Table VI: execution times ----
    let widths = [6usize, 9, 9, 9, 9, 9, 11, 9];
    let mut header = vec!["app"];
    header.extend(methods);
    let mut t6 = report.table(
        "Table VI: execution time t (s) of the tuned configuration, large jobs on cluster C",
        &header,
        &widths,
    );
    for (ai, app) in apps.iter().enumerate() {
        let mut row = vec![app.abbrev().to_string()];
        row.extend(times[ai].iter().map(|t| secs(*t)));
        t6.row(&row);
    }
    // Averages + ETR (Eq. 9 vs default).
    let mut avg_row = vec!["avg".to_string()];
    let mut etr_row = vec!["ETR".to_string()];
    for m in 0..methods.len() {
        let avg: f64 = times.iter().map(|r| r[m]).sum::<f64>() / apps.len() as f64;
        avg_row.push(secs(avg));
        let mean_etr: f64 = times.iter().map(|r| etr(r[0], r[m])).sum::<f64>() / apps.len() as f64;
        etr_row.push(format!("{mean_etr:.2}"));
    }
    t6.row(&avg_row);
    t6.row(&etr_row);

    // ---- Figure 7: per-app normalized ETR ----
    // Figure 7 normalizes so the per-app best method scores 1:
    // ETR' = (t_default - t) / (t_default - t_min).
    let widths7 = [6usize, 8, 8, 8, 8, 8, 10, 8];
    let mut t7 = report.table(
        "Figure 7: per-application ETR (1.0 = least execution time among all methods)",
        &header,
        &widths7,
    );
    let mut lite_wins = 0;
    let mut lite_top2 = 0;
    for (ai, app) in apps.iter().enumerate() {
        let t_def = times[ai][0];
        let t_min = times[ai].iter().cloned().fold(f64::INFINITY, f64::min);
        let denom = (t_def - t_min).max(1e-9);
        let mut row = vec![app.abbrev().to_string()];
        for &t in &times[ai] {
            row.push(format!("{:.2}", ((t_def - t) / denom).max(-9.99)));
        }
        let lite_t = times[ai][6];
        if (lite_t - t_min).abs() < 1e-9 {
            lite_wins += 1;
            lite_top2 += 1;
        } else {
            let better = times[ai][..6].iter().filter(|&&t| t < lite_t).count();
            if better <= 1 {
                lite_top2 += 1;
            }
        }
        t7.row(&row);
    }
    let max_latency = lite_latency.iter().cloned().fold(0.0, f64::max);
    report.field("lite_wins", lite_wins as u64);
    report.field("lite_top2", lite_top2 as u64);
    report.field("lite_max_latency_s", max_latency);
    report.note(&format!(
        "\nLITE achieved the least execution time on {lite_wins}/15 applications and was in the top two on {lite_top2}/15 (paper: 13/15 and 15/15)."
    ));
    report.note(&format!(
        "LITE decision latency: max {max_latency:.2}s (paper: < 2 s); trial-based tuners consumed the full {}s budget.",
        lite_bench::tuning::TUNING_BUDGET_S
    ));
    finish_report(&report);
    eprintln!("[table06] total {:.0}s", t0.elapsed().as_secs_f64());
}

//! Table VIII: evaluating Adaptive Candidate Generation.
//!
//! (a) ACG vs the plain RFR point prediction: average execution time and
//!     ETR of the executed recommendation on large test jobs, cluster C
//!     (the regime where a single risky point hurts most).
//!     Paper shape: the σ-box + estimator ranking beats the RFR point.
//! (b) ACG vs random / Latin-hypercube / grid sampling of the same
//!     candidate count, ranked by the same NECS model: HR@5 / NDCG@5
//!     against the per-setting gold list. Paper shape: ACG's region makes
//!     good candidates likelier.

use lite_bench::tuning::execute;
use lite_bench::{f4, finish_report, necs_epochs, num_candidates, secs, training_dataset};
use lite_core::experiment::{gold_times, PredictionContext};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_metrics::ranking::{etr, hr_at_k, ndcg_at_k};
use lite_obs::Report;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::SparkConf;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let report = Report::new("table08_acg");
    report.field("quick_mode", lite_bench::quick_mode());
    let ds = report.phase("dataset", || training_dataset(1));
    let lite = report.phase("train_lite", || {
        LiteTuner::from_dataset(&ds, NecsConfig { epochs: necs_epochs(), ..Default::default() }, 1)
    });
    eprintln!("[table08] LITE ready ({:.0}s)", t0.elapsed().as_secs_f64());
    let cluster = ClusterSpec::cluster_c();
    let env = cluster.env_features();

    // ---- (a) ACG vs plain RFR ----
    let widths = [6usize, 10, 10, 9, 9];
    let mut ta = report.table(
        "Table VIII(a): RFR point prediction vs LITE (ACG + NECS), large test jobs on cluster C",
        &["app", "RFR t(s)", "LITE t(s)", "RFR ETR", "LITE ETR"],
        &widths,
    );
    let mut sums = [0.0f64; 4];
    for (ai, app) in AppId::all().into_iter().enumerate() {
        let data = app.dataset(SizeTier::Test);
        let seed = 4200 + ai as u64;
        let t_default = execute(&cluster, app, &data, &ds.space.default_conf(), seed);
        let rfr_conf = lite.acg.point_prediction(app, &data, &env);
        let t_rfr = execute(&cluster, app, &data, &rfr_conf, seed ^ 0x1);
        let rec = lite.recommend(app, &data, &cluster, seed).expect("warm")[0].conf.clone();
        let t_lite = execute(&cluster, app, &data, &rec, seed ^ 0x2);
        let (e_rfr, e_lite) = (etr(t_default, t_rfr), etr(t_default, t_lite));
        sums[0] += t_rfr;
        sums[1] += t_lite;
        sums[2] += e_rfr;
        sums[3] += e_lite;
        ta.row(&[
            app.abbrev().to_string(),
            secs(t_rfr),
            secs(t_lite),
            format!("{e_rfr:.2}"),
            format!("{e_lite:.2}"),
        ]);
    }
    let n = AppId::all().len() as f64;
    ta.row(&[
        "avg".to_string(),
        secs(sums[0] / n),
        secs(sums[1] / n),
        format!("{:.2}", sums[2] / n),
        format!("{:.2}", sums[3] / n),
    ]);
    report.field("rfr_avg_etr", sums[2] / n);
    report.field("lite_avg_etr", sums[3] / n);

    // ---- (b) ACG vs other sampling strategies ----
    // For each validation app on cluster C: sample candidates four ways,
    // rank them with NECS, and score HR/NDCG against the simulated gold
    // list *of those candidates*.
    let widths_b = [10usize, 9, 9, 11];
    let mut tb = report.table(
        "Table VIII(b): candidate-sampling strategies under the same NECS ranking (cluster C validation)",
        &["sampling", "HR@5", "NDCG@5", "top-1 t(s)"],
        &widths_b,
    );
    let strategies = ["random", "lhs", "grid", "ACG"];
    let n_cand = num_candidates();
    let mut results: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); strategies.len()];
    let mut counted = 0.0;
    for (ai, app) in AppId::all().into_iter().enumerate() {
        let data = app.dataset(SizeTier::Valid);
        let ctx = PredictionContext::warm(&lite.registry, app, &data, &cluster).expect("warm");
        for (si, strat) in strategies.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(6000 + 31 * ai as u64 + si as u64);
            let confs: Vec<SparkConf> = match *strat {
                "random" => (0..n_cand).map(|_| ds.space.sample(&mut rng)).collect(),
                "lhs" => ds.space.latin_hypercube(n_cand, &mut rng),
                "grid" => ds.space.grid_sample(4, n_cand, &mut rng),
                _ => lite.acg.candidates(app, &data, &env, n_cand, &mut rng),
            };
            let gold = gold_times(&cluster, app, &data, &confs, 7100 + ai as u64);
            let preds: Vec<f64> =
                confs.iter().map(|c| lite.model.predict_app(&lite.registry, &ctx, c)).collect();
            results[si].0 += hr_at_k(&preds, &gold, 5);
            results[si].1 += ndcg_at_k(&preds, &gold, 5);
            // Executed time of the strategy's NECS-chosen top candidate.
            let top = lite_metrics::ranking::rank_by(&preds)[0];
            results[si].2 += gold[top];
        }
        counted += 1.0;
    }
    let mut acg_time_quality = 0.0;
    for (si, strat) in strategies.iter().enumerate() {
        let hr = results[si].0 / counted;
        let ndcg = results[si].1 / counted;
        let top1 = results[si].2 / counted;
        if *strat == "ACG" {
            acg_time_quality = ndcg;
        }
        tb.row(&[strat.to_string(), f4(hr), f4(ndcg), secs(top1)]);
    }
    report.field("acg_ndcg5", acg_time_quality);
    report.note(&format!(
        "\nNote: HR/NDCG here score ranking quality *within* each strategy's own candidate set; \
         panel (a) shows ACG's candidates are also absolutely better (lower executed time). ACG NDCG@5 = {}.",
        f4(acg_time_quality)
    ));
    finish_report(&report);
    eprintln!("[table08] total {:.0}s", t0.elapsed().as_secs_f64());
}

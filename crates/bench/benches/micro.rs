//! Criterion micro-benchmarks.
//!
//! The headline number is `lite/recommend`: the paper claims LITE makes
//! recommendations in under two seconds; this bench measures the full
//! Step 1–3 path (ACG sampling + NECS ranking of 30 candidates).

use criterion::{criterion_group, criterion_main, Criterion};
use lite_core::experiment::{DatasetBuilder, PredictionContext};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::ConfSpace;
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let cluster = ClusterSpec::cluster_c();
    let space = ConfSpace::table_iv();
    let conf = space.default_conf();
    let plan = build_job(AppId::KMeans, &AppId::KMeans.dataset(SizeTier::Valid));
    c.bench_function("sparksim/kmeans_valid_run", |b| {
        b.iter(|| black_box(simulate(&cluster, &conf, &plan, 1)))
    });
}

fn bench_conf_space(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let space = ConfSpace::table_iv();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("conf/sample_encode_decode", |b| {
        b.iter(|| {
            let conf = space.sample(&mut rng);
            let u = conf.normalized(&space);
            black_box(space.decode(&u))
        })
    });
}

fn bench_lite(c: &mut Criterion) {
    // Small but real LITE system (reduced epochs: we measure inference,
    // not training quality).
    let ds = DatasetBuilder {
        apps: vec![AppId::KMeans, AppId::PageRank, AppId::Sort],
        clusters: vec![ClusterSpec::cluster_c()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 5,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 4, batch_size: 512, ..Default::default() },
        5,
    );
    let cluster = ClusterSpec::cluster_c();
    let data = AppId::KMeans.dataset(SizeTier::Test);

    // The paper's "< 2 s" claim: full recommendation (ACG + 30-candidate
    // NECS ranking).
    c.bench_function("lite/recommend", |b| {
        b.iter(|| black_box(tuner.recommend(AppId::KMeans, &data, &cluster, 7).unwrap()))
    });

    // NECS single-app prediction.
    let ctx = PredictionContext::warm(&tuner.registry, AppId::KMeans, &data, &cluster).unwrap();
    let conf = ds.space.default_conf();
    c.bench_function("necs/predict_app", |b| {
        b.iter(|| black_box(tuner.model.predict_app(&tuner.registry, &ctx, &conf)))
    });
}

fn bench_forest(c: &mut Criterion) {
    use lite_forest::gbdt::{GbdtConfig, GbdtRegressor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    let x: Vec<Vec<f64>> = (0..500).map(|_| (0..20).map(|_| rng.gen::<f64>()).collect()).collect();
    let y: Vec<f64> = x.iter().map(|r| r.iter().sum::<f64>()).collect();
    let cfg = GbdtConfig { num_rounds: 40, ..Default::default() };
    c.bench_function("forest/gbdt_fit_500x20", |b| {
        b.iter(|| black_box(GbdtRegressor::fit(&x, &y, &cfg)))
    });
    let model = GbdtRegressor::fit(&x, &y, &cfg);
    c.bench_function("forest/gbdt_predict", |b| b.iter(|| black_box(model.predict(&x[0]))));
}

fn bench_gp(c: &mut Criterion) {
    use lite_bayesopt::gp::{GaussianProcess, GpConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let x: Vec<Vec<f64>> = (0..60).map(|_| (0..16).map(|_| rng.gen::<f64>()).collect()).collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 - r[1]).collect();
    c.bench_function("gp/fit_60x16", |b| {
        b.iter(|| black_box(GaussianProcess::fit(x.clone(), &y, GpConfig::default())))
    });
    let gp = GaussianProcess::fit(x.clone(), &y, GpConfig::default());
    c.bench_function("gp/ei", |b| b.iter(|| black_box(gp.expected_improvement(&x[0], 0.0, 0.01))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator, bench_conf_space, bench_lite, bench_forest, bench_gp
}
criterion_main!(benches);

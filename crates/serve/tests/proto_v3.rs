//! Protocol v3 wire contract (PR 9 tentpole):
//!
//! - property tests that the zero-copy binary codec round-trips every op
//!   bit-identically (encode → decode → re-encode is the same byte string),
//! - truncated / oversized / torn frames surface as clean `bad_request`
//!   errors (in-process and over live TCP, with the connection surviving),
//! - wire pins: the typed [`Request::to_json`] renderings for protocol v1
//!   and v2 are frozen as string literals for every op, so the binary
//!   redesign provably left the legacy JSON planes byte-identical,
//! - one server concurrently speaking v1, v2, and pipelined v3.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Registry, Tracer};
use lite_serve::proto::{
    decode_request, decode_response, encode_request, parse_header, AnalyzeTarget, ClusterRef,
    Request, Response, RetrieveTarget, FLAG_TRACED, PROTOCOL_V3, V3_MAGIC,
};
use lite_serve::{
    ClientBuilder, ErrorCode, ModelSnapshot, OpCode, ProtocolConfig, ServeConfig, Service,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf, NUM_KNOBS};
use lite_sparksim::fault::mix64;
use lite_sparksim::result::{FailureReason, RunResult, StageStats};
use lite_workloads::apps::AppId;
use lite_workloads::data::{DataSpec, SizeTier};

use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Deterministic request generator: one arbitrary-but-valid request per
// (seed, op) pair, derived from a mix64 stream so proptest shrinking works
// on plain integers.

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = mix64(self.0.wrapping_add(0x9E37_79B9_7F4A_7C15));
        self.0
    }

    fn f64(&mut self, scale: f64) -> f64 {
        (self.next() % 10_000) as f64 / 100.0 * scale
    }

    fn app(&mut self) -> AppId {
        let all = AppId::all();
        all[(self.next() as usize) % all.len()]
    }

    fn data(&mut self) -> DataSpec {
        DataSpec {
            rows: self.next() % 1_000_000,
            cols: (self.next() % 512) as u32,
            iterations: (self.next() % 64) as u32,
            partitions: (self.next() % 4096) as u32,
            bytes: self.next() % (1 << 40),
        }
    }

    fn cluster(&mut self) -> ClusterRef {
        if self.next().is_multiple_of(2) {
            let name = if self.next().is_multiple_of(2) { "cluster-a" } else { "cluster-c" };
            ClusterRef::Preset(name.to_string())
        } else {
            ClusterRef::Spec(ClusterSpec {
                name: format!("custom-{}", self.next() % 100),
                nodes: 1 + (self.next() % 64) as u32,
                cores_per_node: 1 + (self.next() % 128) as u32,
                cpu_ghz: self.f64(0.05),
                mem_gb_per_node: self.f64(10.0),
                mem_mts: self.f64(100.0),
                net_gbps: self.f64(1.0),
            })
        }
    }

    fn conf(&mut self, space: &ConfSpace) -> SparkConf {
        // Clamp through the space once: the codec ships raw f64 bits, and
        // `from_values` is idempotent, so the snapped conf round-trips
        // bit-identically.
        let mut values = [0.0f64; NUM_KNOBS];
        for v in values.iter_mut() {
            *v = self.f64(20.0);
        }
        SparkConf::from_values(space, values)
    }

    fn result(&mut self) -> RunResult {
        let stages = (self.next() % 5) as usize;
        RunResult {
            total_time_s: self.f64(10.0),
            stages: (0..stages)
                .map(|i| StageStats {
                    stage_id: i,
                    name: format!("stage-{}", self.next() % 1000),
                    duration_s: self.f64(5.0),
                    num_tasks: (self.next() % 2048) as u32,
                    input_bytes: self.next() % (1 << 36),
                    shuffle_read_bytes: self.next() % (1 << 34),
                    shuffle_write_bytes: self.next() % (1 << 34),
                    spill_bytes: self.next() % (1 << 30),
                    gc_time_s: self.f64(0.5),
                    peak_task_memory: self.next() % (1 << 32),
                    cached_fraction: (self.next() % 101) as f64 / 100.0,
                    // The wire does not carry task-level stats.
                    tasks: Vec::new(),
                })
                .collect(),
            // The wire carries a single failed flag that decodes to
            // ExecutorOom, so only these two values round-trip.
            failure: (self.next().is_multiple_of(2)).then_some(FailureReason::ExecutorOom),
            executors: (self.next() % 256) as u32,
            slots: (self.next() % 4096) as u32,
        }
    }

    fn trace(&mut self) -> Option<u64> {
        (self.next().is_multiple_of(2)).then(|| 1 + self.next() % u64::MAX)
    }
}

fn arb_request(seed: u64, op: OpCode, space: &ConfSpace) -> Request {
    let mut g = Gen(seed);
    match op {
        OpCode::Ping => Request::Ping,
        OpCode::Stats => Request::Stats,
        OpCode::Metrics => Request::Metrics,
        OpCode::Trace => Request::Trace,
        OpCode::Health => Request::Health,
        OpCode::Tailtrace => Request::Tailtrace,
        OpCode::Slo => Request::Slo,
        OpCode::Hello => Request::Hello { max: g.next() },
        OpCode::Recommend => Request::Recommend {
            app: g.app(),
            data: g.data(),
            cluster: g.cluster(),
            k: (g.next() % 64) as usize,
            seed: g.next(),
            trace: g.trace(),
        },
        OpCode::Observe => Request::Observe {
            app: g.app(),
            data: g.data(),
            cluster: g.cluster(),
            conf: g.conf(space),
            result: Box::new(g.result()),
        },
        OpCode::Retrieve => Request::Retrieve {
            target: if g.next().is_multiple_of(2) {
                RetrieveTarget::App(g.app())
            } else {
                RetrieveTarget::Source(format!("val n = {}", g.next() % 1000))
            },
            data: g.data(),
            cluster: g.cluster(),
            k: (g.next() % 32) as usize,
            trace: g.trace(),
        },
        OpCode::Analyze => Request::Analyze {
            target: if g.next().is_multiple_of(2) {
                AnalyzeTarget::App(g.app())
            } else {
                AnalyzeTarget::Source {
                    source: format!("val n = {}", g.next() % 1000),
                    iterations: 1 + (g.next() % 8) as u32,
                }
            },
        },
        OpCode::Profile => Request::Profile { k: (g.next() % 64) as usize },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Encode → decode → re-encode is bit-identical for every op, and the
    // header carries the op, req_id, and trace flags faithfully.
    #[test]
    fn v3_roundtrip_bit_identical_every_op(seed in 0u64..1_000_000, which in 0usize..13) {
        let space = ConfSpace::table_iv();
        let op = OpCode::ALL[which];
        let req = arb_request(seed, op, &space);
        let req_id = (seed as u32).wrapping_mul(0x9E37);
        let frame = encode_request(&req, req_id);

        let header = parse_header(&frame).expect("header");
        prop_assert_eq!(header.op, op);
        prop_assert_eq!(header.req_id, req_id);
        prop_assert_eq!(header.flags & FLAG_TRACED != 0, req.trace_id().is_some());
        prop_assert_eq!(header.trace_id, req.trace_id().unwrap_or(0));

        let (_, decoded) = decode_request(&frame, &space).expect("decode");
        prop_assert_eq!(&decoded, &req, "decoded request differs");
        prop_assert_eq!(encode_request(&decoded, req_id), frame, "re-encode not bit-identical");
    }

    // Every truncation of every op's frame is a clean decode error — no
    // panic, no partial value — and trailing garbage is refused.
    #[test]
    fn v3_truncation_fails_cleanly_every_op(seed in 0u64..1_000_000, which in 0usize..13) {
        let space = ConfSpace::table_iv();
        let op = OpCode::ALL[which];
        let req = arb_request(seed, op, &space);
        let frame = encode_request(&req, 1);
        for cut in 0..frame.len() {
            prop_assert!(
                decode_request(&frame[..cut], &space).is_err(),
                "cut at {} of {} must fail", cut, frame.len()
            );
        }
        let mut padded = frame;
        padded.push((seed % 256) as u8);
        prop_assert!(decode_request(&padded, &space).is_err(), "trailing byte must be refused");
    }

    // Corrupting any single header byte never panics, and corrupting the
    // envelope bytes (magic / version / op) is always rejected.
    #[test]
    fn v3_header_corruption_never_panics(seed in 0u64..1_000_000, byte in 0usize..16, flip in 1u8..=255) {
        let space = ConfSpace::table_iv();
        let req = arb_request(seed, OpCode::Recommend, &space);
        let mut frame = encode_request(&req, 7);
        frame[byte] ^= flip;
        let result = decode_request(&frame, &space);
        match byte {
            0 => prop_assert_eq!(result.unwrap_err(), "bad v3 magic"),
            1 => prop_assert_eq!(result.unwrap_err(), "unsupported binary protocol version"),
            2 => prop_assert!(
                result.is_err(),
                "a flipped op byte decodes a different body layout; it must be rejected"
            ),
            _ => { let _ = result; } // req_id/flags/trace bytes: any outcome but a panic.
        }
    }
}

// ---------------------------------------------------------------------------
// Wire pins: v1 and v2 JSON documents for every op, frozen as literals.

/// One canonical request per op with fixed field values, so the rendered
/// JSON is stable enough to pin.
fn pinned_requests(space: &ConfSpace) -> Vec<(OpCode, Request)> {
    let data = DataSpec { rows: 1000, cols: 8, iterations: 2, partitions: 4, bytes: 72000 };
    let cluster = ClusterRef::Preset("cluster-a".to_string());
    let result = RunResult {
        total_time_s: 12.5,
        stages: vec![StageStats {
            stage_id: 0,
            name: "map".to_string(),
            duration_s: 4.25,
            num_tasks: 8,
            input_bytes: 1024,
            shuffle_read_bytes: 0,
            shuffle_write_bytes: 512,
            spill_bytes: 0,
            gc_time_s: 0.5,
            peak_task_memory: 4096,
            cached_fraction: 1.0,
            tasks: Vec::new(),
        }],
        failure: None,
        executors: 2,
        slots: 8,
    };
    vec![
        (OpCode::Ping, Request::Ping),
        (
            OpCode::Recommend,
            Request::Recommend {
                app: AppId::Sort,
                data,
                cluster: cluster.clone(),
                k: 3,
                seed: 7,
                trace: Some(42),
            },
        ),
        (
            OpCode::Observe,
            Request::Observe {
                app: AppId::Sort,
                data,
                cluster: cluster.clone(),
                conf: space.default_conf(),
                result: Box::new(result),
            },
        ),
        (OpCode::Stats, Request::Stats),
        (OpCode::Metrics, Request::Metrics),
        (OpCode::Trace, Request::Trace),
        (OpCode::Health, Request::Health),
        (OpCode::Hello, Request::Hello { max: 3 }),
        (
            OpCode::Analyze,
            Request::Analyze {
                target: AnalyzeTarget::Source { source: "val x = 1".to_string(), iterations: 2 },
            },
        ),
        (OpCode::Tailtrace, Request::Tailtrace),
        (
            OpCode::Retrieve,
            Request::Retrieve {
                target: RetrieveTarget::App(AppId::KMeans),
                data,
                cluster,
                k: 2,
                trace: None,
            },
        ),
        (OpCode::Profile, Request::Profile { k: 5 }),
        (OpCode::Slo, Request::Slo),
    ]
}

/// The frozen v1 and v2 documents, one `(op, v1, v2)` triple per op.
/// These literals ARE the compatibility contract: if this test fails, the
/// change broke deployed JSON clients — fix the code, not the pin.
const WIRE_PINS: [(u8, &str, &str); 13] = [
    (0, r#"{"op":"ping"}"#, r#"{"v":2,"o":0}"#),
    (
        1,
        r#"{"op":"recommend","app":"Sort","data":{"rows":1000,"cols":8,"iterations":2,"partitions":4,"bytes":72000},"cluster":"cluster-a","k":3,"seed":7}"#,
        r#"{"v":2,"o":1,"t":42,"app":"Sort","data":{"rows":1000,"cols":8,"iterations":2,"partitions":4,"bytes":72000},"cluster":"cluster-a","k":3,"seed":7}"#,
    ),
    (
        2,
        r#"{"op":"observe","app":"Sort","data":{"rows":1000,"cols":8,"iterations":2,"partitions":4,"bytes":72000},"cluster":"cluster-a","conf":[64,1,1024,1,512,4,2,512,2,128,0.6,0.5,48,1,32,1],"result":{"total_time_s":12.5,"failed":false,"executors":2,"slots":8,"stages":[{"stage_id":0,"name":"map","duration_s":4.25,"num_tasks":8,"input_bytes":1024,"shuffle_read_bytes":0,"shuffle_write_bytes":512,"spill_bytes":0,"gc_time_s":0.5,"peak_task_memory":4096,"cached_fraction":1}]}}"#,
        r#"{"v":2,"o":2,"app":"Sort","data":{"rows":1000,"cols":8,"iterations":2,"partitions":4,"bytes":72000},"cluster":"cluster-a","conf":[64,1,1024,1,512,4,2,512,2,128,0.6,0.5,48,1,32,1],"result":{"total_time_s":12.5,"failed":false,"executors":2,"slots":8,"stages":[{"stage_id":0,"name":"map","duration_s":4.25,"num_tasks":8,"input_bytes":1024,"shuffle_read_bytes":0,"shuffle_write_bytes":512,"spill_bytes":0,"gc_time_s":0.5,"peak_task_memory":4096,"cached_fraction":1}]}}"#,
    ),
    (3, r#"{"op":"stats"}"#, r#"{"v":2,"o":3}"#),
    (4, r#"{"op":"metrics"}"#, r#"{"v":2,"o":4}"#),
    (5, r#"{"op":"trace"}"#, r#"{"v":2,"o":5}"#),
    (6, r#"{"op":"health"}"#, r#"{"v":2,"o":6}"#),
    (7, r#"{"op":"hello","max":3}"#, r#"{"v":2,"o":7,"max":3}"#),
    (
        8,
        r#"{"op":"analyze","source":"val x = 1","iterations":2}"#,
        r#"{"v":2,"o":8,"source":"val x = 1","iterations":2}"#,
    ),
    (9, r#"{"op":"tailtrace"}"#, r#"{"v":2,"o":9}"#),
    (
        10,
        r#"{"op":"retrieve","app":"KMeans","data":{"rows":1000,"cols":8,"iterations":2,"partitions":4,"bytes":72000},"cluster":"cluster-a","k":2}"#,
        r#"{"v":2,"o":10,"app":"KMeans","data":{"rows":1000,"cols":8,"iterations":2,"partitions":4,"bytes":72000},"cluster":"cluster-a","k":2}"#,
    ),
    (11, r#"{"op":"profile","k":5}"#, r#"{"v":2,"o":11,"k":5}"#),
    (12, r#"{"op":"slo"}"#, r#"{"v":2,"o":12}"#),
];

#[test]
fn wire_pins_v1_v2_unchanged_for_every_op() {
    let space = ConfSpace::table_iv();
    let requests = pinned_requests(&space);
    assert_eq!(requests.len(), OpCode::ALL.len(), "every op needs a pinned request");
    for (op, req) in requests {
        let (code, v1, v2) = WIRE_PINS[op.code() as usize];
        assert_eq!(code, op.code(), "pin table out of order at {op:?}");
        assert_eq!(req.to_json(1).render(), v1, "v1 wire document changed for {op:?}");
        assert_eq!(req.to_json(2).render(), v2, "v2 wire document changed for {op:?}");
        // The v1 plane never learned trace ids: "t" must not leak in.
        assert!(!req.to_json(1).render().contains("\"t\":"), "v1 must not carry trace ids");
    }
}

// ---------------------------------------------------------------------------
// Live TCP: malformed binary frames, and all three protocols on one server.

fn trained() -> (Arc<Dataset>, ModelSnapshot) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 41,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        41,
    );
    let snapshot = ModelSnapshot::from_tuner(&tuner);
    (Arc::new(ds), snapshot)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        update_batch: 1_000_000,
        amu: AmuConfig { epochs: 1, half_batch: 32, ..Default::default() },
        ..Default::default()
    }
}

/// Read one raw frame and decode it as a v3 response.
fn read_response(stream: &mut TcpStream, space: &ConfSpace) -> (u32, Response) {
    let payload = lite_serve::net::read_frame(stream).expect("read").expect("not EOF");
    decode_response(&payload, space).expect("decode response")
}

#[test]
fn malformed_binary_frames_get_clean_errors_and_the_connection_survives() {
    let (ds, snapshot) = trained();
    let registry = Registry::new();
    let config = ServeConfig {
        // A deliberately tiny binary-frame cap so an ordinary analyze
        // request is "oversized" without shipping megabytes.
        protocol: ProtocolConfig { max_frame: 256, ..Default::default() },
        ..quick_config()
    };
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    let space = ConfSpace::table_iv();

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // 1. A truncated v3 header (magic present, body missing) is a clean
    //    bad_request error frame, not a dropped connection.
    let torn = [V3_MAGIC, PROTOCOL_V3 as u8, 0, 0, 9, 0, 0];
    lite_serve::net::write_frame(&mut stream, &torn).expect("write torn header");
    let (_, resp) = read_response(&mut stream, &space);
    assert!(
        matches!(&resp, Response::Error { code: ErrorCode::BadRequest, message }
            if message.contains("truncated")),
        "torn header must be a bad_request: {resp:?}"
    );

    // 2. A structurally valid frame with trailing garbage is refused.
    let mut padded = encode_request(&Request::Ping, 5);
    padded.extend_from_slice(&[0xAA, 0xBB]);
    lite_serve::net::write_frame(&mut stream, &padded).expect("write padded");
    let (req_id, resp) = read_response(&mut stream, &space);
    assert_eq!(req_id, 5, "error frame must echo the request id");
    assert!(
        matches!(&resp, Response::Error { code: ErrorCode::BadRequest, message }
            if message.contains("trailing")),
        "trailing bytes must be refused: {resp:?}"
    );

    // 3. A frame over `protocol.max_frame` is rejected by the cap, with
    //    the op and req_id still echoed from the header.
    let big = Request::Analyze {
        target: AnalyzeTarget::Source { source: "x".repeat(4096), iterations: 1 },
    };
    lite_serve::net::write_frame(&mut stream, &encode_request(&big, 77)).expect("write oversized");
    let (req_id, resp) = read_response(&mut stream, &space);
    assert_eq!(req_id, 77);
    assert!(
        matches!(&resp, Response::Error { code: ErrorCode::BadRequest, message }
            if message.contains("max_frame")),
        "oversized frame must name the cap: {resp:?}"
    );

    // 4. After all three malformed frames, the same connection still
    //    serves a well-formed request.
    lite_serve::net::write_frame(&mut stream, &encode_request(&Request::Ping, 99)).expect("ping");
    let (req_id, resp) = read_response(&mut stream, &space);
    assert_eq!(req_id, 99);
    assert!(matches!(resp, Response::Pong { .. }), "connection must survive: {resp:?}");

    // 5. A torn LENGTH-PREFIXED frame (prefix promises more bytes than
    //    ever arrive) ends that connection quietly — and the server keeps
    //    accepting new ones.
    let mut torn_conn = TcpStream::connect(server.local_addr()).expect("connect");
    torn_conn.write_all(&100u32.to_be_bytes()).expect("prefix");
    torn_conn.write_all(&[V3_MAGIC; 10]).expect("partial body");
    drop(torn_conn);
    let mut fresh = TcpStream::connect(server.local_addr()).expect("reconnect");
    lite_serve::net::write_frame(&mut fresh, &encode_request(&Request::Ping, 1)).expect("ping");
    let (_, resp) = read_response(&mut fresh, &space);
    assert!(matches!(resp, Response::Pong { .. }), "server must survive a torn frame");

    drop(stream);
    drop(fresh);
    server.shutdown();
    service.shutdown();
}

#[test]
fn one_server_speaks_v1_v2_and_pipelined_v3_concurrently() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].name.clone();
    let registry = Registry::new();
    let config = ServeConfig {
        protocol: ProtocolConfig { max_pipeline: 64, ..Default::default() },
        ..quick_config()
    };
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Three clients, one per protocol generation, all live at once.
    let mut v1 = ClientBuilder::new().protocol(1).connect(addr).expect("v1 connect");
    let mut v2 = ClientBuilder::new().protocol(2).connect(addr).expect("v2 connect");
    let mut v3 = ClientBuilder::new().pipeline_depth(16).connect(addr).expect("v3 connect");
    assert_eq!(v1.protocol_version(), 1);
    assert_eq!(v2.protocol_version(), 2);
    assert_eq!(v3.protocol_version(), PROTOCOL_V3);

    let data = AppId::Sort.dataset(SizeTier::Valid);
    let recommend = |seed: u64| Request::Recommend {
        app: AppId::Sort,
        data,
        cluster: ClusterRef::Preset(cluster.clone()),
        k: 2,
        seed,
        trace: None,
    };

    // Interleave: the typed API serves identical answers on every plane.
    for round in 0..4u64 {
        for client in [&mut v1, &mut v2, &mut v3] {
            let resp = client.call(&recommend(round)).expect("recommend");
            let Response::Recommend { ranked, .. } = resp else {
                panic!("wrong variant: {resp:?}")
            };
            assert_eq!(ranked.len(), 2);
        }
    }

    // Pipelining: a batch with distinct seeds comes back in request order
    // (responses are re-matched to requests by req_id under the hood).
    let batch: Vec<Request> = (0..32u64).map(recommend).collect();
    let responses = v3.pipeline(&batch).expect("pipeline");
    assert_eq!(responses.len(), batch.len());
    for (i, resp) in responses.iter().enumerate() {
        assert!(
            matches!(resp, Response::Recommend { ranked, .. } if ranked.len() == 2),
            "pipelined response {i} wrong: {resp:?}"
        );
    }

    // The JSON planes still answer after the binary burst.
    assert!(v1.call(&Request::Ping).expect("v1 ping").is_ok());
    assert!(v2.call(&Request::Stats).expect("v2 stats").is_ok());

    drop((v1, v2, v3));
    server.shutdown();
    service.shutdown();
}

//! Admin-plane tests: the `stats`/`metrics`/`trace`/`health` TCP ops
//! against a live server, and the drift monitor triggering a model swap
//! before the fixed feedback batch would have.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Json, Registry, Tracer};
use lite_serve::{
    AnalyzeTarget, ClientBuilder, ClusterRef, DriftConfig, ErrorCode, ModelSnapshot, Request,
    Response, ServeConfig, Service,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;

fn trained() -> (Arc<Dataset>, ModelSnapshot) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 41,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        41,
    );
    let snapshot = ModelSnapshot::from_tuner(&tuner);
    (Arc::new(ds), snapshot)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        update_batch: 12,
        amu: AmuConfig { epochs: 1, half_batch: 32, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn admin_ops_answer_over_tcp() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let registry = Registry::new();
    // Enabled tracer so `trace` has spans to export.
    let service = Service::start(snapshot, ds.clone(), quick_config(), &registry, Tracer::new());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    let mut client = ClientBuilder::new().connect(server.local_addr()).expect("connect");

    // health: liveness plus the serving version.
    let health = client.call(&Request::Health).expect("health").into_admin().expect("health doc");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("version").and_then(Json::as_u64), Some(0));

    // Generate some traffic so stats/metrics/trace have content.
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let rec = client
        .call(&Request::Recommend {
            app: AppId::KMeans,
            data,
            cluster: ClusterRef::Preset(cluster.name.clone()),
            k: 2,
            seed: 3,
            trace: None,
        })
        .expect("recommend");
    assert!(matches!(rec, Response::Recommend { .. }), "{rec:?}");

    // stats: the operational summary with every advertised field.
    let stats = client.call(&Request::Stats).expect("stats").into_admin().expect("stats doc");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get("version").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("swaps").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("workers").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("queue_capacity").and_then(Json::as_u64), Some(32));
    assert_eq!(stats.get("update_batch").and_then(Json::as_u64), Some(12));
    assert!(stats.get("uptime_s").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
    assert!(stats.get("requests").and_then(Json::as_u64).unwrap_or(0) >= 1);
    let cache = stats.get("cache").expect("cache object");
    assert!(cache.get("hit_rate").and_then(Json::as_f64).is_some());
    let drift = stats.get("drift").expect("drift object");
    assert_eq!(drift.get("drifted").and_then(Json::as_bool), Some(false));
    assert!(drift.get("mape").and_then(Json::as_f64).is_some());
    assert!(drift.get("inversion_rate").and_then(Json::as_f64).is_some());

    // metrics: Prometheus text exposition of the service registry.
    let metrics =
        client.call(&Request::Metrics).expect("metrics").into_admin().expect("metrics doc");
    let text = metrics.get("body").and_then(Json::as_str).expect("metrics body");
    assert!(text.contains("# TYPE serve_requests counter"), "{text}");
    assert!(text.contains("# TYPE serve_latency_ns histogram"), "{text}");
    assert!(text.contains("serve_latency_ns_bucket{le=\"+Inf\"}"), "{text}");
    assert!(text.contains("serve_latency_ns_count"), "{text}");
    assert!(text.contains("# TYPE serve_drift_alerts counter"), "{text}");

    // trace: Chrome trace events from the enabled tracer, B/E balanced.
    let trace = client.call(&Request::Trace).expect("trace").into_admin().expect("trace doc");
    let events = trace
        .get("trace")
        .and_then(|t| t.get("traceEvents"))
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert!(!events.is_empty(), "recommend should have produced spans");
    assert_eq!(events.len() % 2, 0, "every B has an E");
    assert!(events.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("serve.request")));

    drop(client);
    server.shutdown();
    service.shutdown();
}

#[test]
fn analyze_op_extracts_stages_and_lints_over_tcp() {
    let (ds, snapshot) = trained();
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, quick_config(), &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    let mut client = ClientBuilder::new().connect(server.local_addr()).expect("connect");

    // Named workload: static extraction matches the instrumented run's
    // template set without the server executing anything.
    let resp = client
        .call(&Request::Analyze { target: AnalyzeTarget::App(AppId::KMeans) })
        .expect("analyze")
        .into_admin()
        .expect("analyze doc");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let stages = resp.get("stages").and_then(Json::as_arr).expect("stages");
    let templates: Vec<&str> =
        stages.iter().filter_map(|s| s.get("template").and_then(Json::as_str)).collect();
    assert_eq!(templates, ["parse-cache", "km-assign", "compute-cost"]);
    let assign = &stages[1];
    assert_eq!(assign.get("instances_per_run").and_then(Json::as_u64), Some(8));
    let ops = assign.get("ops").and_then(Json::as_arr).expect("ops");
    assert!(ops.iter().any(|o| o.as_str() == Some("treeAggregate")), "{ops:?}");
    let diags = resp.get("diagnostics").and_then(Json::as_arr).expect("diagnostics");
    assert!(diags.is_empty(), "clean corpus source must lint clean: {diags:?}");

    // Submitted source with a seeded defect: the lint travels the wire
    // with its span.
    let defective = r#"
        val conf = new SparkConf().setAppName("WordCount")
        val sc = new SparkContext(conf)
        val lines = sc.textFile("in.txt")
        val pairs = lines.map(l => (l, 1))
        val a = pairs.reduceByKey(_ + _).count()
        val b = pairs.reduceByKey(_ + _).count()
    "#;
    let resp = client
        .call(&Request::Analyze {
            target: AnalyzeTarget::Source { source: defective.to_string(), iterations: 1 },
        })
        .expect("analyze_source")
        .into_admin()
        .expect("analyze doc");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let diags = resp.get("diagnostics").and_then(Json::as_arr).expect("diagnostics");
    assert!(
        diags.iter().any(|d| d.get("rule").and_then(Json::as_str) == Some("uncached-reuse")),
        "{diags:?}"
    );
    assert!(diags.iter().all(|d| d.get("line").and_then(Json::as_u64).unwrap_or(0) >= 1));

    // Unparseable source is a bad request, not a hang or a panic.
    let resp = client
        .call(&Request::Analyze {
            target: AnalyzeTarget::Source { source: "val = = =".to_string(), iterations: 1 },
        })
        .expect("request survives");
    assert!(
        matches!(resp, Response::Error { code: ErrorCode::BadRequest, .. }),
        "unparseable source must be a bad request: {resp:?}"
    );

    drop(client);
    server.shutdown();
    service.shutdown();
}

#[test]
fn induced_drift_triggers_swap_before_batch_count() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let registry = Registry::new();
    // The batch trigger is set far out of reach, so only the drift path
    // can cause a swap.
    let config = ServeConfig {
        update_batch: 100_000,
        drift: DriftConfig {
            window: 64,
            min_samples: 8,
            mape_threshold: 0.3,
            inversion_threshold: 0.45,
        },
        ..quick_config()
    };
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::disabled());
    let handle = service.handle();

    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seed = 4100u64;
    let mut observes = 0u64;
    while handle.swap_count() == 0 {
        assert!(Instant::now() < deadline, "drift never triggered a swap");
        let rec = handle.recommend(AppId::KMeans, &data, &cluster, 1, seed).expect("recommend");
        let mut result = simulate(&cluster, &rec.ranked[0].conf, &plan, seed);
        // Skew the response surface: the "cluster" now runs 4x slower than
        // anything the model was trained on, so MAPE blows past 0.3.
        result.total_time_s *= 4.0;
        for stage in &mut result.stages {
            stage.duration_s *= 4.0;
        }
        handle
            .observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result)
            .expect("observe");
        observes += 1;
        seed += 1;
    }

    assert!((handle.feedback_len() as u64) < 100_000, "drift must fire before the batch count");
    assert!(observes < 1_000, "drift should trigger within a few windows, took {observes}");
    assert!(handle.version() >= 1, "swap publishes a new version");
    let snap = registry.snapshot();
    assert!(
        snap.counter("serve.drift.alerts").unwrap_or(0) >= 1,
        "drift alert counter must fire: {:?}",
        snap.counters
    );
    // Post-swap the monitor starts a fresh window for the new model.
    assert!(handle.drift().samples < 64, "monitor reset after swap");
    service.shutdown();
}

//! Wire-compatibility tests for the optional trace header: a v2
//! `recommend` frame round-trips byte-compatibly with and without the
//! `"t"` field, a tracing-disabled server answers traced and untraced
//! requests identically, and v1 peers are served unchanged by a traced
//! server — while a traced v2 peer gets its id echoed and can pull the
//! captured exemplars back over the `tailtrace` op.

use std::sync::Arc;
use std::time::Duration;

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Json, Registry, Tracer};
use lite_serve::net::{data_to_json, read_frame, write_frame};
use lite_serve::{Client, ModelSnapshot, OpCode, ServeConfig, Service, TraceConfig};
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::{DataSpec, SizeTier};

/// Raw v1/v2 `recommend` wire document, optionally trace-tagged: these
/// tests pin exact response bytes, so they bypass the typed client API.
fn recommend_doc(
    client: &mut Client,
    app: AppId,
    data: &DataSpec,
    cluster: &str,
    k: u64,
    seed: u64,
    trace: Option<u64>,
) -> Json {
    let mut fields = Vec::new();
    if let Some(t) = trace {
        fields.push(("t", Json::from(t)));
    }
    fields.extend([
        ("app", Json::from(app.name())),
        ("data", data_to_json(data)),
        ("cluster", Json::from(cluster)),
        ("k", Json::from(k)),
        ("seed", Json::from(seed)),
    ]);
    client.request_op(OpCode::Recommend, fields).expect("recommend")
}
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Frame-level byte compatibility

/// A v2 `recommend` request document exactly as [`lite_serve::Client`]
/// encodes it, with the trace header optionally present.
fn v2_recommend_doc(trace: Option<u64>, k: u64, seed: u64) -> Json {
    let mut pairs =
        vec![("v", Json::from(2u64)), ("o", Json::from(u64::from(OpCode::Recommend.code())))];
    if let Some(t) = trace {
        pairs.push(("t", Json::from(t)));
    }
    pairs.push(("app", Json::from("kmeans")));
    pairs.push(("k", Json::from(k)));
    pairs.push(("seed", Json::from(seed)));
    Json::obj(pairs)
}

proptest! {
    #[test]
    fn v2_frames_roundtrip_byte_compatibly_with_and_without_trace_header(
        trace in prop::option::of(any::<u64>()),
        k in 1u64..8,
        seed in any::<u64>(),
    ) {
        let doc = v2_recommend_doc(trace, k, seed);
        let bytes = doc.render().into_bytes();
        // Length-prefixed framing is transparent.
        let mut wire = Vec::new();
        write_frame(&mut wire, &bytes).expect("write");
        let back = read_frame(&mut wire.as_slice()).expect("read").expect("frame");
        prop_assert_eq!(&back, &bytes);
        // Parse → render is the identity on the wire bytes, so the header
        // survives any reframing hop unchanged.
        let parsed = Json::parse(std::str::from_utf8(&back).unwrap()).expect("parse");
        prop_assert_eq!(parsed.render().into_bytes(), bytes);
        // The header is purely additive: stripping `"t"` yields exactly
        // the untraced encoding.
        let stripped = match &parsed {
            Json::Obj(pairs) => {
                Json::Obj(pairs.iter().filter(|(key, _)| key != "t").cloned().collect())
            }
            other => other.clone(),
        };
        prop_assert_eq!(stripped.render(), v2_recommend_doc(None, k, seed).render());
    }
}

// ---------------------------------------------------------------------------
// Live-server compatibility

fn trained() -> (Arc<Dataset>, LiteTuner) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 41,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        41,
    );
    (Arc::new(ds), tuner)
}

fn quick_config(trace: Option<TraceConfig>) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        update_batch: 1_000_000,
        amu: AmuConfig { epochs: 1, half_batch: 32, ..Default::default() },
        trace,
        ..Default::default()
    }
}

#[test]
fn trace_header_and_traced_servers_leave_untraced_peers_byte_identical() {
    let (ds, tuner) = trained();
    let cluster_name = ds.clusters[0].name.clone();
    let start = |trace: Option<TraceConfig>| {
        let registry = Registry::new();
        let service = Service::start(
            ModelSnapshot::from_tuner(&tuner),
            ds.clone(),
            quick_config(trace),
            &registry,
            Tracer::disabled(),
        );
        let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
        (service, server)
    };
    let (svc_plain_a, srv_plain_a) = start(None);
    let (svc_plain_b, srv_plain_b) = start(None);
    let traced_cfg = TraceConfig { capture_threshold: Duration::ZERO, exemplar_top_k: 8 };
    let (svc_traced, srv_traced) = start(Some(traced_cfg));

    let data = AppId::KMeans.dataset(SizeTier::Valid);

    // A tracing-disabled server answers a traced and an untraced v2
    // request byte-identically: the header changes nothing.
    let mut a = lite_serve::Client::connect(srv_plain_a.local_addr()).expect("connect");
    let mut b = lite_serve::Client::connect(srv_plain_b.local_addr()).expect("connect");
    assert_eq!(a.negotiate().expect("hello"), 2);
    assert_eq!(b.negotiate().expect("hello"), 2);
    let plain = recommend_doc(&mut a, AppId::KMeans, &data, &cluster_name, 2, 7, None);
    let traced =
        recommend_doc(&mut b, AppId::KMeans, &data, &cluster_name, 2, 7, Some(0xDEAD_BEEF));
    assert_eq!(plain.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(plain.render(), traced.render(), "trace header must be inert when tracing is off");
    assert!(traced.get("t").is_none(), "disabled server must not echo a trace id");

    // A v1 peer (no negotiation) is served by a traced server exactly as
    // by a plain one — same bytes, no version or trace fields smuggled in.
    let mut v1_plain = lite_serve::Client::connect(srv_plain_a.local_addr()).expect("connect");
    let mut v1_traced = lite_serve::Client::connect(srv_traced.local_addr()).expect("connect");
    let data_v1 = AppId::Sort.dataset(SizeTier::Valid);
    let from_plain = recommend_doc(&mut v1_plain, AppId::Sort, &data_v1, &cluster_name, 1, 9, None);
    let from_traced =
        recommend_doc(&mut v1_traced, AppId::Sort, &data_v1, &cluster_name, 1, 9, None);
    assert_eq!(from_plain.render(), from_traced.render(), "v1 peer must be served unchanged");
    assert!(from_traced.get("t").is_none());
    assert!(from_traced.get("v").is_none());

    // A traced v2 peer gets its id echoed and its request captured.
    let mut v2 = lite_serve::Client::connect(srv_traced.local_addr()).expect("connect");
    assert_eq!(v2.negotiate().expect("hello"), 2);
    let resp = recommend_doc(&mut v2, AppId::KMeans, &data, &cluster_name, 2, 11, Some(42));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("t").and_then(Json::as_u64), Some(42));
    let tail = v2.request_op(OpCode::Tailtrace, Vec::new()).expect("tailtrace");
    assert_eq!(tail.get("ok").and_then(Json::as_bool), Some(true));
    assert!(tail.get("completed").and_then(Json::as_u64).unwrap_or(0) >= 1);
    let exemplars = tail.get("exemplars").and_then(Json::as_arr).expect("exemplars");
    assert!(
        exemplars.iter().any(|e| e.get("trace_id").and_then(Json::as_u64) == Some(42)),
        "the traced request must be retrievable by its id: {tail:?}"
    );

    drop((a, b, v1_plain, v1_traced, v2));
    srv_plain_a.shutdown();
    srv_plain_b.shutdown();
    srv_traced.shutdown();
    svc_plain_a.shutdown();
    svc_plain_b.shutdown();
    svc_traced.shutdown();
}

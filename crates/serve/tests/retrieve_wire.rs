//! Wire-compatibility tests for the v2-only `retrieve` op (opcode 10):
//! the opcode table gains exactly one entry, v1 peers asking for
//! `"op":"retrieve"` are refused with the existing `bad_request` code
//! (no new v1 success shape), servers without a retrieval store refuse
//! v2 peers the same way, and a retrieval-enabled server answers the
//! pre-existing v1 ops byte-identically to a plain one.

use std::sync::Arc;

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Json, Registry, Tracer};
use lite_rag::{RagConfig, RagTuner};
use lite_serve::net::data_to_json;
use lite_serve::{ErrorCode, ModelSnapshot, OpCode, ServeConfig, Service, TcpServer};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::NUM_KNOBS;
use lite_workloads::apps::AppId;
use lite_workloads::data::SizeTier;

// ---------------------------------------------------------------------------
// Opcode-table pinning

/// The opcode table is append-only: adding `retrieve` must not renumber
/// or rename any existing op. These constants are the wire contract.
#[test]
fn opcode_table_is_append_only() {
    let expected: [(u8, &str); 13] = [
        (0, "ping"),
        (1, "recommend"),
        (2, "observe"),
        (3, "stats"),
        (4, "metrics"),
        (5, "trace"),
        (6, "health"),
        (7, "hello"),
        (8, "analyze"),
        (9, "tailtrace"),
        (10, "retrieve"),
        (11, "profile"),
        (12, "slo"),
    ];
    // Order-insensitive: every (code, name) pair must be present exactly once.
    assert_eq!(OpCode::ALL.len(), expected.len());
    for (code, name) in expected {
        let op =
            OpCode::from_code(u64::from(code)).unwrap_or_else(|| panic!("opcode {code} missing"));
        assert_eq!(op.name(), name, "opcode {code}");
        assert_eq!(OpCode::from_name(name), Some(op));
    }
    assert_eq!(OpCode::Retrieve.code(), 10);
    assert_eq!(OpCode::Profile.code(), 11);
    assert_eq!(OpCode::Slo.code(), 12);
}

// ---------------------------------------------------------------------------
// Live-server compatibility

fn trained() -> (Arc<Dataset>, LiteTuner) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 43,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        43,
    );
    (Arc::new(ds), tuner)
}

fn quick_config(retrieval: Option<Arc<RagTuner>>) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        update_batch: 1_000_000,
        amu: AmuConfig { epochs: 1, half_batch: 32, ..Default::default() },
        retrieval,
        ..Default::default()
    }
}

fn start(
    ds: &Arc<Dataset>,
    tuner: &LiteTuner,
    retrieval: Option<Arc<RagTuner>>,
) -> (Service, TcpServer) {
    let registry = Registry::new();
    let service = Service::start(
        ModelSnapshot::from_tuner(tuner),
        ds.clone(),
        quick_config(retrieval),
        &registry,
        Tracer::disabled(),
    );
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    (service, server)
}

#[test]
fn retrieve_is_v2_only_and_leaves_v1_ops_byte_identical() {
    let (ds, tuner) = trained();
    let cluster_name = ds.clusters[0].name.clone();
    let rag = Arc::new(RagTuner::from_dataset(&ds, RagConfig::default()));
    assert!(!rag.is_empty(), "training dataset must seed the run store");

    let (svc_plain, srv_plain) = start(&ds, &tuner, None);
    let (svc_rag, srv_rag) = start(&ds, &tuner, Some(rag));

    let data = AppId::KMeans.dataset(SizeTier::Valid);

    // A v1 peer asking for retrieve by name is refused with the existing
    // bad_request code — same bytes from a retrieval-enabled server as
    // from a plain one, and never a v1 success shape.
    let v1_doc = Json::obj(vec![
        ("op", Json::from("retrieve")),
        ("app", Json::from("kmeans")),
        ("data", lite_serve::net::data_to_json(&data)),
        ("cluster", Json::from(cluster_name.as_str())),
        ("k", Json::from(3u64)),
    ]);
    let mut v1_a = lite_serve::Client::connect(srv_plain.local_addr()).expect("connect");
    let mut v1_b = lite_serve::Client::connect(srv_rag.local_addr()).expect("connect");
    let resp_a = v1_a.request(&v1_doc).expect("v1 retrieve");
    let resp_b = v1_b.request(&v1_doc).expect("v1 retrieve");
    assert_eq!(resp_a.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(ErrorCode::from_response(&resp_a), Some(ErrorCode::BadRequest));
    assert_eq!(resp_a.render(), resp_b.render(), "v1 refusal must not depend on server config");
    assert!(resp_a.get("v").is_none(), "v1 errors must not carry a version stamp");

    // Pre-existing v1 ops are served byte-identically by both servers:
    // wiring in retrieval must not perturb ops 1–9.
    let recommend_fields = || {
        vec![
            ("app", Json::from(AppId::KMeans.name())),
            ("data", data_to_json(&data)),
            ("cluster", Json::from(cluster_name.as_str())),
            ("k", Json::from(2u64)),
            ("seed", Json::from(7u64)),
        ]
    };
    let from_plain = v1_a.request_op(OpCode::Recommend, recommend_fields()).expect("v1 recommend");
    let from_rag = v1_b.request_op(OpCode::Recommend, recommend_fields()).expect("v1 recommend");
    assert_eq!(from_plain.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(from_plain.render(), from_rag.render(), "v1 recommend must be unchanged");
    let ping_a = v1_a.request_op(OpCode::Ping, Vec::new()).expect("ping");
    let ping_b = v1_b.request_op(OpCode::Ping, Vec::new()).expect("ping");
    assert_eq!(ping_a.render(), ping_b.render(), "v1 ping must be unchanged");
    let analyze_fields = || vec![("app", Json::from(AppId::Sort.name()))];
    let analyze_plain = v1_a.request_op(OpCode::Analyze, analyze_fields()).expect("analyze");
    let analyze_rag = v1_b.request_op(OpCode::Analyze, analyze_fields()).expect("analyze");
    assert_eq!(analyze_plain.render(), analyze_rag.render(), "v1 analyze must be unchanged");

    // A v2 peer of a server without a retrieval store is refused with
    // bad_request — not internal, not a crash.
    let mut v2_plain = lite_serve::Client::connect(srv_plain.local_addr()).expect("connect");
    assert_eq!(v2_plain.negotiate().expect("hello"), 2);
    let retrieve_fields = |k: u64| {
        vec![
            ("app", Json::from(AppId::KMeans.name())),
            ("data", data_to_json(&data)),
            ("cluster", Json::from(cluster_name.as_str())),
            ("k", Json::from(k)),
        ]
    };
    let refused = v2_plain.request_op(OpCode::Retrieve, retrieve_fields(3)).expect("retrieve");
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(ErrorCode::from_response(&refused), Some(ErrorCode::BadRequest));

    // The v2 happy path: neighbors with full adapted confs, a non-empty
    // ranked list, and the index size echoed.
    let mut v2 = lite_serve::Client::connect(srv_rag.local_addr()).expect("connect");
    assert_eq!(v2.negotiate().expect("hello"), 2);
    let resp = v2.request_op(OpCode::Retrieve, retrieve_fields(3)).expect("retrieve");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
    assert!(resp.get("index").and_then(Json::as_u64).unwrap_or(0) > 0);
    let neighbors = resp.get("neighbors").and_then(Json::as_arr).expect("neighbors");
    assert!(!neighbors.is_empty() && neighbors.len() <= 3);
    for n in neighbors {
        let conf = n.get("conf").and_then(Json::as_arr).expect("conf");
        assert_eq!(conf.len(), NUM_KNOBS);
        assert!(n.get("distance").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
        assert!(n.get("estimate_s").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
    }
    let ranked = resp.get("ranked").and_then(Json::as_arr).expect("ranked");
    assert!(!ranked.is_empty());

    // Source-text retrieval: the zero-execution path — no AppId anywhere
    // in the request, the server embeds the submitted code statically.
    let src = resp_source();
    let by_source = v2
        .request_op(
            OpCode::Retrieve,
            vec![
                ("source", Json::from(src.as_str())),
                ("data", data_to_json(&data)),
                ("cluster", Json::from(cluster_name.as_str())),
                ("k", Json::from(2u64)),
            ],
        )
        .expect("retrieve_source");
    assert_eq!(by_source.get("ok").and_then(Json::as_bool), Some(true), "{by_source:?}");
    assert!(!by_source.get("neighbors").and_then(Json::as_arr).expect("neighbors").is_empty());

    drop((v1_a, v1_b, v2_plain, v2));
    srv_plain.shutdown();
    srv_rag.shutdown();
    svc_plain.shutdown();
    svc_rag.shutdown();
}

/// A small sort-like pipeline in the subset `lite-analyze` parses.
fn resp_source() -> String {
    AppId::Sort.main_source().to_string()
}

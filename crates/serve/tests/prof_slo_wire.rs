//! Wire and behavior tests for the profiling/SLO plane (opcodes 11–12):
//! the ops are v2-only and refused cleanly for v1 peers, servers without
//! the plane refuse v2 peers the same way, the happy paths serve a real
//! profile and SLO status, `stats` gains its phase/SLO keys additively,
//! and the burn-rate alert provably fires under injected latency.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Json, Profiler, Registry, SloConfig, Tracer};
use lite_serve::{
    Client, ConfigError, ErrorCode, ModelSnapshot, OpCode, ServeConfig, Service, TcpServer,
    TraceConfig,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::fault::{FaultInjector, FaultKind};
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;
use lite_workloads::data::SizeTier;

/// Raw v1/v2 `recommend` request: these tests pin wire documents, so they
/// go through the undeprecated raw-JSON escape hatch rather than the
/// typed client API.
fn recommend_doc(
    client: &mut Client,
    app: AppId,
    data: &DataSpec,
    cluster: &str,
    k: u64,
    seed: u64,
) -> Json {
    client
        .request_op(
            OpCode::Recommend,
            vec![
                ("app", Json::from(app.name())),
                ("data", lite_serve::net::data_to_json(data)),
                ("cluster", Json::from(cluster)),
                ("k", Json::from(k)),
                ("seed", Json::from(seed)),
            ],
        )
        .expect("recommend")
}

fn trained() -> (Arc<Dataset>, LiteTuner) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 47,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        47,
    );
    (Arc::new(ds), tuner)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        update_batch: 1_000_000,
        amu: AmuConfig { epochs: 1, half_batch: 32, ..Default::default() },
        ..Default::default()
    }
}

/// An SLO with an hour-wide bucket: the evaluator thread sleeps first, so
/// tests own every tick through [`lite_serve::ServiceHandle::slo_tick`].
fn test_slo(objective_ns: u64) -> SloConfig {
    SloConfig {
        objective_ns,
        target: 0.999,
        bucket: Duration::from_secs(3600),
        fast_buckets: 1,
        slow_buckets: 2,
        ..Default::default()
    }
}

fn start(config: ServeConfig, registry: &Registry, tracer: Tracer) -> (Service, TcpServer) {
    let (ds, tuner) = trained();
    let service = Service::start(ModelSnapshot::from_tuner(&tuner), ds, config, registry, tracer);
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    (service, server)
}

#[test]
fn profile_and_slo_are_v2_only_and_leave_v1_ops_byte_identical() {
    let registry_plain = Registry::new();
    let registry_full = Registry::new();
    let (svc_plain, srv_plain) = start(quick_config(), &registry_plain, Tracer::disabled());
    let full_config = ServeConfig {
        slo: Some(test_slo(1_000_000)),
        profiler: Some(Profiler::new(Duration::from_micros(200))),
        ..quick_config()
    };
    let (svc_full, srv_full) = start(full_config, &registry_full, Tracer::disabled());
    let cluster_name = ClusterSpec::cluster_a().name;
    let data = AppId::KMeans.dataset(SizeTier::Valid);

    // A v1 peer asking for either new op by name gets the existing
    // bad_request shape — identical bytes whether or not the server runs
    // the plane, and no version stamp.
    let mut v1_a = lite_serve::Client::connect(srv_plain.local_addr()).expect("connect");
    let mut v1_b = lite_serve::Client::connect(srv_full.local_addr()).expect("connect");
    for op in ["profile", "slo"] {
        let doc = Json::obj(vec![("op", Json::from(op))]);
        let resp_a = v1_a.request(&doc).expect("v1 request");
        let resp_b = v1_b.request(&doc).expect("v1 request");
        assert_eq!(resp_a.get("ok").and_then(Json::as_bool), Some(false), "{op}");
        assert_eq!(ErrorCode::from_response(&resp_a), Some(ErrorCode::BadRequest), "{op}");
        assert_eq!(resp_a.render(), resp_b.render(), "v1 {op} refusal must not leak config");
        assert!(resp_a.get("v").is_none(), "v1 errors must not carry a version stamp");
    }

    // Pre-existing v1 ops stay byte-identical: wiring in the plane must
    // not perturb ops 0–10.
    let rec_a = recommend_doc(&mut v1_a, AppId::KMeans, &data, &cluster_name, 2, 7);
    let rec_b = recommend_doc(&mut v1_b, AppId::KMeans, &data, &cluster_name, 2, 7);
    assert_eq!(rec_a.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(rec_a.render(), rec_b.render(), "v1 recommend must be unchanged");
    let ping_a = v1_a.request_op(OpCode::Ping, Vec::new()).expect("ping");
    let ping_b = v1_b.request_op(OpCode::Ping, Vec::new()).expect("ping");
    assert_eq!(ping_a.render(), ping_b.render(), "v1 ping must be unchanged");

    // A v2 peer of a server without the plane is refused with bad_request.
    let mut v2_plain = lite_serve::Client::connect(srv_plain.local_addr()).expect("connect");
    assert_eq!(v2_plain.negotiate().expect("hello"), 2);
    let profile =
        v2_plain.request_op(OpCode::Profile, vec![("k", Json::from(10u64))]).expect("profile");
    let slo = v2_plain.request_op(OpCode::Slo, Vec::new()).expect("slo");
    for resp in [profile, slo] {
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(ErrorCode::from_response(&resp), Some(ErrorCode::BadRequest));
    }

    // The v2 profile happy path: drive load until the sampler has caught
    // worker tag frames, then check the report shape end to end.
    let mut v2 = lite_serve::Client::connect(srv_full.local_addr()).expect("connect");
    assert_eq!(v2.negotiate().expect("hello"), 2);
    let deadline = Instant::now() + Duration::from_secs(60);
    let profile = loop {
        for seed in 0..16 {
            recommend_doc(&mut v2, AppId::KMeans, &data, &cluster_name, 30, seed);
        }
        let resp = v2.request_op(OpCode::Profile, vec![("k", Json::from(10u64))]).expect("profile");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp:?}");
        if resp.get("samples").and_then(Json::as_u64).unwrap_or(0) > 0 {
            break resp;
        }
        assert!(Instant::now() < deadline, "sampler caught no worker frames in 60 s");
    };
    assert!(profile.get("sweeps").and_then(Json::as_u64).unwrap_or(0) > 0);
    let top = profile.get("top").and_then(Json::as_arr).expect("top table");
    assert!(!top.is_empty());
    let tags: Vec<&str> = top.iter().filter_map(|t| t.get("tag").and_then(Json::as_str)).collect();
    assert!(
        tags.iter().any(|t| t.starts_with("serve.")),
        "expected a serve.* worker tag in {tags:?}"
    );
    let folded = profile.get("folded").and_then(Json::as_str).expect("folded stacks");
    assert!(folded.lines().any(|l| l.contains("serve.")), "folded output: {folded:?}");

    // The v2 slo happy path echoes the configured objective and both
    // windows; before any tick the status is the identity evaluation.
    let slo = v2.request_op(OpCode::Slo, Vec::new()).expect("slo");
    assert_eq!(slo.get("ok").and_then(Json::as_bool), Some(true), "{slo:?}");
    assert_eq!(slo.get("objective_ns").and_then(Json::as_u64), Some(1_000_000));
    assert_eq!(slo.get("alert").and_then(Json::as_bool), Some(false));
    assert!(slo.get("fast").is_some() && slo.get("slow").is_some());

    // obs.prof.* metrics flow through the shared registry.
    let snap = registry_full.snapshot();
    assert!(snap.counter("obs.prof.samples").unwrap_or(0) > 0);
    assert!(snap.gauge("obs.prof.threads").unwrap_or(0.0) > 0.0);

    drop((v1_a, v1_b, v2_plain, v2));
    srv_plain.shutdown();
    srv_full.shutdown();
    svc_plain.shutdown();
    svc_full.shutdown();
}

#[test]
fn stats_gains_phase_and_slo_planes_additively() {
    let registry_plain = Registry::new();
    let registry_full = Registry::new();
    let (svc_plain, srv_plain) = start(quick_config(), &registry_plain, Tracer::disabled());
    let full_config = ServeConfig {
        trace: Some(TraceConfig::default()),
        slo: Some(test_slo(1_000_000)),
        ..quick_config()
    };
    let (svc_full, srv_full) = start(full_config, &registry_full, Tracer::new());

    let mut plain = lite_serve::Client::connect(srv_plain.local_addr()).expect("connect");
    let stats = plain.request_op(OpCode::Stats, Vec::new()).expect("stats");
    assert!(stats.get("phases").is_none(), "plain stats must not grow keys");
    assert!(stats.get("slo").is_none(), "plain stats must not grow keys");

    let cluster_name = ClusterSpec::cluster_a().name;
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let mut full = lite_serve::Client::connect(srv_full.local_addr()).expect("connect");
    assert_eq!(full.negotiate().expect("hello"), 2);
    for seed in 0..4 {
        recommend_doc(&mut full, AppId::KMeans, &data, &cluster_name, 5, seed);
    }
    let stats = full.request_op(OpCode::Stats, Vec::new()).expect("stats");
    let phases = stats.get("phases").and_then(Json::as_arr).expect("phases plane");
    assert!(!phases.is_empty());
    for p in phases {
        assert!(p.get("phase").and_then(Json::as_str).is_some());
        assert!(p.get("p99_ns").and_then(Json::as_u64).is_some());
    }
    // Traced v2 recommends must have recorded scoring work somewhere.
    assert!(
        phases.iter().any(|p| p.get("count").and_then(Json::as_u64).unwrap_or(0) > 0),
        "{phases:?}"
    );
    let slo = stats.get("slo").expect("slo plane");
    assert_eq!(slo.get("alert").and_then(Json::as_bool), Some(false));
    assert!(slo.get("window").is_some());

    drop((plain, full));
    srv_plain.shutdown();
    srv_full.shutdown();
    svc_plain.shutdown();
    svc_full.shutdown();
}

/// The acceptance check for the SLO plane: inject per-request latency far
/// above the objective, close a bucket, and the multi-window burn-rate
/// alert must fire — visible in the status, the wire op, and the
/// `serve.slo.alert` gauge.
#[test]
fn burn_rate_alert_fires_under_injected_latency() {
    let registry = Registry::new();
    let faults = Arc::new(FaultInjector::new(7).with_delay(
        FaultKind::RequestDelay,
        1.0,
        Duration::from_millis(3),
    ));
    // Objective 1 ms, every request delayed 3 ms: 100% bad requests, so
    // burn = 1 / (1 - 0.999) = 1000 >> both default thresholds.
    let config =
        ServeConfig { faults: Some(faults), slo: Some(test_slo(1_000_000)), ..quick_config() };
    let (svc, srv) = start(config, &registry, Tracer::disabled());
    let handle = svc.handle();
    let cluster = ClusterSpec::cluster_a();
    let data = AppId::KMeans.dataset(SizeTier::Valid);

    for seed in 0..8 {
        handle.recommend(AppId::KMeans, &data, &cluster, 2, seed).expect("recommend");
    }
    // One manual tick closes a bucket holding only bad traffic, so the
    // fast (1-bucket) and slow (2-bucket) windows both see 100% misses.
    let status = handle.slo_tick().expect("slo configured");
    assert!(status.alert, "alert must fire: {status:?}");
    assert!(status.burn_fast > 100.0, "{status:?}");
    assert!(status.burn_slow > 100.0, "{status:?}");
    assert!(status.good_fraction < 0.5, "{status:?}");
    assert!(status.alert_ticks >= 1);
    assert!(status.fast.p50 >= 1_000_000, "windowed p50 must reflect the delay: {status:?}");

    let snap = registry.snapshot();
    assert_eq!(snap.gauge("serve.slo.alert"), Some(1.0));
    assert!(snap.gauge("serve.slo.burn_fast").unwrap_or(0.0) > 100.0);
    assert!(snap.counter("serve.slo.ticks").unwrap_or(0) >= 1);
    assert!(snap.gauge("serve.slo.window_p50_ns").unwrap_or(0.0) >= 1_000_000.0);

    // The wire op reports the same alert.
    let mut client = lite_serve::Client::connect(srv.local_addr()).expect("connect");
    assert_eq!(client.negotiate().expect("hello"), 2);
    let resp = client.request_op(OpCode::Slo, Vec::new()).expect("slo");
    assert_eq!(resp.get("alert").and_then(Json::as_bool), Some(true), "{resp:?}");

    // Recovery: the next bucket closes with no traffic, the fast window
    // burn collapses to zero, and the alert clears.
    let cleared = handle.slo_tick().expect("slo configured");
    assert!(!cleared.alert, "a clean bucket must clear the alert: {cleared:?}");
    assert_eq!(cleared.alert_ticks, 0);
    assert_eq!(registry.snapshot().gauge("serve.slo.alert"), Some(0.0));

    drop(client);
    srv.shutdown();
    svc.shutdown();
}

#[test]
fn invalid_slo_config_is_rejected_at_validation() {
    let bad = ServeConfig {
        slo: Some(SloConfig { target: 1.5, ..Default::default() }),
        ..quick_config()
    };
    assert_eq!(bad.validate(), Err(ConfigError::InvalidSlo));
    let good = ServeConfig { slo: Some(test_slo(1_000_000)), ..quick_config() };
    assert_eq!(good.validate(), Ok(()));
}

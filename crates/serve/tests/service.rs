//! End-to-end tests of the tuning service: concurrent readers during
//! hot-swaps, load-shedding, deadlines, cache behavior, and the TCP wire.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_obs::{Registry, Tracer};
use lite_serve::{
    ClientBuilder, ClusterRef, ErrorCode, ModelSnapshot, Request, Response, ServeConfig,
    ServeError, Service,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::exec::simulate;
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;

fn trained() -> (Arc<Dataset>, ModelSnapshot) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 41,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        41,
    );
    let snapshot = ModelSnapshot::from_tuner(&tuner);
    (Arc::new(ds), snapshot)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        update_batch: 12,
        amu: AmuConfig { epochs: 1, half_batch: 32, ..Default::default() },
        ..Default::default()
    }
}

/// Drive observations until the background updater publishes at least one
/// new model version.
fn drive_one_swap(handle: &lite_serve::ServiceHandle, cluster: &ClusterSpec) {
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seed = 900u64;
    while handle.swap_count() == 0 {
        assert!(Instant::now() < deadline, "no hot-swap within 120 s");
        let rec = handle
            .recommend(AppId::KMeans, &data, cluster, 1, seed)
            .expect("recommend during feedback loop");
        let result = simulate(cluster, &rec.ranked[0].conf, &plan, seed);
        handle
            .observe(AppId::KMeans, &data, cluster, &rec.ranked[0].conf, &result)
            .expect("observe");
        seed += 1;
    }
}

#[test]
fn concurrent_readers_stay_deterministic_across_hot_swaps() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let registry = Registry::new();
    let service =
        Service::start(snapshot, ds.clone(), quick_config(), &registry, Tracer::disabled());
    let handle = service.handle();

    // Readers hammer one fixed request and record (version, scores) pairs
    // until they have witnessed a post-swap version.
    let data = AppId::Sort.dataset(SizeTier::Valid);
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let handle = handle.clone();
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let mut seen: Vec<(u64, Vec<f64>)> = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(120);
                loop {
                    let resp = handle
                        .recommend(AppId::Sort, &data, &cluster, 30, 7)
                        .expect("reader recommend");
                    let scores: Vec<f64> = resp.ranked.iter().map(|r| r.predicted_s).collect();
                    assert_eq!(resp.cached + resp.scored, 30);
                    seen.push((resp.version, scores));
                    if resp.version >= 1 || Instant::now() > deadline {
                        return seen;
                    }
                }
            })
        })
        .collect();

    drive_one_swap(&handle, &cluster);

    let mut by_version: std::collections::HashMap<u64, Vec<f64>> = Default::default();
    let mut versions_seen = std::collections::BTreeSet::new();
    for reader in readers {
        for (version, scores) in reader.join().expect("reader panicked") {
            versions_seen.insert(version);
            // Identical request + identical model version => bit-identical
            // scores, regardless of worker, cache state, or batching.
            let canonical = by_version.entry(version).or_insert_with(|| scores.clone());
            assert_eq!(&scores, canonical, "nondeterministic scores at version {version}");
        }
    }
    assert!(
        versions_seen.len() >= 2,
        "readers never observed a hot-swap: versions {versions_seen:?}"
    );
    service.shutdown();
}

#[test]
fn full_queue_sheds_instead_of_blocking() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let config = ServeConfig { workers: 0, queue_capacity: 2, ..quick_config() };
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let handle = service.handle();

    // No workers consume, so two stalls fill the queue deterministically.
    let pending: Vec<_> = (0..2)
        .map(|_| {
            let handle = handle.clone();
            std::thread::spawn(move || handle.stall(Duration::ZERO))
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.queue_len() < 2 {
        assert!(Instant::now() < deadline, "stalls never enqueued");
        std::thread::yield_now();
    }

    // The third request is shed immediately, not queued or blocked.
    let started = Instant::now();
    let data = AppId::Sort.dataset(SizeTier::Valid);
    let shed = handle.recommend(AppId::Sort, &data, &cluster, 1, 0);
    assert_eq!(shed.unwrap_err(), ServeError::Overloaded);
    assert!(started.elapsed() < Duration::from_secs(1), "shedding blocked");
    assert_eq!(registry.snapshot().counter("serve.shed"), Some(1));

    // Shutdown answers the still-queued stalls instead of leaking them.
    service.shutdown();
    for p in pending {
        assert_eq!(p.join().expect("stall thread"), Err(ServeError::ShuttingDown));
    }
    assert_eq!(
        handle.recommend(AppId::Sort, &data, &cluster, 1, 0).unwrap_err(),
        ServeError::ShuttingDown
    );
}

#[test]
fn queued_past_deadline_is_answered_deadline_exceeded() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let config = ServeConfig { workers: 1, ..quick_config() };
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let handle = service.handle();

    // Two stalls against one worker: whichever is popped first sleeps for
    // 300 ms, so the other stays visibly queued. Waiting until we SEE a
    // queued stall guarantees at least 300 ms of stall time sits ahead of
    // the request submitted next — without it, the worker could drain a
    // lone stall before this thread ever observes it.
    let stalls: Vec<_> = (0..2)
        .map(|_| {
            let handle = handle.clone();
            std::thread::spawn(move || handle.stall(Duration::from_millis(300)))
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.queue_len() == 0 {
        assert!(Instant::now() < deadline, "stalls never enqueued");
        std::thread::yield_now();
    }

    // This request's 1 ms deadline expires while the worker stalls.
    let data = AppId::Sort.dataset(SizeTier::Valid);
    let expired =
        handle.recommend_deadline(AppId::Sort, &data, &cluster, 1, 0, Duration::from_millis(1));
    assert_eq!(expired.unwrap_err(), ServeError::DeadlineExceeded);
    assert_eq!(registry.snapshot().counter("serve.expired"), Some(1));
    for stall in stalls {
        assert_eq!(stall.join().expect("stall thread"), Ok(()));
    }
    service.shutdown();
}

#[test]
fn cache_serves_repeats_and_invalidates_on_swap() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let registry = Registry::new();
    let service =
        Service::start(snapshot, ds.clone(), quick_config(), &registry, Tracer::disabled());
    let handle = service.handle();
    let data = AppId::Sort.dataset(SizeTier::Valid);

    let first = handle.recommend(AppId::Sort, &data, &cluster, 30, 7).expect("first");
    assert_eq!((first.cached, first.scored), (0, 30));
    let second = handle.recommend(AppId::Sort, &data, &cluster, 30, 7).expect("second");
    assert_eq!((second.cached, second.scored), (30, 0));
    let firsts: Vec<f64> = first.ranked.iter().map(|r| r.predicted_s).collect();
    let seconds: Vec<f64> = second.ranked.iter().map(|r| r.predicted_s).collect();
    assert_eq!(firsts, seconds, "cache hits must be bit-identical to fresh scores");
    assert!(handle.cache_hit_rate() > 0.0);

    // A hot-swap invalidates every cached prediction.
    drive_one_swap(&handle, &cluster);
    let post = handle.recommend(AppId::Sort, &data, &cluster, 30, 7).expect("post-swap");
    assert!(post.version >= 1);
    assert_eq!(post.cached, 0, "stale-version entries must not serve");
    assert_eq!(post.scored, 30);
    service.shutdown();
}

#[test]
fn cold_apps_are_rejected_not_served() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, quick_config(), &registry, Tracer::disabled());
    let handle = service.handle();
    // Terasort was not in the training apps, so its templates are unknown.
    let data = AppId::Terasort.dataset(SizeTier::Valid);
    let err = handle.recommend(AppId::Terasort, &data, &cluster, 1, 0).unwrap_err();
    assert_eq!(err, ServeError::ColdApp(AppId::Terasort));
    service.shutdown();
}

#[test]
fn tcp_front_end_round_trips_requests() {
    let (ds, snapshot) = trained();
    let cluster_name = ds.clusters[0].name.clone();
    let registry = Registry::new();
    let service =
        Service::start(snapshot, ds.clone(), quick_config(), &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    let mut client = ClientBuilder::new().connect(server.local_addr()).expect("connect");

    let pong = client.call(&Request::Ping).expect("ping");
    assert!(matches!(pong, Response::Pong { version: 0, .. }), "{pong:?}");

    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let resp = client
        .call(&Request::Recommend {
            app: AppId::KMeans,
            data,
            cluster: ClusterRef::Preset(cluster_name.clone()),
            k: 3,
            seed: 5,
            trace: None,
        })
        .expect("recommend");
    let Response::Recommend { ranked, .. } = resp else { panic!("not a recommend: {resp:?}") };
    assert_eq!(ranked.len(), 3);
    assert_eq!(ranked[0].conf.values().len(), 16);

    // Observe a simulated outcome of the recommended configuration.
    let rec = service
        .handle()
        .recommend(AppId::KMeans, &data, &ds.clusters[0], 1, 5)
        .expect("in-process recommend");
    let result =
        simulate(&ds.clusters[0], &rec.ranked[0].conf, &build_job(AppId::KMeans, &data), 1);
    let obs = client
        .call(&Request::Observe {
            app: AppId::KMeans,
            data,
            cluster: ClusterRef::Preset(cluster_name.clone()),
            conf: rec.ranked[0].conf.clone(),
            result: Box::new(result),
        })
        .expect("observe");
    let Response::Observe { feedback } = obs else { panic!("not an observe: {obs:?}") };
    assert!(feedback > 0);

    // Unknown ops and cold apps come back as typed wire errors.
    let bad = client
        .request(&lite_obs::Json::obj(vec![("op", lite_obs::Json::from("nope"))]))
        .expect("bad op");
    assert_eq!(bad.get("ok").and_then(lite_obs::Json::as_bool), Some(false));
    assert_eq!(bad.get("code").and_then(lite_obs::Json::as_str), Some("bad_request"));
    let cold_data = AppId::Terasort.dataset(SizeTier::Valid);
    let cold = client
        .call(&Request::Recommend {
            app: AppId::Terasort,
            data: cold_data,
            cluster: ClusterRef::Preset(cluster_name.clone()),
            k: 1,
            seed: 0,
            trace: None,
        })
        .expect("cold recommend");
    assert!(
        matches!(cold, Response::Error { code: ErrorCode::ColdApp, .. }),
        "cold app must be a typed error: {cold:?}"
    );

    drop(client);
    server.shutdown();
    service.shutdown();
}

//! Resilience-plane tests: circuit-breaker and backoff properties,
//! graceful degradation under injected faults, the unified `Tuner` trait
//! served end-to-end, protocol-v2 round-trips, and torn-frame recovery
//! through the resilient client.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_core::amu::AmuConfig;
use lite_core::experiment::{Dataset, DatasetBuilder};
use lite_core::necs::NecsConfig;
use lite_core::recommend::LiteTuner;
use lite_core::tuner::Tuner;
use lite_obs::{Json, Registry, Tracer};
use lite_serve::net::data_to_json;
use lite_serve::{
    BreakerConfig, BreakerState, CircuitBreaker, Client, ClusterRef, ErrorCode, ModelSnapshot,
    OpCode, Request, ResilientClient, Response, RetryPolicy, ServeConfig, Service,
};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::ConfSpace;
use lite_sparksim::exec::simulate;
use lite_sparksim::fault::{FaultInjector, FaultKind};
use lite_workloads::apps::{build_job, AppId};
use lite_workloads::data::SizeTier;
use proptest::prelude::*;

fn trained() -> (Arc<Dataset>, ModelSnapshot) {
    let ds = DatasetBuilder {
        apps: vec![AppId::Sort, AppId::KMeans],
        clusters: vec![ClusterSpec::cluster_a()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 3,
        seed: 41,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 2, batch_size: 256, ..Default::default() },
        41,
    );
    let snapshot = ModelSnapshot::from_tuner(&tuner);
    (Arc::new(ds), snapshot)
}

// ---------------------------------------------------------------------------
// Property tests: breaker state machine and backoff bounds (S4)

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // An Open breaker admits nothing until its cooldown has fully
    // elapsed, no matter what sequence of events preceded it.
    #[test]
    fn open_breaker_never_admits_inside_cooldown(seed in 0u64..10_000) {
        use lite_sparksim::fault::mix64;
        let cooldown = Duration::from_millis(50);
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 6,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown,
            probe_quota: 2,
        });
        let base = Instant::now();
        let mut offset = Duration::ZERO;
        // Shadow model: when did the breaker last trip?
        let mut opened_at: Option<Duration> = None;
        let mut h = seed;
        for _ in 0..300 {
            h = mix64(h.wrapping_add(0x9E37_79B9_7F4A_7C15));
            let now = base + offset;
            match h % 4 {
                0 => offset += Duration::from_millis((h >> 8) % 30),
                1 => {
                    let before = b.state();
                    let admitted = b.allow(now);
                    if before == BreakerState::Open {
                        let at = opened_at.expect("shadow model missed a trip");
                        if offset < at + cooldown {
                            prop_assert!(
                                !admitted,
                                "admitted {:?} into an Open breaker {:?} before cooldown",
                                offset, at
                            );
                            prop_assert_eq!(b.state(), BreakerState::Open);
                        }
                    }
                }
                2 => b.on_success(now),
                _ => {
                    let before = b.state();
                    b.on_failure(now);
                    if before != BreakerState::Open && b.state() == BreakerState::Open {
                        opened_at = Some(offset);
                    }
                }
            }
        }
    }

    // Once the cooldown expires, HalfOpen admits exactly `probe_quota`
    // requests and not one more until probe outcomes arrive.
    #[test]
    fn halfopen_admits_exactly_the_probe_quota(quota in 1usize..6, extra in 1usize..8) {
        let cooldown = Duration::from_millis(20);
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown,
            probe_quota: quota,
        });
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        prop_assert_eq!(b.state(), BreakerState::Open);
        let t1 = t0 + cooldown + Duration::from_millis(1);
        let mut admitted = 0;
        for _ in 0..quota + extra {
            if b.allow(t1) {
                admitted += 1;
            }
        }
        prop_assert_eq!(admitted, quota, "HalfOpen must admit exactly the probe quota");
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        // Resolving every probe successfully closes the breaker and
        // restores admission.
        for _ in 0..quota {
            b.on_success(t1);
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert!(b.allow(t1));
    }

    // Decorrelated jitter never leaves `[base, cap]`, for any attempt
    // index and any previous sleep.
    #[test]
    fn backoff_jitter_stays_within_base_and_cap(
        attempt in 0usize..32,
        prev_ms in 0u64..10_000,
        seed in 0u64..10_000,
    ) {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            seed,
        };
        let d = p.backoff(attempt, Duration::from_millis(prev_ms));
        prop_assert!(d >= p.base, "backoff {d:?} fell below base {:?}", p.base);
        prop_assert!(d <= p.cap, "backoff {d:?} exceeded cap {:?}", p.cap);
    }
}

// ---------------------------------------------------------------------------
// Builder validation (S3)

#[test]
fn builder_rejects_invalid_configs_and_accepts_valid_ones() {
    use lite_serve::ConfigError;

    let err = ServeConfig::builder().queue_capacity(0).build().unwrap_err();
    assert_eq!(err, ConfigError::ZeroQueueCapacity);

    let err = ServeConfig::builder().update_batch(0).build().unwrap_err();
    assert_eq!(err, ConfigError::ZeroUpdateBatch);

    let err = ServeConfig::builder()
        .default_deadline(Duration::from_secs(10))
        .max_deadline(Duration::from_secs(1))
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::InvertedDeadlines);

    let err = ServeConfig::builder()
        .drift(lite_serve::DriftConfig { mape_threshold: 0.0, ..Default::default() })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::NonPositiveDriftThreshold);

    let cfg = ServeConfig::builder()
        .workers(3)
        .queue_capacity(64)
        .default_deadline(Duration::from_millis(250))
        .max_deadline(Duration::from_secs(2))
        .update_batch(16)
        .cache_shards(4)
        .cache_capacity_per_shard(128)
        .build()
        .expect("valid config");
    assert_eq!(cfg.workers, 3);
    assert_eq!(cfg.queue_capacity, 64);
    assert_eq!(cfg.update_batch, 16);
    assert!(cfg.validate().is_ok());
}

// ---------------------------------------------------------------------------
// Graceful degradation (tentpole)

#[test]
fn updater_panic_pins_last_good_snapshot_and_recovers_after_disarm() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let faults = Arc::new(FaultInjector::new(97).with(FaultKind::UpdaterPanic, 1.0));
    let config = ServeConfig::builder()
        .workers(2)
        .queue_capacity(32)
        .update_batch(4)
        .amu(AmuConfig { epochs: 1, half_batch: 16, ..Default::default() })
        .faults(faults.clone())
        .build()
        .expect("valid chaos config");
    let registry = Registry::new();
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::disabled());
    let handle = service.handle();

    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seed = 500u64;
    while handle.stats().updater_failures == 0 {
        assert!(Instant::now() < deadline, "updater never attempted an update");
        let rec = handle.recommend(AppId::KMeans, &data, &cluster, 1, seed).expect("recommend");
        let result = simulate(&cluster, &rec.ranked[0].conf, &plan, seed);
        handle
            .observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result)
            .expect("observe");
        seed += 1;
    }

    // The injected panic must not take the service down: the last good
    // snapshot stays pinned and the degradation signals are raised.
    assert!(handle.degraded(), "updater failure must raise degraded");
    assert_eq!(handle.version(), 0, "failed update must pin the last-good version");
    assert_eq!(handle.swap_count(), 0);
    assert_eq!(registry.gauge("serve.degraded").value(), 1.0);
    let rec = handle.recommend(AppId::KMeans, &data, &cluster, 3, 1).expect("degraded serves");
    assert!(!rec.ranked.is_empty());

    // Chaos over: the next successful update clears degradation.
    faults.disarm();
    let deadline = Instant::now() + Duration::from_secs(120);
    while handle.swap_count() == 0 {
        assert!(Instant::now() < deadline, "no recovery swap after disarm");
        let rec = handle.recommend(AppId::KMeans, &data, &cluster, 1, seed).expect("recommend");
        let result = simulate(&cluster, &rec.ranked[0].conf, &plan, seed);
        handle
            .observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result)
            .expect("observe");
        seed += 1;
    }
    assert!(!handle.degraded(), "successful swap must clear degraded");
    assert!(handle.version() >= 1);
    assert_eq!(registry.gauge("serve.degraded").value(), 0.0);
    assert!(handle.stats().updater_failures >= 1);
    service.shutdown();
}

#[test]
fn score_failure_falls_back_to_the_default_configuration() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let faults = Arc::new(FaultInjector::new(11).with(FaultKind::ScoreFail, 1.0));
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        faults: Some(faults.clone()),
        ..Default::default()
    };
    let registry = Registry::new();
    let service = Service::start(snapshot, ds.clone(), config, &registry, Tracer::disabled());
    let handle = service.handle();

    let data = AppId::Sort.dataset(SizeTier::Valid);
    let resp = handle.recommend(AppId::Sort, &data, &cluster, 5, 3).expect("fallback answers");
    assert!(resp.degraded, "fallback responses must self-identify");
    assert_eq!(resp.ranked.len(), 1, "fallback serves the single default conf");
    let default_conf = handle.snapshot().expect("snapshot backend").acg.space().default_conf();
    assert_eq!(resp.ranked[0].conf, default_conf);
    assert_eq!(resp.ranked[0].predicted_s, 0.0, "no model prediction behind the fallback");
    assert!(handle.stats().fallbacks >= 1);
    assert!(faults.fired(FaultKind::ScoreFail) >= 1);

    // Disarmed, the same request scores normally again.
    faults.disarm();
    let resp = handle.recommend(AppId::Sort, &data, &cluster, 5, 3).expect("normal path");
    assert!(!resp.degraded);
    assert_eq!(resp.ranked.len(), 5);
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Unified Tuner trait served end-to-end (S1)

#[test]
fn lite_bo_ddpg_and_baselines_serve_through_the_unified_trait() {
    let (ds, _snapshot) = trained();
    let lite = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 1, batch_size: 256, ..Default::default() },
        43,
    );
    let space = ConfSpace::table_iv();
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(lite),
        Box::new(lite_bayesopt::BoServeTuner::new(space.clone(), 7)),
        Box::new(lite_ddpg::DdpgServeTuner::new(space.clone(), 7)),
        Box::new(lite_core::tuner::RandomTuner { space: space.clone() }),
        Box::new(lite_core::tuner::DefaultConfTuner { space: space.clone() }),
    ];
    let cluster = ClusterSpec::cluster_a();
    let data = AppId::Sort.dataset(SizeTier::Valid);
    let plan = build_job(AppId::Sort, &data);

    let mut names = Vec::new();
    for tuner in tuners {
        let name = tuner.name();
        let registry = Registry::new();
        let config = ServeConfig { workers: 1, queue_capacity: 8, ..Default::default() };
        let service = Service::start_tuner(tuner, config, &registry, Tracer::disabled());
        let handle = service.handle();
        assert_eq!(handle.backend(), name);
        assert!(handle.snapshot().is_none(), "tuner backends have no snapshot");

        // Two full recommend → execute → observe rounds per backend.
        for seed in 0..2u64 {
            let rec = handle
                .recommend(AppId::Sort, &data, &cluster, 3, seed)
                .unwrap_or_else(|e| panic!("{name}: recommend failed: {e}"));
            assert!(!rec.ranked.is_empty(), "{name}: empty recommendation");
            assert!(space.is_valid(&rec.ranked[0].conf), "{name}: invalid conf");
            let result = simulate(&cluster, &rec.ranked[0].conf, &plan, 40 + seed);
            let observed = handle
                .observe(AppId::Sort, &data, &cluster, &rec.ranked[0].conf, &result)
                .unwrap_or_else(|e| panic!("{name}: observe failed: {e}"));
            assert_eq!(observed, seed as usize + 1, "{name}: observed-run count");
        }
        assert_eq!(handle.version(), 2, "{name}: version tracks observed runs");
        assert_eq!(handle.stats().backend, name);
        names.push(name);
        service.shutdown();
    }
    assert!(
        names.contains(&"lite") && names.contains(&"bo") && names.contains(&"ddpg"),
        "the three paper tuners must serve through the trait, got {names:?}"
    );
}

// ---------------------------------------------------------------------------
// Protocol v2 (S2)

#[test]
fn v2_codes_round_trip_and_cover_every_variant() {
    for op in OpCode::ALL {
        assert_eq!(OpCode::from_code(u64::from(op.code())), Some(op));
        assert_eq!(OpCode::from_name(op.name()), Some(op));
    }
    for code in ErrorCode::ALL {
        assert_eq!(ErrorCode::from_code(u64::from(code.code())), Some(code));
        assert_eq!(ErrorCode::from_name(code.name()), Some(code));
        // A v2 error envelope decodes back to the same code...
        let v2 = Json::obj(vec![
            ("v", Json::from(2u64)),
            ("ok", Json::Bool(false)),
            ("c", Json::from(u64::from(code.code()))),
            ("code", Json::from(code.name())),
            ("error", Json::from("detail")),
        ]);
        assert_eq!(ErrorCode::from_response(&v2), Some(code));
        // ...and so does the legacy v1 string-only envelope.
        let v1 = Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("code", Json::from(code.name())),
            ("error", Json::from("detail")),
        ]);
        assert_eq!(ErrorCode::from_response(&v1), Some(code));
    }
    assert_eq!(OpCode::from_code(250), None);
    assert_eq!(ErrorCode::from_code(250), None);
}

#[test]
fn tcp_serves_v1_and_v2_clients_side_by_side() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let config = ServeConfig { workers: 2, queue_capacity: 16, ..Default::default() };
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");

    // Legacy client: no hello, string ops, v1 envelopes.
    let mut v1 = Client::connect(server.local_addr()).expect("connect v1");
    assert_eq!(v1.protocol_version(), 1);
    assert!(v1.request_op(OpCode::Ping, Vec::new()).is_ok());
    let resp = v1.request_op(OpCode::Stats, Vec::new()).expect("v1 stats");
    assert_eq!(resp.get("v"), None, "v1 responses must not grow a version tag");
    assert_eq!(resp.get("backend").and_then(Json::as_str), Some("snapshot"));

    // Negotiated client: numeric ops, stamped responses, numeric codes.
    let mut v2 = Client::connect(server.local_addr()).expect("connect v2");
    assert_eq!(v2.negotiate().expect("hello"), 2);
    assert_eq!(v2.protocol_version(), 2);
    let resp = v2.request_op(OpCode::Ping, Vec::new()).expect("v2 ping");
    assert_eq!(resp.get("v").and_then(Json::as_u64), Some(2));
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));

    // v2 structured errors: cold app carries its numeric code.
    let data = AppId::Terasort.dataset(SizeTier::Valid);
    let resp = v2
        .request_op(
            OpCode::Recommend,
            vec![
                ("app", Json::from(AppId::Terasort.name())),
                ("data", data_to_json(&data)),
                ("cluster", Json::from(cluster.name.as_str())),
                ("k", Json::from(3u64)),
                ("seed", Json::from(1u64)),
            ],
        )
        .expect("wire ok");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(ErrorCode::from_response(&resp), Some(ErrorCode::ColdApp));
    assert_eq!(resp.get("v").and_then(Json::as_u64), Some(2));

    // Unknown numeric op is a BadRequest, not a dropped connection.
    let resp = v2
        .request(&Json::obj(vec![("v", Json::from(2u64)), ("o", Json::from(99u64))]))
        .expect("bad op answered");
    assert_eq!(ErrorCode::from_response(&resp), Some(ErrorCode::BadRequest));

    // Asking for a future version clamps to what the server speaks.
    let mut eager = Client::connect(server.local_addr()).expect("connect");
    let resp = eager
        .request(&Json::obj(vec![("op", Json::from("hello")), ("max", Json::from(9u64))]))
        .expect("hello");
    assert_eq!(resp.get("v").and_then(Json::as_u64), Some(lite_serve::PROTOCOL_VERSION));

    server.shutdown();
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Torn frames + resilient client (tentpole)

#[test]
fn resilient_client_loses_nothing_to_torn_frames() {
    let (ds, snapshot) = trained();
    let cluster = ds.clusters[0].clone();
    let faults = Arc::new(FaultInjector::new(23).with(FaultKind::TornFrame, 0.3));
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        faults: Some(faults.clone()),
        ..Default::default()
    };
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");

    let mut client = ResilientClient::single(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 24,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            seed: 5,
        },
        // This test is about retries, not breaking: an unreachable sample
        // floor keeps the breaker Closed through every torn frame.
        BreakerConfig { min_samples: usize::MAX, ..Default::default() },
    );

    let data = AppId::Sort.dataset(SizeTier::Valid);
    for seed in 0..30u64 {
        let resp = client
            .call(&Request::Recommend {
                app: AppId::Sort,
                data,
                cluster: ClusterRef::Preset(cluster.name.clone()),
                k: 1,
                seed,
                trace: None,
            })
            .expect("no request may be lost forever");
        assert!(resp.is_ok(), "{resp:?}");
    }
    assert!(faults.fired(FaultKind::TornFrame) >= 1, "chaos never actually fired");

    server.shutdown();
    service.shutdown();
}

#[test]
fn breaker_opens_under_storm_and_closes_after_recovery() {
    let (ds, snapshot) = trained();
    let faults = Arc::new(FaultInjector::new(29).with(FaultKind::TornFrame, 1.0));
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        faults: Some(faults.clone()),
        ..Default::default()
    };
    let registry = Registry::new();
    let service = Service::start(snapshot, ds, config, &registry, Tracer::disabled());
    let server = lite_serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");

    let mut client = ResilientClient::single(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(40),
            seed: 9,
        },
        BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(30),
            probe_quota: 1,
        },
    );

    // Every response is torn: the attempt budget drains and the breaker
    // trips along the way.
    let err = client.call(&Request::Ping).expect_err("storm must exhaust");
    assert!(matches!(err, lite_serve::ClientError::Exhausted { .. }), "got {err}");
    assert!(client.breaker_transitions().opened >= 1, "breaker never opened under storm");

    // Storm ends; after the cooldown the half-open probe succeeds and the
    // breaker closes again.
    faults.disarm();
    std::thread::sleep(Duration::from_millis(35));
    let resp = client.call(&Request::Ping).expect("recovery ping");
    assert!(matches!(resp, Response::Pong { .. }), "{resp:?}");
    let tr = client.breaker_transitions();
    assert!(tr.half_opened >= 1, "breaker never probed");
    assert!(tr.closed >= 1, "breaker never closed after recovery");
    assert_eq!(client.breaker_states()[0].1, BreakerState::Closed);

    server.shutdown();
    service.shutdown();
}

//! Prediction-drift monitoring: is the served model still trustworthy?
//!
//! Every `observe` feedback report pairs the model's *predicted* runtime
//! for the executed configuration with the *observed* runtime. The
//! [`DriftMonitor`] keeps the most recent pairs in a fixed-size lock-free
//! ring and summarizes them on demand into rolling error statistics:
//!
//! * **MAPE** — mean absolute percentage error, the paper's own headline
//!   accuracy metric, sensitive to calibration drift;
//! * **mean signed error** — whether the model is systematically over- or
//!   under-predicting (a workload or data-scale shift usually shows up
//!   here first);
//! * **rank-inversion rate** — the fraction of discordant pairs
//!   (predicted order disagrees with observed order). LITE *ranks*
//!   candidates, so a model can drift in absolute terms while still
//!   ranking correctly — and vice versa. This is the metric that actually
//!   predicts recommendation quality.
//!
//! The background updater consults [`DriftMonitor::summary`] so Adaptive
//! Model Update retraining triggers on *drift or batch-full*, whichever
//! comes first, instead of a blind feedback count.
//!
//! Recording is one `fetch_add` plus one relaxed store: each slot packs
//! the `(predicted, observed)` pair as two `f32`s in a single `AtomicU64`,
//! so a summary never sees a torn pair. Concurrent writers may interleave
//! arbitrarily and a reset races benignly with in-flight records (a
//! handful of pre-reset pairs can survive into the next window); the
//! monitor is a statistical signal, not an audit log.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Thresholds for declaring prediction drift.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Ring capacity: how many recent (predicted, observed) pairs the
    /// rolling statistics cover.
    pub window: usize,
    /// Minimum pairs in the window before drift can be declared (avoids
    /// alerting on the first few noisy observations after a swap).
    pub min_samples: usize,
    /// Declare drift when rolling MAPE exceeds this (e.g. `0.5` = 50 %
    /// mean absolute percentage error).
    pub mape_threshold: f64,
    /// Declare drift when the pairwise rank-inversion rate exceeds this.
    /// `0.5` is coin-flip ranking; the default alerts a little below it.
    pub inversion_threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig { window: 256, min_samples: 30, mape_threshold: 0.5, inversion_threshold: 0.45 }
    }
}

/// Rolling error statistics over the monitor's window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSummary {
    /// Pairs currently in the window.
    pub samples: usize,
    /// Mean absolute percentage error, `mean(|pred - obs| / obs)` over
    /// pairs with positive observed runtime. 0 when empty.
    pub mape: f64,
    /// Mean signed error in seconds, `mean(pred - obs)`; negative means
    /// the model under-predicts runtimes.
    pub mean_error_s: f64,
    /// Fraction of discordant pairs among all strictly-ordered pairs:
    /// 0 = perfect ranking, 0.5 = random, 1 = reversed. 0 when fewer than
    /// two distinct observations.
    pub inversion_rate: f64,
    /// Whether the configured thresholds are exceeded (requires
    /// `min_samples`).
    pub drifted: bool,
}

impl DriftSummary {
    /// The all-zero summary of an empty window.
    pub fn empty() -> DriftSummary {
        DriftSummary {
            samples: 0,
            mape: 0.0,
            mean_error_s: 0.0,
            inversion_rate: 0.0,
            drifted: false,
        }
    }
}

/// Lock-free ring of `(predicted, observed)` runtime pairs.
pub struct DriftMonitor {
    config: DriftConfig,
    /// Each slot packs `predicted as f32` in the high 32 bits and
    /// `observed as f32` in the low 32 bits.
    slots: Box<[AtomicU64]>,
    /// Total records since the last reset; `min(head, window)` slots are
    /// live, and `head % window` is the next slot to overwrite.
    head: AtomicUsize,
}

#[inline]
fn pack(predicted: f64, observed: f64) -> u64 {
    ((predicted as f32).to_bits() as u64) << 32 | (observed as f32).to_bits() as u64
}

#[inline]
fn unpack(bits: u64) -> (f64, f64) {
    (f32::from_bits((bits >> 32) as u32) as f64, f32::from_bits(bits as u32) as f64)
}

impl DriftMonitor {
    /// An empty monitor with the given thresholds (window is clamped to at
    /// least 2).
    pub fn new(config: DriftConfig) -> DriftMonitor {
        let window = config.window.max(2);
        DriftMonitor {
            slots: (0..window).map(|_| AtomicU64::new(0)).collect(),
            config: DriftConfig { window, ..config },
            head: AtomicUsize::new(0),
        }
    }

    /// The thresholds this monitor applies.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Record one `(predicted, observed)` runtime pair in seconds.
    /// Non-finite values are dropped (a failed run has no meaningful
    /// observed runtime).
    pub fn record(&self, predicted_s: f64, observed_s: f64) {
        if !predicted_s.is_finite() || !observed_s.is_finite() {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slots[i].store(pack(predicted_s, observed_s), Ordering::Relaxed);
    }

    /// Forget the window (called after a model swap: the new version
    /// deserves a fresh verdict). Races with in-flight `record`s are
    /// benign — see the module docs.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
    }

    /// Pairs currently in the window.
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compute the rolling statistics. O(window²) for the inversion rate,
    /// which at the default window of 256 is ~32k comparisons — called by
    /// the updater at most every 100 ms, not on the request path.
    pub fn summary(&self) -> DriftSummary {
        let live = self.len();
        if live == 0 {
            return DriftSummary::empty();
        }
        let pairs: Vec<(f64, f64)> =
            self.slots[..live].iter().map(|s| unpack(s.load(Ordering::Relaxed))).collect();

        let mut abs_pct_sum = 0.0;
        let mut abs_pct_n = 0usize;
        let mut signed_sum = 0.0;
        for &(pred, obs) in &pairs {
            signed_sum += pred - obs;
            if obs > 0.0 {
                abs_pct_sum += (pred - obs).abs() / obs;
                abs_pct_n += 1;
            }
        }
        let mape = if abs_pct_n == 0 { 0.0 } else { abs_pct_sum / abs_pct_n as f64 };
        let mean_error_s = signed_sum / live as f64;

        let mut discordant = 0usize;
        let mut ordered = 0usize;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let dp = pairs[i].0 - pairs[j].0;
                let do_ = pairs[i].1 - pairs[j].1;
                if dp == 0.0 || do_ == 0.0 {
                    continue; // ties carry no rank information
                }
                ordered += 1;
                if (dp > 0.0) != (do_ > 0.0) {
                    discordant += 1;
                }
            }
        }
        let inversion_rate = if ordered == 0 { 0.0 } else { discordant as f64 / ordered as f64 };

        let drifted = live >= self.config.min_samples
            && (mape > self.config.mape_threshold
                || inversion_rate > self.config.inversion_threshold);
        DriftSummary { samples: live, mape, mean_error_s, inversion_rate, drifted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(min_samples: usize) -> DriftMonitor {
        DriftMonitor::new(DriftConfig { min_samples, ..DriftConfig::default() })
    }

    #[test]
    fn empty_monitor_reports_zeroes() {
        let m = monitor(10);
        assert!(m.is_empty());
        assert_eq!(m.summary(), DriftSummary::empty());
    }

    #[test]
    fn accurate_predictions_do_not_drift() {
        let m = monitor(10);
        for i in 1..=50 {
            let truth = i as f64;
            m.record(truth * 1.02, truth); // 2% error, order preserved
        }
        let s = m.summary();
        assert_eq!(s.samples, 50);
        assert!((s.mape - 0.02).abs() < 1e-6, "{s:?}");
        assert!(s.mean_error_s > 0.0);
        assert_eq!(s.inversion_rate, 0.0);
        assert!(!s.drifted);
    }

    #[test]
    fn calibration_drift_trips_mape() {
        let m = monitor(10);
        for i in 1..=40 {
            let truth = i as f64;
            m.record(truth, truth * 3.0); // observed 3x the prediction
        }
        let s = m.summary();
        assert!(s.mape > 0.5, "{s:?}");
        assert!(s.mean_error_s < 0.0, "under-prediction: {s:?}");
        assert_eq!(s.inversion_rate, 0.0, "order is still perfect");
        assert!(s.drifted);
    }

    #[test]
    fn rank_collapse_trips_inversion_rate_even_when_scale_is_right() {
        let m = monitor(10);
        // Predictions are a *reversed* ranking with tiny absolute error
        // around a common mean: MAPE stays small, inversions go to 1.
        let n = 40;
        for i in 0..n {
            let obs = 100.0 + i as f64;
            let pred = 100.0 + (n - 1 - i) as f64;
            m.record(pred, obs);
        }
        let s = m.summary();
        assert!(s.mape < 0.3, "{s:?}");
        assert!(s.inversion_rate > 0.95, "{s:?}");
        assert!(s.drifted);
    }

    #[test]
    fn min_samples_gates_alerts() {
        let m = monitor(30);
        for _ in 0..29 {
            m.record(10.0, 100.0); // wildly wrong, but too few samples
        }
        assert!(!m.summary().drifted);
        m.record(10.0, 100.0);
        assert!(m.summary().drifted);
    }

    #[test]
    fn window_evicts_oldest_and_reset_clears() {
        let cfg = DriftConfig { window: 8, min_samples: 2, ..DriftConfig::default() };
        let m = DriftMonitor::new(cfg);
        for _ in 0..100 {
            m.record(5.0, 5.0);
        }
        assert_eq!(m.len(), 8);
        assert!(!m.summary().drifted);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.summary(), DriftSummary::empty());
    }

    #[test]
    fn non_finite_pairs_are_dropped() {
        let m = monitor(1);
        m.record(f64::NAN, 5.0);
        m.record(5.0, f64::INFINITY);
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_records_never_tear_pairs() {
        let m = std::sync::Arc::new(monitor(10));
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                // Every thread writes pairs with the invariant obs = 2*pred.
                for i in 1..500u32 {
                    let p = (t * 1000 + i) as f64;
                    m.record(p, 2.0 * p);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let live = m.len();
        for slot in &m.slots[..live] {
            let (p, o) = unpack(slot.load(Ordering::Relaxed));
            assert_eq!(o, 2.0 * p, "torn pair: ({p}, {o})");
        }
    }
}

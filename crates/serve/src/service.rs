//! The tuning service: a worker pool over a bounded queue, plus the
//! background updater that hot-swaps model versions.
//!
//! Admission control is explicit. The queue has a fixed capacity; a full
//! queue rejects new requests with [`ServeError::Overloaded`] at enqueue
//! time (load-shedding) instead of letting latency grow without bound.
//! Every request carries a deadline; a request whose deadline passed while
//! it sat in the queue is answered [`ServeError::DeadlineExceeded`] without
//! being scored. Workers never block on the updater: they read the model
//! through a [`SlotReader`](crate::slot::SlotReader), so a swap costs a
//! request one mutex acquisition at most, once.
//!
//! The service fronts one of two [`Backend`]s behind the same handle and
//! wire protocol: the snapshot backend ([`Service::start`]) serves NECS
//! model snapshots with caching, drift monitoring, and background
//! Adaptive Model Update swaps; the tuner backend ([`Service::start_tuner`])
//! serves any [`Tuner`] implementation (LITE, Bayesian optimization, DDPG,
//! baselines) through the unified trait, so every tuner in the workspace
//! is servable without its own service stack.
//!
//! Resilience: every fault hook branches on `config.faults` being `None`
//! (zero cost when disabled). When the background update fails — an
//! injected panic, a real panic in AMU, or a failed swap — the service
//! *degrades* instead of dying: the last-good snapshot stays pinned, the
//! `serve.degraded` gauge rises, and the batch is dropped. When NECS
//! scoring itself fails, recommendations fall back to the template
//! registry's default configuration, flagged `degraded` in the response.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lite_core::amu::{adaptive_model_update, AmuConfig};
use lite_core::experiment::{extract_stage_instances, Dataset};
use lite_core::features::StageInstance;
use lite_core::recommend::{score_candidates, RankedCandidate};
use lite_core::tuner::{Feedback as TunerFeedback, TuneError, TuneRequest, Tuner};
use lite_obs::span::epoch_ns;
use lite_obs::trace::{Exemplar, Phase, PhaseHistograms, PhaseSpan, TraceId, TraceSink};
use lite_obs::{
    Counter, Gauge, Histogram, HistogramSummary, ProfReport, Profiler, Registry, Slo, SloConfig,
    SloStatus, Tracer,
};
use lite_rag::{RagTuner, Retrieved};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::SparkConf;
use lite_sparksim::fault::{FaultInjector, FaultKind};
use lite_sparksim::result::RunResult;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

use crate::cache::{CacheKey, PredictionCache, ResponseCache, ResponseKey};
use crate::monitor::{DriftConfig, DriftMonitor, DriftSummary};
use crate::slot::VersionedSlot;
use crate::snapshot::ModelSnapshot;

// ---------------------------------------------------------------------------
// Errors and results

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue was full; the request was shed at admission.
    Overloaded,
    /// The deadline passed before a worker picked the request up.
    DeadlineExceeded,
    /// The app's templates are not in the serving snapshot; cold-start
    /// instrumentation mutates the registry and is an offline operation.
    ColdApp(AppId),
    /// The service is shutting down.
    ShuttingDown,
    /// A worker disappeared without answering (a bug, surfaced not hung).
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full (load shed)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded in queue"),
            ServeError::ColdApp(app) => write!(f, "app {app} not in serving snapshot (cold start)"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::Internal(msg) => write!(f, "internal serve error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served recommendation.
#[derive(Debug, Clone)]
pub struct RecommendResponse {
    /// Model version that produced every score in `ranked`.
    pub version: u64,
    /// Top-k candidates, best first.
    pub ranked: Vec<RankedCandidate>,
    /// Candidates answered from the prediction cache.
    pub cached: usize,
    /// Candidates scored through the batched NECS pass.
    pub scored: usize,
    /// `true` when scoring failed and the response is the degradation
    /// fallback (the template registry's default configuration, unscored).
    pub degraded: bool,
}

/// A served retrieval: the zero-execution cold-start answer.
#[derive(Debug, Clone)]
pub struct RetrieveResponse {
    /// Raw retrieval hits, nearest first, confs already adapted to the
    /// target data/cluster scale.
    pub neighbors: Vec<Retrieved>,
    /// Adapted candidates ranked best-first (NECS-scored when the
    /// retrieval tuner carries a model, else by scaled neighbor runtime).
    pub ranked: Vec<RankedCandidate>,
    /// Historical runs in the index at answer time.
    pub index_len: usize,
    /// Index search time (the `index_search` cost, folded under the
    /// `score` phase in trace taxonomy terms).
    pub search_ns: u64,
}

// ---------------------------------------------------------------------------
// Configuration

/// Service tuning knobs. Construct via [`ServeConfig::builder`], which
/// validates the cross-field invariants; `Default` is always valid.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering requests. `0` spawns no workers (useful
    /// for queue tests: requests enqueue but nothing consumes them).
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied by [`ServiceHandle::recommend`] and friends when
    /// the caller does not pass one explicitly.
    pub default_deadline: Duration,
    /// Hard ceiling on any request deadline; explicit deadlines are
    /// clamped to it at submission so one caller cannot park a request in
    /// the queue forever.
    pub max_deadline: Duration,
    /// Observed feedback instances that trigger a background model update.
    pub update_batch: usize,
    /// Prediction-cache shards.
    pub cache_shards: usize,
    /// Prediction-cache entries per shard (`0` disables caching).
    pub cache_capacity_per_shard: usize,
    /// Adaptive Model Update hyper-parameters for background swaps.
    pub amu: AmuConfig,
    /// Prediction-drift thresholds. When the rolling error over observed
    /// feedback exceeds them, the updater retrains on whatever feedback
    /// has accumulated instead of waiting for a full `update_batch`.
    pub drift: DriftConfig,
    /// Fault-injection hooks for chaos testing. `None` disables every
    /// hook; each disabled hook costs one branch on this option.
    pub faults: Option<Arc<FaultInjector>>,
    /// Tail-forensics tracing. `None` disables it entirely: no rings, no
    /// phase histograms, and every request-path hook is one branch on this
    /// option (the same zero-cost-when-off discipline as `faults`).
    pub trace: Option<TraceConfig>,
    /// Retrieval plane serving the `retrieve` op: a shared [`RagTuner`]
    /// over historical runs. `None` (the default) rejects retrieval
    /// requests; everything else is untouched.
    pub retrieval: Option<Arc<RagTuner>>,
    /// Windowed burn-rate SLO over request latency (`serve.latency_ns`).
    /// `Some` starts the evaluator thread, publishes `serve.slo.*` gauges,
    /// and serves the `slo` admin op; `None` (the default) disables all
    /// three.
    pub slo: Option<SloConfig>,
    /// Sampling profiler for tag-stack CPU attribution. An enabled
    /// profiler is started with the service (sampler thread, `obs.prof.*`
    /// metrics, worker tag frames) and stopped at shutdown; `None` or a
    /// [`Profiler::disabled`] handle costs one branch per request.
    pub profiler: Option<Profiler>,
    /// Wire-protocol and sharded-dispatch knobs (pipelining depth, worker
    /// shard count, binary-frame cap, inline response cache). The defaults
    /// reproduce the pre-sharding behavior exactly: one shard per worker,
    /// response cache off.
    pub protocol: ProtocolConfig,
}

/// Wire-protocol and sharded-dispatch knobs: what the v3 binary front-end
/// and the per-shard worker queues run under. Validated with the rest of
/// [`ServeConfig`] by the builder.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Maximum in-flight pipelined frames per v3 connection. The reactor
    /// stops draining a connection's socket once this many requests are in
    /// flight (backpressure), so one pipelining client cannot monopolize
    /// the shard queues. Must be > 0; JSON (v1/v2) connections are always
    /// served one frame at a time regardless.
    pub max_pipeline: usize,
    /// Worker shards, each with its own bounded queue of the configured
    /// `queue_capacity`. `0` (the default) means one shard per worker;
    /// other values are clamped to the worker count at start (a shard
    /// without a worker would never drain). Recommendations route by
    /// request-identity hash (shard affinity keeps per-shard caches warm);
    /// everything else round-robins.
    pub shards: usize,
    /// Largest accepted v3 binary frame payload, bytes. Oversized binary
    /// frames are refused with a clean `bad_request` error frame (the
    /// connection survives). Must be in `1..=` the transport's own cap
    /// ([`crate::net::MAX_FRAME`]), which still bounds every frame.
    pub max_frame: u32,
    /// Whole-response cache entries per worker shard backing the inline
    /// fast path: an untraced repeat `recommend` is answered on the
    /// submitting/reactor thread straight from the cache, never crossing
    /// into a worker. `0` (the default) disables the cache and the fast
    /// path entirely; repeat-heavy serving opts in.
    pub response_cache: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            max_pipeline: 32,
            shards: 0,
            max_frame: crate::net::MAX_FRAME,
            response_cache: 0,
        }
    }
}

/// Tail-forensics knobs: when tracing is on, every request records phase
/// spans and per-phase histograms; requests slower than the threshold
/// compete for the exemplar reservoir.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Minimum end-to-end latency before a request is considered for
    /// exemplar capture. `ZERO` means pure top-K (every request competes).
    pub capture_threshold: Duration,
    /// How many of the slowest requests to retain in full.
    pub exemplar_top_k: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capture_threshold: Duration::ZERO, exemplar_top_k: 16 }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(60),
            update_batch: 50,
            cache_shards: 8,
            cache_capacity_per_shard: 512,
            amu: AmuConfig::default(),
            drift: DriftConfig::default(),
            faults: None,
            trace: None,
            retrieval: None,
            slo: None,
            profiler: None,
            protocol: ProtocolConfig::default(),
        }
    }
}

impl ServeConfig {
    /// A validating builder (the supported construction path; direct
    /// struct literals skip the invariant checks below).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { config: ServeConfig::default() }
    }

    /// Check the cross-field invariants the builder enforces.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.update_batch == 0 {
            return Err(ConfigError::ZeroUpdateBatch);
        }
        if self.max_deadline.is_zero() || self.default_deadline > self.max_deadline {
            return Err(ConfigError::InvertedDeadlines);
        }
        if self.drift.mape_threshold <= 0.0 || self.drift.inversion_threshold <= 0.0 {
            return Err(ConfigError::NonPositiveDriftThreshold);
        }
        if self.slo.as_ref().is_some_and(|s| s.validate().is_err()) {
            return Err(ConfigError::InvalidSlo);
        }
        if self.protocol.max_pipeline == 0 {
            return Err(ConfigError::ZeroPipelineDepth);
        }
        if self.protocol.max_frame == 0 || self.protocol.max_frame > crate::net::MAX_FRAME {
            return Err(ConfigError::BadFrameCap);
        }
        Ok(())
    }
}

/// Why a [`ServeConfigBuilder`] refused to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `queue_capacity == 0`: every request would shed at admission.
    ZeroQueueCapacity,
    /// `update_batch == 0`: the updater would spin retraining on nothing.
    ZeroUpdateBatch,
    /// `default_deadline > max_deadline` (or a zero ceiling): the default
    /// would be clamped below itself on every request.
    InvertedDeadlines,
    /// A drift threshold `<= 0` declares permanent drift and retrains on
    /// every feedback instance.
    NonPositiveDriftThreshold,
    /// The SLO config fails [`SloConfig::validate`] (zero objective,
    /// target outside `(0,1)`, inverted windows, or non-positive burns).
    InvalidSlo,
    /// `protocol.max_pipeline == 0`: a v3 connection could never have a
    /// request in flight.
    ZeroPipelineDepth,
    /// `protocol.max_frame` is zero or exceeds the transport frame cap.
    BadFrameCap,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroQueueCapacity => write!(f, "queue_capacity must be > 0"),
            ConfigError::ZeroUpdateBatch => write!(f, "update_batch must be > 0"),
            ConfigError::InvertedDeadlines => {
                write!(f, "default_deadline must be <= max_deadline (and max_deadline > 0)")
            }
            ConfigError::NonPositiveDriftThreshold => {
                write!(f, "drift thresholds must be > 0")
            }
            ConfigError::InvalidSlo => {
                write!(f, "slo config invalid (objective, target, windows, or burn thresholds)")
            }
            ConfigError::ZeroPipelineDepth => {
                write!(f, "protocol.max_pipeline must be > 0")
            }
            ConfigError::BadFrameCap => {
                write!(f, "protocol.max_frame must be in 1..=transport frame cap")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ServeConfig`] that rejects invalid combinations at
/// [`build`](ServeConfigBuilder::build) time.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Worker threads answering requests.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Bounded queue capacity (must be > 0).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// Default per-request deadline.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.config.default_deadline = d;
        self
    }

    /// Hard ceiling on any request deadline.
    pub fn max_deadline(mut self, d: Duration) -> Self {
        self.config.max_deadline = d;
        self
    }

    /// Feedback instances that trigger a background update (must be > 0).
    pub fn update_batch(mut self, n: usize) -> Self {
        self.config.update_batch = n;
        self
    }

    /// Prediction-cache shard count.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.config.cache_shards = n;
        self
    }

    /// Prediction-cache entries per shard (`0` disables caching).
    pub fn cache_capacity_per_shard(mut self, n: usize) -> Self {
        self.config.cache_capacity_per_shard = n;
        self
    }

    /// Adaptive Model Update hyper-parameters.
    pub fn amu(mut self, amu: AmuConfig) -> Self {
        self.config.amu = amu;
        self
    }

    /// Drift thresholds (must be > 0).
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = drift;
        self
    }

    /// Arm the fault-injection hooks.
    pub fn faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Enable tail-forensics tracing.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = Some(trace);
        self
    }

    /// Serve the `retrieve` op from this retrieval tuner.
    pub fn retrieval(mut self, rag: Arc<RagTuner>) -> Self {
        self.config.retrieval = Some(rag);
        self
    }

    /// Evaluate a windowed burn-rate SLO over request latency (must pass
    /// [`SloConfig::validate`]).
    pub fn slo(mut self, slo: SloConfig) -> Self {
        self.config.slo = Some(slo);
        self
    }

    /// Run this sampling profiler for the service's lifetime.
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.config.profiler = Some(profiler);
        self
    }

    /// Wire-protocol and sharded-dispatch knobs (pipelining depth, shard
    /// count, binary-frame cap, inline response cache).
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.config.protocol = protocol;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

// ---------------------------------------------------------------------------
// Oneshot reply channel

struct OneshotInner<T> {
    state: Mutex<(Option<T>, bool)>, // (value, sender gone)
    cv: Condvar,
}

pub(crate) struct OneshotSender<T> {
    inner: Arc<OneshotInner<T>>,
}

pub(crate) struct OneshotReceiver<T> {
    inner: Arc<OneshotInner<T>>,
}

pub(crate) fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Arc::new(OneshotInner { state: Mutex::new((None, false)), cv: Condvar::new() });
    (OneshotSender { inner: inner.clone() }, OneshotReceiver { inner })
}

impl<T> OneshotSender<T> {
    pub(crate) fn send(self, value: T) {
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.0 = Some(value);
        // Drop (below) flips the closed flag and notifies.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.1 = true;
        drop(state);
        self.inner.cv.notify_all();
    }
}

impl<T> OneshotReceiver<T> {
    /// Block until the worker replies. `None` means the sender was dropped
    /// without replying.
    pub(crate) fn recv(self) -> Option<T> {
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.0.is_none() && !state.1 {
            state = self.inner.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.0.take()
    }
}

// ---------------------------------------------------------------------------
// Bounded queue

enum PushError {
    Full,
    Closed,
}

struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: admission control happens here, not by blocking
    /// the producer. A refused item rides back in the error so the caller
    /// can still answer its reply channel (callback replies would
    /// otherwise vanish with the drop).
    fn try_push(&self, item: T) -> Result<usize, (PushError, T)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocking pop; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<(T, usize)> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Close the queue, wake all waiters, and return whatever was still
    /// queued so the caller can answer it.
    fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        let drained = inner.items.drain(..).collect();
        drop(inner);
        self.cv.notify_all();
        drained
    }
}

// ---------------------------------------------------------------------------
// Requests

/// Trace context riding with a request through the queue: the id plus the
/// epoch timestamp the submitter stamped at admission, which becomes the
/// start of the worker's `QueueWait` span.
#[derive(Clone, Copy)]
pub(crate) struct TraceMeta {
    id: TraceId,
    enqueued_ns: u64,
}

/// How a `Recommend` outcome travels back to its submitter. Oneshot is the
/// blocking in-process path; Callback is the reactor's shard-local reply
/// path — the worker invokes it inline (serialize + socket write happen on
/// the worker thread), eliminating the worker→connection handoff the
/// `respond` phase used to attribute.
///
/// Both carry `(outcome, sent_ns, shard)`: the epoch-ns instant the worker
/// sent the reply (0 when untraced) so the receiver can close a `Respond`
/// span, and the worker shard that served it so `respond` attribution
/// stays per-shard under sharded dispatch.
pub(crate) enum RecommendReply {
    Oneshot(OneshotSender<(Result<RecommendResponse, ServeError>, u64, u32)>),
    Callback(RecommendCallback),
}

/// Boxed shard-local reply closure: `(outcome, sent_ns, shard)`.
pub(crate) type RecommendCallback =
    Box<dyn FnOnce(Result<RecommendResponse, ServeError>, u64, u32) + Send>;

impl RecommendReply {
    fn send(self, outcome: Result<RecommendResponse, ServeError>, sent_ns: u64, shard: u32) {
        match self {
            RecommendReply::Oneshot(tx) => tx.send((outcome, sent_ns, shard)),
            RecommendReply::Callback(f) => f(outcome, sent_ns, shard),
        }
    }
}

/// Reply path for `Observe`; same oneshot/callback split as
/// [`RecommendReply`], no trace payload (observe is not traced).
pub(crate) enum ObserveReply {
    Oneshot(OneshotSender<Result<usize, ServeError>>),
    Callback(Box<dyn FnOnce(Result<usize, ServeError>) + Send>),
}

impl ObserveReply {
    fn send(self, outcome: Result<usize, ServeError>) {
        match self {
            ObserveReply::Oneshot(tx) => tx.send(outcome),
            ObserveReply::Callback(f) => f(outcome),
        }
    }
}

pub(crate) enum Request {
    Recommend {
        app: AppId,
        data: DataSpec,
        cluster: ClusterSpec,
        k: usize,
        seed: u64,
        trace: Option<TraceMeta>,
        reply: RecommendReply,
    },
    Observe {
        app: AppId,
        data: DataSpec,
        cluster: ClusterSpec,
        conf: SparkConf,
        result: Box<RunResult>,
        reply: ObserveReply,
    },
    /// Test support: occupy a worker for `dur`. Lets tests fill the queue
    /// deterministically without racing real work.
    Stall { dur: Duration, reply: OneshotSender<Result<(), ServeError>> },
}

impl Request {
    /// Answer a request that will never reach a worker.
    fn reject(self, err: ServeError) {
        match self {
            Request::Recommend { reply, .. } => reply.send(Err(err), 0, 0),
            Request::Observe { reply, .. } => reply.send(Err(err)),
            Request::Stall { reply, .. } => reply.send(Err(err)),
        }
    }
}

struct Job {
    request: Request,
    enqueued: Instant,
    deadline: Instant,
}

// ---------------------------------------------------------------------------
// Shared state and metrics

struct ServeMetrics {
    queue_depth: Gauge,
    shed: Counter,
    expired: Counter,
    requests: Counter,
    swaps: Counter,
    latency: Histogram,
    batch_size: Histogram,
    cache_hit_rate: Gauge,
    drift_mape: Gauge,
    drift_mean_error: Gauge,
    drift_inversion: Gauge,
    drift_samples: Gauge,
    drift_alerts: Counter,
    /// 1 while the service is pinned on a stale snapshot after an updater
    /// failure, 0 otherwise.
    degraded: Gauge,
    /// Background updates that failed (panic or failed swap).
    updater_failures: Counter,
    /// Recommendations answered by the default-configuration fallback.
    fallbacks: Counter,
    /// Retrieval requests served (the `retrieve` op).
    retrieve_requests: Counter,
    /// Retrieval requests that failed (empty store, unparsable source).
    retrieve_errors: Counter,
    /// End-to-end retrieval latency (search + adaptation + ranking).
    retrieve_latency: Histogram,
    /// Neighbors returned per retrieval.
    retrieve_neighbors: Histogram,
    /// Worker shards serving this instance (scripts/lint.sh rule 7 pins
    /// the `serve.shard.*` namespace).
    shard_count: Gauge,
    /// Requests dispatched into a shard queue.
    shard_requests: Counter,
    /// Recommendations answered on the submitting thread by the inline
    /// response-cache fast path (never reached a shard queue).
    shard_inline: Counter,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            queue_depth: registry.gauge("serve.queue_depth"),
            shed: registry.counter("serve.shed"),
            expired: registry.counter("serve.expired"),
            requests: registry.counter("serve.requests"),
            swaps: registry.counter("serve.swaps"),
            latency: registry.histogram("serve.latency_ns"),
            batch_size: registry.histogram("serve.batch_size"),
            cache_hit_rate: registry.gauge("serve.cache_hit_rate"),
            drift_mape: registry.gauge("serve.drift.mape"),
            drift_mean_error: registry.gauge("serve.drift.mean_error_s"),
            drift_inversion: registry.gauge("serve.drift.inversion_rate"),
            drift_samples: registry.gauge("serve.drift.samples"),
            drift_alerts: registry.counter("serve.drift.alerts"),
            degraded: registry.gauge("serve.degraded"),
            updater_failures: registry.counter("serve.updater_failures"),
            fallbacks: registry.counter("serve.fallbacks"),
            retrieve_requests: registry.counter("serve.retrieve.requests"),
            retrieve_errors: registry.counter("serve.retrieve.errors"),
            retrieve_latency: registry.histogram("serve.retrieve.latency_ns"),
            retrieve_neighbors: registry.histogram("serve.retrieve.neighbors"),
            shard_count: registry.gauge("serve.shard.count"),
            shard_requests: registry.counter("serve.shard.requests"),
            shard_inline: registry.counter("serve.shard.inline"),
        }
    }
}

/// State the snapshot backend needs: the versioned model slot plus the
/// feedback/update/cache/drift machinery around it.
struct SnapshotCore {
    slot: VersionedSlot<ModelSnapshot>,
    cache: PredictionCache,
    feedback: Mutex<Vec<StageInstance>>,
    feedback_cv: Condvar,
    feedback_runs: AtomicUsize,
    source: Arc<Dataset>,
    monitor: DriftMonitor,
}

/// State the tuner backend needs: any [`Tuner`] behind a read-write lock.
/// Recommendations take the read side (tuners expose `recommend(&self)`),
/// observations the write side.
struct TunerCore {
    tuner: RwLock<Box<dyn Tuner>>,
    name: &'static str,
    observed: AtomicU64,
}

/// What the worker pool serves from.
enum Backend {
    /// NECS model snapshots with hot-swap, caching, and drift-triggered
    /// background updates (the paper's serving path).
    Snapshot(SnapshotCore),
    /// Any [`Tuner`] implementation through the unified trait.
    Tuner(TunerCore),
}

impl Backend {
    fn label(&self) -> &'static str {
        match self {
            Backend::Snapshot(_) => "snapshot",
            Backend::Tuner(core) => core.name,
        }
    }
}

/// The live tracing plane: the exemplar sink plus the per-phase latency
/// histograms, built once at service start when tracing is configured.
struct TraceState {
    sink: TraceSink,
    hists: PhaseHistograms,
}

/// The `serve.slo.*` gauge family: the closed namespace the burn-rate
/// evaluator publishes after every tick (scripts/lint.sh rule 6 pins it).
struct SloMetrics {
    ticks: Counter,
    burn_fast: Gauge,
    burn_slow: Gauge,
    good_fraction: Gauge,
    alert: Gauge,
    alert_ticks: Gauge,
    window_rate: Gauge,
    window_p50: Gauge,
    window_p99: Gauge,
    window_p999: Gauge,
}

impl SloMetrics {
    fn new(registry: &Registry) -> SloMetrics {
        SloMetrics {
            ticks: registry.counter("serve.slo.ticks"),
            burn_fast: registry.gauge("serve.slo.burn_fast"),
            burn_slow: registry.gauge("serve.slo.burn_slow"),
            good_fraction: registry.gauge("serve.slo.good_fraction"),
            alert: registry.gauge("serve.slo.alert"),
            alert_ticks: registry.gauge("serve.slo.alert_ticks"),
            window_rate: registry.gauge("serve.slo.window_rate"),
            window_p50: registry.gauge("serve.slo.window_p50_ns"),
            window_p99: registry.gauge("serve.slo.window_p99_ns"),
            window_p999: registry.gauge("serve.slo.window_p999_ns"),
        }
    }
}

/// The live SLO plane: the evaluator over `serve.latency_ns` plus its
/// gauge family and the condvar that wakes the tick thread at shutdown.
struct SloState {
    slo: Mutex<Slo>,
    metrics: SloMetrics,
    /// Wakes the evaluator thread out of its bucket-width sleep early
    /// (shutdown would otherwise block on the sleep).
    wake: Condvar,
    gate: Mutex<()>,
}

struct Shared {
    backend: Backend,
    /// One bounded queue per worker shard, each of the full configured
    /// `queue_capacity`. Worker `i` drains shard `i % shards.len()`;
    /// recommendations route by request-identity hash (shard affinity),
    /// everything else round-robins through `rr`.
    shards: Vec<BoundedQueue<Job>>,
    rr: AtomicUsize,
    /// Whole-response cache behind the inline fast path; `None` when
    /// `protocol.response_cache == 0`.
    response_cache: Option<ResponseCache<RecommendResponse>>,
    config: ServeConfig,
    shutdown: AtomicBool,
    tracer: Tracer,
    metrics: ServeMetrics,
    /// The registry the service's metrics live in (for admin exposition).
    registry: Registry,
    started: Instant,
    /// Swaps that finished (the slot stamp, mirrored for cheap reads).
    swap_count: AtomicU64,
    /// Set while serving from a pinned stale snapshot after an updater
    /// failure; cleared by the next successful swap.
    degraded: AtomicBool,
    /// Tail-forensics plane; `None` when tracing is disabled.
    trace: Option<TraceState>,
    /// Burn-rate SLO plane; `None` when no SLO is configured.
    slo: Option<SloState>,
    /// Sampling profiler; `None` when disabled (requests pay one branch).
    profiler: Option<Profiler>,
    /// True while the updater is inside its clone-update-swap section.
    /// Phase spans snapshot it so exemplars show whether a slow request
    /// overlapped a model swap.
    swap_active: AtomicBool,
}

impl Shared {
    /// Shard a recommend routes to: request-identity hash modulo shard
    /// count, so repeats of the same request land on the same worker and
    /// its thread-affine caches stay warm.
    fn route_recommend(&self, key: &ResponseKey) -> usize {
        (key.route_hash() % self.shards.len() as u64) as usize
    }

    /// Shard an observe routes to: same identity hash minus the k/seed
    /// words, so feedback for a context lands where its recommends ran.
    fn route_observe(&self, app: AppId, data: &DataSpec, cluster: &ClusterSpec) -> usize {
        let key = ResponseKey::new(app, data, cluster, 0, 0);
        (key.route_hash() % self.shards.len() as u64) as usize
    }

    /// Round-robin shard for requests with no affinity (stalls).
    fn rr_shard(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Admit a job into `shard`'s queue, maintaining the depth gauge and
    /// shed counter. On refusal the job rides back (boxed — `Job` is a
    /// wide enum) so the caller can answer its reply channel.
    fn push(&self, shard: usize, job: Job) -> Result<usize, Box<(ServeError, Job)>> {
        match self.shards[shard].try_push(job) {
            Ok(depth) => {
                self.metrics.queue_depth.set(self.queue_len() as f64);
                self.metrics.shard_requests.inc();
                Ok(depth)
            }
            Err((PushError::Full, job)) => {
                self.metrics.shed.inc();
                Err(Box::new((ServeError::Overloaded, job)))
            }
            Err((PushError::Closed, job)) => Err(Box::new((ServeError::ShuttingDown, job))),
        }
    }

    /// Requests queued across all shards.
    fn queue_len(&self) -> usize {
        self.shards.iter().map(BoundedQueue::len).sum()
    }

    /// Record one phase span (ring + histogram), stamping the live
    /// swap-in-progress flag. A no-op branch when tracing is off.
    fn trace_phase(&self, id: TraceId, phase: Phase, start_ns: u64, end_ns: u64, queue_depth: u32) {
        if let Some(tr) = &self.trace {
            let span = PhaseSpan {
                trace_id: id.raw(),
                phase,
                start_ns,
                end_ns,
                queue_depth,
                swap_in_progress: self.swap_active.load(Ordering::Relaxed),
            };
            tr.sink.record(span);
            tr.hists.record(&span);
        }
    }

    /// `Some(now)` only when this request is traced — the request-path
    /// pattern for taking a timestamp without paying for it untraced.
    fn trace_now(&self, trace: Option<TraceMeta>) -> Option<(TraceId, u64)> {
        match (trace, &self.trace) {
            (Some(meta), Some(_)) => Some((meta.id, epoch_ns())),
            _ => None,
        }
    }

    /// Push a profiler tag frame for the current scope; inert (`None`)
    /// when no profiler is configured.
    fn prof_enter(&self, tag: &'static str) -> Option<lite_obs::TagGuard> {
        self.profiler.as_ref().map(|p| p.enter(tag))
    }

    /// Close one SLO rollup bucket from the live latency histogram,
    /// re-evaluate the burn-rate windows, and publish the `serve.slo.*`
    /// gauges. Called by the evaluator thread once per bucket width;
    /// tests drive it manually through [`ServiceHandle::slo_tick`].
    fn slo_tick(&self) -> Option<SloStatus> {
        let state = self.slo.as_ref()?;
        let status = {
            let mut slo = state.slo.lock().unwrap_or_else(PoisonError::into_inner);
            slo.tick(&self.metrics.latency).clone()
        };
        let m = &state.metrics;
        m.ticks.inc();
        m.burn_fast.set(status.burn_fast);
        m.burn_slow.set(status.burn_slow);
        m.good_fraction.set(status.good_fraction);
        m.alert.set(if status.alert { 1.0 } else { 0.0 });
        m.alert_ticks.set(status.alert_ticks as f64);
        // Window stats come from the fast window: the freshest view an
        // operator dashboard wants next to the cumulative histogram.
        m.window_rate.set(status.fast.rate);
        m.window_p50.set(status.fast.p50 as f64);
        m.window_p99.set(status.fast.p99 as f64);
        m.window_p999.set(status.fast.p999 as f64);
        Some(status)
    }
}

/// The SLO evaluator thread: one [`Shared::slo_tick`] per bucket width.
/// The sleep comes *first* so services configured with wide buckets (tests
/// that drive ticks manually) never race an automatic tick at startup.
fn slo_loop(shared: Arc<Shared>) {
    let Some(state) = &shared.slo else { return };
    let bucket = {
        let slo = state.slo.lock().unwrap_or_else(PoisonError::into_inner);
        slo.config().bucket
    };
    loop {
        let gate = state.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let _unused = state.wake.wait_timeout(gate, bucket).unwrap_or_else(PoisonError::into_inner);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        shared.slo_tick();
    }
}

// ---------------------------------------------------------------------------
// Worker

fn worker_loop(shared: Arc<Shared>, shard: usize) {
    let mut reader = match &shared.backend {
        Backend::Snapshot(core) => Some(core.slot.reader()),
        Backend::Tuner(_) => None,
    };
    while let Some((job, depth)) = shared.shards[shard].pop() {
        let picked_ns = if shared.trace.is_some() { epoch_ns() } else { 0 };
        shared.metrics.queue_depth.set(depth as f64);
        let now = Instant::now();
        if now > job.deadline {
            shared.metrics.expired.inc();
            job.request.reject(ServeError::DeadlineExceeded);
            continue;
        }
        // Injected handling latency: stalls this worker the way a slow
        // downstream dependency would, building real queue pressure.
        if let Some(f) = shared.config.faults.as_deref() {
            if let Some(d) = f.fire_delay(FaultKind::RequestDelay, f.next_key()) {
                std::thread::sleep(d);
            }
        }
        match job.request {
            Request::Recommend { app, data, cluster, k, seed, trace, reply } => {
                let _tag = shared.prof_enter("serve.recommend");
                if let Some((id, t)) = shared.trace_now(trace) {
                    // QueueWait runs from the submitter's admission stamp to
                    // pickup; Dequeue covers the deadline check and any
                    // injected handling delay that already ran above.
                    if let Some(meta) = trace {
                        shared.trace_phase(
                            id,
                            Phase::QueueWait,
                            meta.enqueued_ns,
                            picked_ns,
                            depth as u32,
                        );
                    }
                    shared.trace_phase(id, Phase::Dequeue, picked_ns, t, 0);
                }
                let mut span = shared.tracer.span("serve.request");
                let outcome = match &shared.backend {
                    Backend::Snapshot(core) => {
                        let load_t = shared.trace_now(trace);
                        let snapshot = match reader.as_mut() {
                            Some(r) => core.slot.load_with(r).clone(),
                            None => core.slot.load(),
                        };
                        if let Some((id, t0)) = load_t {
                            shared.trace_phase(id, Phase::SnapshotLoad, t0, epoch_ns(), 0);
                        }
                        let outcome = serve_recommend(
                            &shared,
                            core,
                            &snapshot,
                            app,
                            &data,
                            &cluster,
                            k,
                            seed,
                            trace.map(|m| m.id),
                        );
                        if span.is_recording() {
                            span.attr_u64("version", snapshot.version);
                        }
                        shared.metrics.cache_hit_rate.set(core.cache.hit_rate());
                        outcome
                    }
                    Backend::Tuner(core) => tuner_recommend(core, app, &data, &cluster, k, seed),
                };
                if span.is_recording() {
                    span.attr_str("app", &app.to_string());
                    span.attr_str("backend", shared.backend.label());
                    span.attr_f64("queue_wait_s", (now - job.enqueued).as_secs_f64());
                    match &outcome {
                        Ok(resp) => {
                            span.attr_u64("cached", resp.cached as u64);
                            span.attr_u64("scored", resp.scored as u64);
                            if resp.degraded {
                                span.attr_str("outcome", "degraded_fallback");
                            }
                        }
                        Err(err) => span.attr_str("error", &err.to_string()),
                    }
                }
                drop(span);
                // Fill the whole-response cache for the inline fast path:
                // only clean snapshot-backend answers (untraced — traced
                // requests must keep exercising the full pipeline — and
                // not the degradation fallback, which should be retried).
                if let (Some(rc), Backend::Snapshot(_)) = (&shared.response_cache, &shared.backend)
                {
                    if trace.is_none() {
                        if let Ok(resp) = &outcome {
                            if !resp.degraded {
                                let key = ResponseKey::new(app, &data, &cluster, k, seed);
                                rc.insert(key, resp.version, resp.clone());
                            }
                        }
                    }
                }
                shared.metrics.requests.inc();
                shared.metrics.latency.record_secs(job.enqueued.elapsed().as_secs_f64());
                let sent_ns =
                    if trace.is_some() && shared.trace.is_some() { epoch_ns() } else { 0 };
                reply.send(outcome, sent_ns, shard as u32);
            }
            Request::Observe { app, data, cluster, conf, result, reply } => {
                let _tag = shared.prof_enter("serve.observe");
                let outcome = match &shared.backend {
                    Backend::Snapshot(core) => {
                        let snapshot = match reader.as_mut() {
                            Some(r) => core.slot.load_with(r).clone(),
                            None => core.slot.load(),
                        };
                        // Feed the drift monitor: what did *this* model
                        // version predict for the configuration that just
                        // ran? Failed runs carry no meaningful runtime and
                        // are skipped.
                        if result.failure.is_none() {
                            if let Some(pred) = predict_one(
                                shared.as_ref(),
                                core,
                                &snapshot,
                                app,
                                &data,
                                &cluster,
                                &conf,
                            ) {
                                core.monitor.record(pred, result.total_time_s);
                            }
                        }
                        let run_id =
                            usize::MAX - core.feedback_runs.fetch_add(1, Ordering::Relaxed);
                        let mut extracted = Vec::new();
                        extract_stage_instances(
                            &snapshot.registry,
                            app,
                            &conf,
                            &data,
                            &cluster,
                            &result,
                            run_id,
                            &mut extracted,
                        );
                        let total = {
                            let mut feedback =
                                core.feedback.lock().unwrap_or_else(PoisonError::into_inner);
                            feedback.extend(extracted);
                            feedback.len()
                        };
                        if total >= shared.config.update_batch {
                            core.feedback_cv.notify_one();
                        }
                        Ok(total)
                    }
                    Backend::Tuner(core) => {
                        let fb = TunerFeedback { app, data, cluster, conf, result: *result };
                        core.tuner.write().unwrap_or_else(PoisonError::into_inner).observe(fb);
                        Ok(core.observed.fetch_add(1, Ordering::AcqRel) as usize + 1)
                    }
                };
                shared.metrics.requests.inc();
                shared.metrics.latency.record_secs(job.enqueued.elapsed().as_secs_f64());
                reply.send(outcome);
            }
            Request::Stall { dur, reply } => {
                std::thread::sleep(dur);
                reply.send(Ok(()));
            }
        }
    }
}

/// Serve one recommendation through the unified [`Tuner`] trait.
fn tuner_recommend(
    core: &TunerCore,
    app: AppId,
    data: &DataSpec,
    cluster: &ClusterSpec,
    k: usize,
    seed: u64,
) -> Result<RecommendResponse, ServeError> {
    let req = TuneRequest { app, data: *data, cluster: cluster.clone(), k, seed };
    let outcome = core.tuner.read().unwrap_or_else(PoisonError::into_inner).recommend(&req);
    match outcome {
        Ok(result) => Ok(RecommendResponse {
            // Tuners have no snapshot version; expose the learning
            // generation (observed runs) so clients still see progress.
            version: core.observed.load(Ordering::Acquire),
            cached: 0,
            scored: result.ranked.len(),
            degraded: result.degraded,
            ranked: result.ranked,
        }),
        Err(TuneError::ColdApp(app)) => Err(ServeError::ColdApp(app)),
        Err(TuneError::Unavailable(msg)) => Err(ServeError::Internal(msg)),
    }
}

/// Predict the runtime of one configuration under `snapshot`, answering
/// from the prediction cache when the pair was already scored at this
/// version (the common case: `observe` usually follows a `recommend` for
/// the same context). `None` when the app is cold in the snapshot.
fn predict_one(
    shared: &Shared,
    core: &SnapshotCore,
    snapshot: &ModelSnapshot,
    app: AppId,
    data: &DataSpec,
    cluster: &ClusterSpec,
    conf: &SparkConf,
) -> Option<f64> {
    let key = CacheKey::new(app, data, cluster, conf);
    if let Some(v) = core.cache.get(&key, snapshot.version) {
        return Some(v);
    }
    let ctx = snapshot.warm_context(app, data, cluster)?;
    let scores = score_candidates(
        &snapshot.model,
        &snapshot.registry,
        &ctx,
        cluster,
        std::slice::from_ref(conf),
        &shared.tracer,
    );
    let v = *scores.first()?;
    core.cache.insert(key, snapshot.version, v);
    Some(v)
}

#[allow(clippy::too_many_arguments)]
fn serve_recommend(
    shared: &Shared,
    core: &SnapshotCore,
    snapshot: &ModelSnapshot,
    app: AppId,
    data: &DataSpec,
    cluster: &ClusterSpec,
    k: usize,
    seed: u64,
    trace: Option<TraceId>,
) -> Result<RecommendResponse, ServeError> {
    let Some(ctx) = snapshot.warm_context(app, data, cluster) else {
        return Err(ServeError::ColdApp(app));
    };
    let score_broken = shared
        .config
        .faults
        .as_deref()
        .is_some_and(|f| f.fires(FaultKind::ScoreFail, f.next_key()));
    let outcome = if score_broken {
        None
    } else {
        // Scoring is the only part of the request that runs model code;
        // a panic or a non-finite score degrades to the fallback below
        // instead of killing the worker.
        catch_unwind(AssertUnwindSafe(|| {
            score_ranked(shared, core, snapshot, &ctx, app, data, cluster, seed, trace)
        }))
        .ok()
        .filter(|(ranked, _, _)| ranked.iter().all(|r| r.predicted_s.is_finite()))
    };
    match outcome {
        Some((mut ranked, cached, scored)) => {
            ranked.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
            ranked.truncate(k.max(1));
            Ok(RecommendResponse {
                version: snapshot.version,
                ranked,
                cached,
                scored,
                degraded: false,
            })
        }
        None => {
            // Degradation ladder, bottom rung: NECS scoring is broken but
            // the template registry still knows a safe configuration.
            // Answer the space default, unscored and flagged, rather than
            // failing the request.
            shared.metrics.fallbacks.inc();
            let conf = snapshot.acg.space().default_conf();
            Ok(RecommendResponse {
                version: snapshot.version,
                ranked: vec![RankedCandidate { conf, predicted_s: 0.0 }],
                cached: 0,
                scored: 0,
                degraded: true,
            })
        }
    }
}

/// The cache-then-batch scoring pass: every candidate for the request,
/// scored and unsorted, plus (cache hits, fresh scores).
#[allow(clippy::too_many_arguments)]
fn score_ranked(
    shared: &Shared,
    core: &SnapshotCore,
    snapshot: &ModelSnapshot,
    ctx: &lite_core::experiment::PredictionContext,
    app: AppId,
    data: &DataSpec,
    cluster: &ClusterSpec,
    seed: u64,
    trace: Option<TraceId>,
) -> (Vec<RankedCandidate>, usize, usize) {
    let trace = match (trace, &shared.trace) {
        (Some(id), Some(_)) => Some(id),
        _ => None,
    };
    let confs = snapshot.acg.candidates_seeded(app, data, &ctx.env, snapshot.num_candidates, seed);

    // Cache pass: answer what this model version already predicted.
    let _tag = shared.prof_enter("serve.score");
    let cache_t0 = trace.map(|id| (id, epoch_ns()));
    let keys: Vec<CacheKey> = confs.iter().map(|c| CacheKey::new(app, data, cluster, c)).collect();
    let mut scores: Vec<Option<f64>> =
        keys.iter().map(|key| core.cache.get(key, snapshot.version)).collect();
    let cached = scores.iter().filter(|s| s.is_some()).count();
    if let Some((id, t0)) = cache_t0 {
        shared.trace_phase(id, Phase::CacheLookup, t0, epoch_ns(), 0);
    }

    // Batched NECS pass over the misses only. Batched scoring is
    // bit-identical to per-candidate scoring, so mixing cached and fresh
    // values cannot perturb the ranking. The Score phase is recorded even
    // on a full cache hit (a ~zero-length span) so every traced request
    // carries the complete phase set.
    let score_t0 = trace.map(|id| (id, epoch_ns()));
    let miss_confs: Vec<SparkConf> = confs
        .iter()
        .zip(scores.iter())
        .filter(|(_, s)| s.is_none())
        .map(|(c, _)| c.clone())
        .collect();
    let scored = miss_confs.len();
    shared.metrics.batch_size.record(scored as u64);
    if scored > 0 {
        let fresh = score_candidates(
            &snapshot.model,
            &snapshot.registry,
            ctx,
            cluster,
            &miss_confs,
            &shared.tracer,
        );
        // One fresh score per miss, in order; zipping the miss slots with
        // the fresh scores pairs them without asserting on the lengths.
        let miss_slots = scores.iter_mut().zip(keys.iter()).filter(|(slot, _)| slot.is_none());
        for ((slot, key), v) in miss_slots.zip(fresh) {
            core.cache.insert(*key, snapshot.version, v);
            *slot = Some(v);
        }
    }
    if let Some((id, t0)) = score_t0 {
        shared.trace_phase(id, Phase::Score, t0, epoch_ns(), 0);
    }

    let ranked: Vec<RankedCandidate> = confs
        .into_iter()
        .zip(scores)
        .filter_map(|(conf, s)| s.map(|predicted_s| RankedCandidate { conf, predicted_s }))
        .collect();
    (ranked, cached, scored)
}

// ---------------------------------------------------------------------------
// Updater

fn updater_loop(shared: Arc<Shared>) {
    let Backend::Snapshot(core) = &shared.backend else { return };
    // Alerts are edge-triggered: one count per transition into drift, not
    // one per 100 ms poll while the condition persists.
    let mut was_drifted = false;
    loop {
        // Wait until retraining is warranted — a full feedback batch OR
        // detected prediction drift with any feedback at all — or shutdown.
        let mut trigger = "batch";
        let batch: Vec<StageInstance> = {
            let mut feedback = core.feedback.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let drift = core.monitor.summary();
                shared.metrics.drift_mape.set(drift.mape);
                shared.metrics.drift_mean_error.set(drift.mean_error_s);
                shared.metrics.drift_inversion.set(drift.inversion_rate);
                shared.metrics.drift_samples.set(drift.samples as f64);
                if drift.drifted && !was_drifted {
                    shared.metrics.drift_alerts.inc();
                }
                was_drifted = drift.drifted;
                if feedback.len() >= shared.config.update_batch {
                    break std::mem::take(&mut *feedback);
                }
                if drift.drifted && !feedback.is_empty() {
                    trigger = "drift";
                    break std::mem::take(&mut *feedback);
                }
                let (guard, _timeout) = core
                    .feedback_cv
                    .wait_timeout(feedback, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                feedback = guard;
            }
        };
        if batch.is_empty() {
            continue;
        }

        // Clone-update-swap: readers keep serving the old version while the
        // fine-tune runs; the swap is the only synchronized step. Phase
        // spans recorded while the flag is up are stamped
        // `swap_in_progress`, so exemplars show swap-convoy tails.
        shared.swap_active.store(true, Ordering::Relaxed);
        let _tag = shared.prof_enter("serve.swap");
        let started = Instant::now();
        let old = core.slot.load();
        let next_version = old.version + 1;
        let faults = shared.config.faults.as_deref();
        // Injected swap latency: the whole pipeline stalls, but readers
        // keep answering from the pinned version — that is the point.
        if let Some(d) = faults.and_then(|f| f.fire_delay(FaultKind::SwapDelay, next_version)) {
            std::thread::sleep(d);
        }
        let mut span = shared.tracer.span("serve.swap");
        let src: Vec<&StageInstance> = core.source.instances.iter().collect();
        let tgt: Vec<&StageInstance> = batch.iter().collect();
        let updated = catch_unwind(AssertUnwindSafe(|| {
            if faults.is_some_and(|f| f.fires(FaultKind::UpdaterPanic, next_version)) {
                panic!("injected updater panic (chaos)");
            }
            let mut model = old.model.clone();
            adaptive_model_update(&mut model, &old.registry, &src, &tgt, &shared.config.amu);
            model
        }));
        let swap_failed = faults.is_some_and(|f| f.fires(FaultKind::SwapFail, next_version));
        let model = match updated {
            Ok(model) if !swap_failed => model,
            _ => {
                // Graceful degradation: the last-good snapshot stays
                // pinned, the batch is dropped (future feedback re-derives
                // its signal), and the gauge tells operators that
                // recommendations are served by a stale model.
                shared.degraded.store(true, Ordering::Release);
                shared.metrics.degraded.set(1.0);
                shared.metrics.updater_failures.inc();
                if span.is_recording() {
                    span.attr_u64("version", next_version);
                    span.attr_str("outcome", "degraded");
                }
                drop(span);
                shared.swap_active.store(false, Ordering::Relaxed);
                continue;
            }
        };
        let next = ModelSnapshot {
            version: next_version,
            model,
            acg: old.acg.clone(),
            registry: old.registry.clone(),
            num_candidates: old.num_candidates,
        };
        if span.is_recording() {
            span.attr_u64("version", next.version);
            span.attr_u64("feedback_instances", tgt.len() as u64);
            span.attr_f64("update_s", started.elapsed().as_secs_f64());
            span.attr_str("trigger", trigger);
            span.attr_str("outcome", "swapped");
        }
        drop(span);
        core.slot.swap(Arc::new(next));
        shared.swap_active.store(false, Ordering::Relaxed);
        shared.swap_count.fetch_add(1, Ordering::Release);
        shared.metrics.swaps.inc();
        // A successful swap ends any degradation: the serving model is
        // fresh again.
        shared.degraded.store(false, Ordering::Release);
        shared.metrics.degraded.set(0.0);
        // The new version deserves a fresh verdict: clear the drift window
        // so stale errors from the replaced model cannot re-trigger.
        core.monitor.reset();
        was_drifted = false;
    }
}

// ---------------------------------------------------------------------------
// Service + handle

/// The running service: owns the worker and updater threads.
pub struct Service {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// A cheap, cloneable client handle. Safe to share across threads; every
/// call enqueues a request and blocks on its reply.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl Service {
    /// Start the service over an initial model snapshot. `source` is the
    /// offline training dataset the Adaptive Model Update mixes with
    /// observed feedback.
    pub fn start(
        snapshot: ModelSnapshot,
        source: Arc<Dataset>,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Service {
        let cache = PredictionCache::new(
            config.cache_shards.max(1),
            config.cache_capacity_per_shard,
            registry.counter("serve.cache_hits"),
            registry.counter("serve.cache_misses"),
        );
        let monitor = DriftMonitor::new(config.drift.clone());
        let backend = Backend::Snapshot(SnapshotCore {
            slot: VersionedSlot::new(Arc::new(snapshot)),
            cache,
            feedback: Mutex::new(Vec::new()),
            feedback_cv: Condvar::new(),
            feedback_runs: AtomicUsize::new(0),
            source,
            monitor,
        });
        Service::start_backend(backend, config, registry, tracer, true)
    }

    /// Start the service over any [`Tuner`] implementation — LITE, the
    /// Bayesian-optimization or DDPG baselines, or random/default
    /// controls — behind the same handle, wire protocol, queue, and
    /// admission control as the snapshot path. There is no background
    /// updater: tuners learn inline from `observe`.
    pub fn start_tuner(
        tuner: Box<dyn Tuner>,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Service {
        let name = tuner.name();
        let backend = Backend::Tuner(TunerCore {
            tuner: RwLock::new(tuner),
            name,
            observed: AtomicU64::new(0),
        });
        Service::start_backend(backend, config, registry, tracer, false)
    }

    fn start_backend(
        backend: Backend,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
        updater: bool,
    ) -> Service {
        let metrics = ServeMetrics::new(registry);
        let trace = config.trace.as_ref().map(|t| TraceState {
            sink: TraceSink::new(t.capture_threshold.as_nanos() as u64, t.exemplar_top_k),
            hists: PhaseHistograms::register(registry),
        });
        let slo = config.slo.clone().map(|c| SloState {
            slo: Mutex::new(Slo::new(c)),
            metrics: SloMetrics::new(registry),
            wake: Condvar::new(),
            gate: Mutex::new(()),
        });
        // An enabled profiler runs for the service's lifetime: sampler
        // thread, obs.prof.* metrics, span-piggybacked tag frames, and the
        // explicit worker tags below (which keep flamegraphs meaningful
        // even when the service runs with a disabled tracer).
        let profiler = config.profiler.clone().filter(Profiler::is_enabled);
        if let Some(p) = &profiler {
            p.attach_metrics(registry);
            tracer.attach_profiler(p.clone());
            p.start();
        }
        // Shard plan: one queue per worker by default; an explicit shard
        // count is clamped to the worker count (a shard no worker drains
        // would swallow requests). Zero workers — queue tests — get one
        // shard so requests still enqueue. Each shard keeps the full
        // configured capacity, preserving single-shard admission-control
        // semantics exactly.
        let nshards = if config.workers == 0 {
            1
        } else if config.protocol.shards == 0 {
            config.workers
        } else {
            config.protocol.shards.min(config.workers)
        };
        metrics.shard_count.set(nshards as f64);
        let shards = (0..nshards).map(|_| BoundedQueue::new(config.queue_capacity)).collect();
        let response_cache = (config.protocol.response_cache > 0).then(|| {
            ResponseCache::new(
                nshards,
                config.protocol.response_cache,
                registry.counter("serve.shard.resp_hits"),
                registry.counter("serve.shard.resp_misses"),
            )
        });
        let shared = Arc::new(Shared {
            backend,
            shards,
            rr: AtomicUsize::new(0),
            response_cache,
            config,
            shutdown: AtomicBool::new(false),
            tracer,
            metrics,
            registry: registry.clone(),
            started: Instant::now(),
            swap_count: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            trace,
            slo,
            profiler,
            swap_active: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        for i in 0..shared.config.workers {
            let shared = shared.clone();
            let shard = i % nshards;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(shared, shard))
                    .expect("spawn worker"), // gate: allow(expect)
            );
        }
        if updater {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-updater".into())
                    .spawn(move || updater_loop(shared))
                    .expect("spawn updater"), // gate: allow(expect)
            );
        }
        if shared.slo.is_some() {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-slo".into())
                    .spawn(move || slo_loop(shared))
                    .expect("spawn slo evaluator"), // gate: allow(expect)
            );
        }
        Service { shared, threads }
    }

    /// A client handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { shared: self.shared.clone() }
    }

    /// Stop accepting requests, answer everything still queued with
    /// [`ServeError::ShuttingDown`], and join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for shard in &self.shared.shards {
            for job in shard.close() {
                job.request.reject(ServeError::ShuttingDown);
            }
        }
        if let Backend::Snapshot(core) = &self.shared.backend {
            core.feedback_cv.notify_all();
        }
        if let Some(state) = &self.shared.slo {
            state.wake.notify_all();
        }
        for t in self.threads.drain(..) {
            t.join().expect("serve thread panicked"); // gate: allow(expect)
        }
        if let Some(p) = &self.shared.profiler {
            p.stop();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl ServiceHandle {
    fn submit<T>(
        &self,
        shard: usize,
        request: Request,
        receiver: OneshotReceiver<Result<T, ServeError>>,
        deadline: Duration,
    ) -> Result<T, ServeError> {
        let now = Instant::now();
        let deadline = deadline.min(self.shared.config.max_deadline);
        let job = Job { request, enqueued: now, deadline: now + deadline };
        if let Err(refused) = self.shared.push(shard, job) {
            // The rejection flows through the reply channel, so oneshot
            // and callback replies see the same admission errors.
            let (err, job) = *refused;
            job.request.reject(err);
        }
        receiver.recv().unwrap_or(Err(ServeError::Internal("worker dropped reply")))
    }

    /// The wire-protocol knobs this service runs under (the TCP front-end
    /// reads pipelining depth and the binary-frame cap from here).
    pub(crate) fn protocol(&self) -> &ProtocolConfig {
        &self.shared.config.protocol
    }

    /// The single admission funnel every `recommend` flavor goes through:
    /// probe the inline response cache (untraced requests only), else
    /// stamp trace metadata, route to the affine shard, and enqueue. The
    /// outcome — including admission rejections — always arrives through
    /// `reply`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn submit_recommend(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
        deadline: Duration,
        trace: Option<TraceId>,
        reply: RecommendReply,
    ) {
        if trace.is_none() {
            if let Some(resp) = self.inline_recommend(app, data, cluster, k, seed) {
                reply.send(Ok(resp), 0, 0);
                return;
            }
        }
        let meta = match (trace, &self.shared.trace) {
            (Some(id), Some(_)) => Some(TraceMeta { id, enqueued_ns: epoch_ns() }),
            _ => None,
        };
        let key = ResponseKey::new(app, data, cluster, k, seed);
        let shard = self.shared.route_recommend(&key);
        let route_ns = meta.map(|_| epoch_ns());
        let request = Request::Recommend {
            app,
            data: *data,
            cluster: cluster.clone(),
            k,
            seed,
            trace: meta,
            reply,
        };
        let now = Instant::now();
        let deadline = deadline.min(self.shared.config.max_deadline);
        let job = Job { request, enqueued: now, deadline: now + deadline };
        match self.shared.push(shard, job) {
            Ok(depth) => {
                if let Some(meta) = meta {
                    // Enqueue covers admission bookkeeping up to routing;
                    // Dispatch covers the route + shard-queue handoff and
                    // carries the chosen shard in the depth slot.
                    let routed = route_ns.unwrap_or(meta.enqueued_ns);
                    self.shared.trace_phase(
                        meta.id,
                        Phase::Enqueue,
                        meta.enqueued_ns,
                        routed,
                        depth as u32,
                    );
                    self.shared.trace_phase(
                        meta.id,
                        Phase::Dispatch,
                        routed,
                        epoch_ns(),
                        shard as u32,
                    );
                }
            }
            Err(refused) => {
                let (err, job) = *refused;
                job.request.reject(err);
            }
        }
    }

    /// The inline fast path: answer an untraced repeat `recommend` from
    /// the whole-response cache on the calling thread, never touching a
    /// shard queue. `None` (cache off, tuner backend, miss, or shutdown)
    /// means the caller proceeds to enqueue as usual. The served answer is
    /// byte-identical to what a worker would produce for the same repeat:
    /// every candidate a worker would find in the prediction cache is
    /// re-credited as a hit, and the response reports them all as cached.
    fn inline_recommend(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
    ) -> Option<RecommendResponse> {
        let rc = self.shared.response_cache.as_ref()?;
        let Backend::Snapshot(core) = &self.shared.backend else { return None };
        if self.shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let t0 = Instant::now();
        let key = ResponseKey::new(app, data, cluster, k, seed);
        // The slot stamp doubles as the served version (see
        // `VersionedSlot::stamp`), so validity costs one atomic load.
        let mut resp = rc.get(&key, core.slot.stamp())?;
        let _tag = self.shared.prof_enter("serve.recommend");
        if let Some(f) = self.shared.config.faults.as_deref() {
            if let Some(d) = f.fire_delay(FaultKind::RequestDelay, f.next_key()) {
                std::thread::sleep(d);
            }
        }
        core.cache.credit_hits((resp.cached + resp.scored) as u64);
        resp.cached += resp.scored;
        resp.scored = 0;
        self.shared.metrics.cache_hit_rate.set(core.cache.hit_rate());
        self.shared.metrics.shard_inline.inc();
        self.shared.metrics.requests.inc();
        self.shared.metrics.latency.record_secs(t0.elapsed().as_secs_f64());
        Some(resp)
    }

    /// Route-and-enqueue an observation with a callback reply (the TCP
    /// front-end's shard-local path); admission rejections flow through
    /// the callback.
    pub(crate) fn submit_observe(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        conf: &SparkConf,
        result: Box<RunResult>,
        reply: ObserveReply,
    ) {
        let shard = self.shared.route_observe(app, data, cluster);
        let request = Request::Observe {
            app,
            data: *data,
            cluster: cluster.clone(),
            conf: conf.clone(),
            result,
            reply,
        };
        let now = Instant::now();
        let deadline = self.shared.config.default_deadline.min(self.shared.config.max_deadline);
        let job = Job { request, enqueued: now, deadline: now + deadline };
        if let Err(refused) = self.shared.push(shard, job) {
            let (err, job) = *refused;
            job.request.reject(err);
        }
    }

    /// Recommend top-`k` configurations with the default deadline.
    pub fn recommend(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
    ) -> Result<RecommendResponse, ServeError> {
        self.recommend_deadline(app, data, cluster, k, seed, self.shared.config.default_deadline)
    }

    /// Recommend with an explicit deadline (measured from enqueue, clamped
    /// to [`ServeConfig::max_deadline`]).
    pub fn recommend_deadline(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
        deadline: Duration,
    ) -> Result<RecommendResponse, ServeError> {
        let (tx, rx) = oneshot();
        self.submit_recommend(
            app,
            data,
            cluster,
            k,
            seed,
            deadline,
            None,
            RecommendReply::Oneshot(tx),
        );
        let (outcome, _, _) =
            rx.recv().unwrap_or((Err(ServeError::Internal("worker dropped reply")), 0, 0));
        outcome
    }

    /// Recommend under a trace id: phase spans (enqueue, shard dispatch,
    /// queue wait, dequeue, snapshot load, cache lookup, scoring, reply
    /// handoff) are recorded against `trace` when tracing is enabled; the
    /// enqueue span carries the observed queue depth and the dispatch and
    /// respond spans carry the serving shard. Behaves exactly like
    /// [`recommend_deadline`](ServiceHandle::recommend_deadline) when
    /// tracing is off. The caller owns request completion: call
    /// [`trace_complete`](ServiceHandle::trace_complete) with the
    /// end-to-end latency once the response has been delivered.
    #[allow(clippy::too_many_arguments)]
    pub fn recommend_traced(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
        deadline: Duration,
        trace: TraceId,
    ) -> Result<RecommendResponse, ServeError> {
        let (tx, rx) = oneshot();
        self.submit_recommend(
            app,
            data,
            cluster,
            k,
            seed,
            deadline,
            Some(trace),
            RecommendReply::Oneshot(tx),
        );
        let (outcome, sent_ns, shard) =
            rx.recv().unwrap_or((Err(ServeError::Internal("worker dropped reply")), 0, 0));
        if sent_ns != 0 && self.shared.trace.is_some() {
            // Respond covers the worker→submitter reply handoff; the depth
            // slot names the shard that served it, so respond-phase
            // attribution stays per-shard under sharded dispatch.
            self.shared.trace_phase(trace, Phase::Respond, sent_ns, epoch_ns(), shard);
        }
        outcome
    }

    /// The configured default per-request deadline.
    pub fn default_deadline(&self) -> Duration {
        self.shared.config.default_deadline
    }

    /// Whether tail-forensics tracing is enabled on this service.
    pub fn trace_enabled(&self) -> bool {
        self.shared.trace.is_some()
    }

    /// Record a request-path phase span against `trace` from the calling
    /// thread (the TCP front-end records its socket-side phases — accept,
    /// frame read, parse, serialize, write — through this). A no-op when
    /// tracing is disabled.
    pub fn trace_phase(&self, trace: TraceId, phase: Phase, start_ns: u64, end_ns: u64) {
        self.shared.trace_phase(trace, phase, start_ns, end_ns, 0);
    }

    /// Record the `Respond` reply-channel hop with the serving shard in
    /// the span's depth slot, so sharded dispatch stays attributable (the
    /// callback reply path records this from the worker's own thread).
    pub(crate) fn trace_respond(&self, trace: TraceId, start_ns: u64, end_ns: u64, shard: u32) {
        self.shared.trace_phase(trace, Phase::Respond, start_ns, end_ns, shard);
    }

    /// Declare a traced request finished with the given end-to-end latency;
    /// it is captured as a tail exemplar when it clears the configured
    /// threshold and the top-K floor. Returns whether it was captured
    /// (always `false` with tracing disabled).
    pub fn trace_complete(&self, trace: TraceId, total_ns: u64) -> bool {
        self.shared.trace.as_ref().is_some_and(|t| t.sink.complete(trace, total_ns))
    }

    /// Captured slow-request exemplars, slowest first (what the
    /// `tailtrace` admin op serves). Empty when tracing is disabled.
    pub fn tail_exemplars(&self) -> Vec<Exemplar> {
        self.shared.trace.as_ref().map(|t| t.sink.exemplars()).unwrap_or_default()
    }

    /// Lifetime `(completed, captured)` traced-request counts.
    pub fn tail_totals(&self) -> (u64, u64) {
        self.shared.trace.as_ref().map(|t| t.sink.totals()).unwrap_or((0, 0))
    }

    /// Per-phase latency summaries (`serve.phase.*`), in phase order.
    /// Empty when tracing is disabled.
    pub fn phase_summaries(&self) -> Vec<(&'static str, HistogramSummary)> {
        self.shared
            .trace
            .as_ref()
            .map(|t| t.hists.summaries().into_iter().map(|(p, s)| (p.name(), s)).collect())
            .unwrap_or_default()
    }

    /// Whether a burn-rate SLO is configured (the `slo` admin op).
    pub fn slo_enabled(&self) -> bool {
        self.shared.slo.is_some()
    }

    /// The configured SLO, if any.
    pub fn slo_config(&self) -> Option<SloConfig> {
        self.shared
            .slo
            .as_ref()
            .map(|s| s.slo.lock().unwrap_or_else(PoisonError::into_inner).config().clone())
    }

    /// The latest SLO evaluation (identity values before the first tick);
    /// `None` when no SLO is configured.
    pub fn slo_status(&self) -> Option<SloStatus> {
        self.shared
            .slo
            .as_ref()
            .map(|s| s.slo.lock().unwrap_or_else(PoisonError::into_inner).status().clone())
    }

    /// Close one SLO rollup bucket now and re-evaluate (what the
    /// evaluator thread does once per bucket width — tests configure a
    /// wide bucket and drive ticks through this instead of sleeping).
    pub fn slo_tick(&self) -> Option<SloStatus> {
        self.shared.slo_tick()
    }

    /// Whether an enabled sampling profiler runs with this service (the
    /// `profile` admin op).
    pub fn profiler_enabled(&self) -> bool {
        self.shared.profiler.is_some()
    }

    /// Profile summary with the `k` hottest tags; `None` when no profiler
    /// is configured.
    pub fn profile_report(&self, k: usize) -> Option<ProfReport> {
        self.shared.profiler.as_ref().map(|p| p.report(k))
    }

    /// Collapsed-stack ("folded") profile output; `None` when no profiler
    /// is configured.
    pub fn profile_folded(&self) -> Option<String> {
        self.shared.profiler.as_ref().map(|p| p.folded())
    }

    /// Whether a retrieval plane is configured (the `retrieve` op).
    pub fn retrieval_enabled(&self) -> bool {
        self.shared.config.retrieval.is_some()
    }

    /// Retrieve the top-`k` most similar historical runs for `app` and
    /// rank their scale-adapted configurations — the zero-execution
    /// cold-start path. Runs inline on the calling thread (an index
    /// search, not a scoring job; it never competes for the worker queue).
    pub fn retrieve(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
    ) -> Result<RetrieveResponse, ServeError> {
        self.retrieve_inner(Some(app), None, data, cluster, k, None)
    }

    /// [`retrieve`](ServiceHandle::retrieve) under a trace id: the index
    /// search and candidate ranking are recorded as one `score` phase span
    /// (the `index_search` cost folds under `score` in the taxonomy).
    pub fn retrieve_traced(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        trace: TraceId,
    ) -> Result<RetrieveResponse, ServeError> {
        self.retrieve_inner(Some(app), None, data, cluster, k, Some(trace))
    }

    /// Retrieve for raw application source the server has never seen
    /// (embedded through static analysis; ranked by scaled neighbor
    /// runtime since NECS has no templates for an anonymous app).
    pub fn retrieve_source(
        &self,
        source: &str,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        trace: Option<TraceId>,
    ) -> Result<RetrieveResponse, ServeError> {
        self.retrieve_inner(None, Some(source), data, cluster, k, trace)
    }

    fn retrieve_inner(
        &self,
        app: Option<AppId>,
        source: Option<&str>,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        trace: Option<TraceId>,
    ) -> Result<RetrieveResponse, ServeError> {
        let Some(rag) = &self.shared.config.retrieval else {
            return Err(ServeError::Internal("retrieval not enabled on this server"));
        };
        let metrics = &self.shared.metrics;
        metrics.retrieve_requests.inc();
        let t0 = Instant::now();
        let span_start = trace.and(self.shared.trace.as_ref()).map(|_| epoch_ns());
        let outcome = match (app, source) {
            (Some(app), _) => rag.retrieve(app, data, cluster, k),
            (None, Some(src)) => rag.retrieve_source(src, data, cluster, k),
            (None, None) => Err(TuneError::Unavailable("retrieve needs an app or source")),
        };
        let search_ns = t0.elapsed().as_nanos() as u64;
        let response = outcome.map(|neighbors| {
            let ranked = rag.rank(app, data, cluster, &neighbors, k.max(1));
            RetrieveResponse { ranked, index_len: rag.len(), search_ns, neighbors }
        });
        if let (Some(id), Some(start)) = (trace, span_start) {
            self.shared.trace_phase(id, Phase::Score, start, epoch_ns(), 0);
        }
        metrics.retrieve_latency.record(t0.elapsed().as_nanos() as u64);
        match response {
            Ok(resp) => {
                metrics.retrieve_neighbors.record(resp.neighbors.len() as u64);
                Ok(resp)
            }
            Err(TuneError::ColdApp(app)) => {
                metrics.retrieve_errors.inc();
                Err(ServeError::ColdApp(app))
            }
            Err(TuneError::Unavailable(why)) => {
                metrics.retrieve_errors.inc();
                Err(ServeError::Internal(why))
            }
        }
    }

    /// Report an executed configuration's outcome (paper Step 4a). Returns
    /// the feedback-buffer size after extraction (snapshot backend) or the
    /// total observed runs (tuner backend); reaching the configured batch
    /// wakes the background updater.
    pub fn observe(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        conf: &SparkConf,
        result: &RunResult,
    ) -> Result<usize, ServeError> {
        let (tx, rx) = oneshot();
        let request = Request::Observe {
            app,
            data: *data,
            cluster: cluster.clone(),
            conf: conf.clone(),
            result: Box::new(result.clone()),
            reply: ObserveReply::Oneshot(tx),
        };
        let shard = self.shared.route_observe(app, data, cluster);
        self.submit(shard, request, rx, self.shared.config.default_deadline)
    }

    /// Test support: occupy one worker for `dur`.
    pub fn stall(&self, dur: Duration) -> Result<(), ServeError> {
        let (tx, rx) = oneshot();
        // Stalls get a generous deadline: they exist to hold workers busy.
        let shard = self.shared.rr_shard();
        self.submit(shard, Request::Stall { dur, reply: tx }, rx, dur + Duration::from_secs(60))
    }

    /// Current model version (snapshot backend) or learning generation —
    /// observed runs — for tuner backends.
    pub fn version(&self) -> u64 {
        match &self.shared.backend {
            Backend::Snapshot(core) => core.slot.load().version,
            Backend::Tuner(core) => core.observed.load(Ordering::Acquire),
        }
    }

    /// Current model snapshot; `None` for tuner backends, which have no
    /// snapshot to expose.
    pub fn snapshot(&self) -> Option<Arc<ModelSnapshot>> {
        match &self.shared.backend {
            Backend::Snapshot(core) => Some(core.slot.load()),
            Backend::Tuner(_) => None,
        }
    }

    /// The serving backend: `"snapshot"`, or the tuner's name.
    pub fn backend(&self) -> &'static str {
        self.shared.backend.label()
    }

    /// The armed fault injector, if chaos hooks are enabled (the TCP
    /// front-end shares it for wire-level faults).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.shared.config.faults.clone()
    }

    /// Whether the service is currently degraded (serving a pinned stale
    /// snapshot after an updater failure).
    pub fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Acquire)
    }

    /// Completed background hot-swaps.
    pub fn swap_count(&self) -> u64 {
        self.shared.swap_count.load(Ordering::Acquire)
    }

    /// Feedback instances waiting for the next update (always 0 for tuner
    /// backends: they consume feedback inline).
    pub fn feedback_len(&self) -> usize {
        match &self.shared.backend {
            Backend::Snapshot(core) => {
                core.feedback.lock().unwrap_or_else(PoisonError::into_inner).len()
            }
            Backend::Tuner(_) => 0,
        }
    }

    /// Requests currently queued (summed across worker shards).
    pub fn queue_len(&self) -> usize {
        self.shared.queue_len()
    }

    /// Lifetime prediction-cache hit rate in `[0, 1]` (0 for tuner
    /// backends: they do not cache).
    pub fn cache_hit_rate(&self) -> f64 {
        match &self.shared.backend {
            Backend::Snapshot(core) => core.cache.hit_rate(),
            Backend::Tuner(_) => 0.0,
        }
    }

    /// Lifetime (cache hits, cache misses).
    pub fn cache_counts(&self) -> (u64, u64) {
        match &self.shared.backend {
            Backend::Snapshot(core) => (core.cache.hits(), core.cache.misses()),
            Backend::Tuner(_) => (0, 0),
        }
    }

    /// Rolling prediction-drift statistics over recent observed feedback
    /// (empty for tuner backends).
    pub fn drift(&self) -> DriftSummary {
        match &self.shared.backend {
            Backend::Snapshot(core) => core.monitor.summary(),
            Backend::Tuner(_) => DriftSummary {
                samples: 0,
                mape: 0.0,
                mean_error_s: 0.0,
                inversion_rate: 0.0,
                drifted: false,
            },
        }
    }

    /// A point-in-time operational summary (what the `stats` admin op
    /// serves).
    pub fn stats(&self) -> ServiceStats {
        let (cache_hits, cache_misses) = self.cache_counts();
        ServiceStats {
            uptime_s: self.shared.started.elapsed().as_secs_f64(),
            version: self.version(),
            swap_count: self.swap_count(),
            queue_depth: self.queue_len(),
            queue_capacity: self.shared.config.queue_capacity,
            workers: self.shared.config.workers,
            feedback_len: self.feedback_len(),
            update_batch: self.shared.config.update_batch,
            requests: self.shared.metrics.requests.value(),
            cache_hit_rate: self.cache_hit_rate(),
            cache_hits,
            cache_misses,
            drift: self.drift(),
            degraded: self.degraded(),
            backend: self.backend(),
            updater_failures: self.shared.metrics.updater_failures.value(),
            fallbacks: self.shared.metrics.fallbacks.value(),
        }
    }

    /// Prometheus text exposition of the service's metrics registry (what
    /// the `metrics` admin op serves). Includes every metric registered in
    /// the registry the service was started with. With tracing enabled,
    /// each `serve.phase.*_ns` histogram is annotated with a `# trace_id`
    /// comment naming the captured exemplar whose span in that phase was
    /// slowest — the scrape-side link from a latency bucket back to a full
    /// slow-request trace.
    pub fn prometheus(&self) -> String {
        let snapshot = self.shared.registry.snapshot();
        let Some(tr) = &self.shared.trace else {
            return lite_obs::prometheus_text(&snapshot);
        };
        // Slowest captured span per phase, as (metric, trace id, ns).
        let mut worst: [Option<(u64, u64)>; Phase::COUNT] = [None; Phase::COUNT];
        for ex in tr.sink.exemplars() {
            for span in &ex.spans {
                let slot = &mut worst[span.phase as usize];
                let d = span.duration_ns();
                if slot.is_none_or(|(_, best)| d > best) {
                    *slot = Some((span.trace_id, d));
                }
            }
        }
        let exemplars: Vec<lite_obs::PromExemplar> = Phase::ALL
            .iter()
            .filter_map(|p| worst[*p as usize].map(|(id, d)| (p.metric_name().to_string(), id, d)))
            .collect();
        lite_obs::prometheus_text_with_exemplars(&snapshot, &exemplars)
    }

    /// Finished spans rendered as Chrome trace-event JSON (what the
    /// `trace` admin op serves). Non-destructive: spans stay buffered in
    /// the tracer. Empty when the service runs with a disabled tracer.
    pub fn trace_json(&self) -> lite_obs::Json {
        lite_obs::chrome_trace(&self.shared.tracer.finished())
    }

    /// Like [`ServiceHandle::trace_json`], but bounded: when the rendered
    /// document would exceed `max_bytes`, the oldest spans are dropped
    /// until it fits (a long-lived service accumulates more spans than a
    /// single admin response frame can carry). Returns the trace and the
    /// number of spans dropped. Children of a dropped parent are promoted
    /// to roots of their own track.
    pub fn trace_json_capped(&self, max_bytes: usize) -> (lite_obs::Json, usize) {
        // Clone only a bounded tail out of the tracer: a span's B/E event
        // pair never serializes under ~128 bytes, so anything past
        // `max_bytes / 128` spans cannot fit and copying it would only
        // burn time on records about to be thrown away.
        let max_spans = (max_bytes / 128).max(16);
        let (mut spans, mut dropped) = self.shared.tracer.finished_tail(max_spans);
        loop {
            let trace = lite_obs::chrome_trace(&spans);
            let rendered = trace.render().len();
            if rendered <= max_bytes || spans.is_empty() {
                return (trace, dropped);
            }
            // Keep the newest spans, scaled to the byte budget with 10%
            // slack; always drop at least one so the loop terminates.
            let keep = (spans.len() * max_bytes / rendered).saturating_sub(spans.len() / 10);
            let keep = keep.min(spans.len() - 1);
            dropped += spans.len() - keep;
            spans.drain(..spans.len() - keep);
        }
    }
}

/// Point-in-time operational summary of a running service.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Seconds since [`Service::start`].
    pub uptime_s: f64,
    /// Currently served model version.
    pub version: u64,
    /// Completed background hot-swaps.
    pub swap_count: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Feedback instances waiting for the next update.
    pub feedback_len: usize,
    /// Feedback instances that trigger a batch-full update.
    pub update_batch: usize,
    /// Requests answered by workers so far.
    pub requests: u64,
    /// Lifetime prediction-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Lifetime cache hits.
    pub cache_hits: u64,
    /// Lifetime cache misses.
    pub cache_misses: u64,
    /// Rolling prediction-drift statistics.
    pub drift: DriftSummary,
    /// Whether the service is serving a pinned stale snapshot after an
    /// updater failure.
    pub degraded: bool,
    /// Serving backend: `"snapshot"` or a tuner name.
    pub backend: &'static str,
    /// Background updates that failed (panic or failed swap).
    pub updater_failures: u64,
    /// Recommendations answered by the default-configuration fallback.
    pub fallbacks: u64,
}

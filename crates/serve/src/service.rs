//! The tuning service: a worker pool over a bounded queue, plus the
//! background updater that hot-swaps model versions.
//!
//! Admission control is explicit. The queue has a fixed capacity; a full
//! queue rejects new requests with [`ServeError::Overloaded`] at enqueue
//! time (load-shedding) instead of letting latency grow without bound.
//! Every request carries a deadline; a request whose deadline passed while
//! it sat in the queue is answered [`ServeError::DeadlineExceeded`] without
//! being scored. Workers never block on the updater: they read the model
//! through a [`SlotReader`](crate::slot::SlotReader), so a swap costs a
//! request one mutex acquisition at most, once.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lite_core::amu::{adaptive_model_update, AmuConfig};
use lite_core::experiment::{extract_stage_instances, Dataset};
use lite_core::features::StageInstance;
use lite_core::recommend::{score_candidates, RankedCandidate};
use lite_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::SparkConf;
use lite_sparksim::result::RunResult;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

use crate::cache::{CacheKey, PredictionCache};
use crate::monitor::{DriftConfig, DriftMonitor, DriftSummary};
use crate::slot::VersionedSlot;
use crate::snapshot::ModelSnapshot;

// ---------------------------------------------------------------------------
// Errors and results

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue was full; the request was shed at admission.
    Overloaded,
    /// The deadline passed before a worker picked the request up.
    DeadlineExceeded,
    /// The app's templates are not in the serving snapshot; cold-start
    /// instrumentation mutates the registry and is an offline operation.
    ColdApp(AppId),
    /// The service is shutting down.
    ShuttingDown,
    /// A worker disappeared without answering (a bug, surfaced not hung).
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full (load shed)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded in queue"),
            ServeError::ColdApp(app) => write!(f, "app {app} not in serving snapshot (cold start)"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::Internal(msg) => write!(f, "internal serve error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served recommendation.
#[derive(Debug, Clone)]
pub struct RecommendResponse {
    /// Model version that produced every score in `ranked`.
    pub version: u64,
    /// Top-k candidates, best first.
    pub ranked: Vec<RankedCandidate>,
    /// Candidates answered from the prediction cache.
    pub cached: usize,
    /// Candidates scored through the batched NECS pass.
    pub scored: usize,
}

// ---------------------------------------------------------------------------
// Configuration

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering requests. `0` spawns no workers (useful
    /// for queue tests: requests enqueue but nothing consumes them).
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied by [`ServiceHandle::recommend`] and friends when
    /// the caller does not pass one explicitly.
    pub default_deadline: Duration,
    /// Observed feedback instances that trigger a background model update.
    pub update_batch: usize,
    /// Prediction-cache shards.
    pub cache_shards: usize,
    /// Prediction-cache entries per shard (`0` disables caching).
    pub cache_capacity_per_shard: usize,
    /// Adaptive Model Update hyper-parameters for background swaps.
    pub amu: AmuConfig,
    /// Prediction-drift thresholds. When the rolling error over observed
    /// feedback exceeds them, the updater retrains on whatever feedback
    /// has accumulated instead of waiting for a full `update_batch`.
    pub drift: DriftConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(2),
            update_batch: 50,
            cache_shards: 8,
            cache_capacity_per_shard: 512,
            amu: AmuConfig::default(),
            drift: DriftConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Oneshot reply channel

struct OneshotInner<T> {
    state: Mutex<(Option<T>, bool)>, // (value, sender gone)
    cv: Condvar,
}

pub(crate) struct OneshotSender<T> {
    inner: Arc<OneshotInner<T>>,
}

pub(crate) struct OneshotReceiver<T> {
    inner: Arc<OneshotInner<T>>,
}

pub(crate) fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Arc::new(OneshotInner { state: Mutex::new((None, false)), cv: Condvar::new() });
    (OneshotSender { inner: inner.clone() }, OneshotReceiver { inner })
}

impl<T> OneshotSender<T> {
    pub(crate) fn send(self, value: T) {
        let mut state = self.inner.state.lock().expect("oneshot poisoned");
        state.0 = Some(value);
        // Drop (below) flips the closed flag and notifies.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("oneshot poisoned");
        state.1 = true;
        drop(state);
        self.inner.cv.notify_all();
    }
}

impl<T> OneshotReceiver<T> {
    /// Block until the worker replies. `None` means the sender was dropped
    /// without replying.
    pub(crate) fn recv(self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("oneshot poisoned");
        while state.0.is_none() && !state.1 {
            state = self.inner.cv.wait(state).expect("oneshot poisoned");
        }
        state.0.take()
    }
}

// ---------------------------------------------------------------------------
// Bounded queue

enum PushError {
    Full,
    Closed,
}

struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: admission control happens here, not by blocking
    /// the producer.
    fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocking pop; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<(T, usize)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue poisoned");
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Close the queue, wake all waiters, and return whatever was still
    /// queued so the caller can answer it.
    fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        let drained = inner.items.drain(..).collect();
        drop(inner);
        self.cv.notify_all();
        drained
    }
}

// ---------------------------------------------------------------------------
// Requests

enum Request {
    Recommend {
        app: AppId,
        data: DataSpec,
        cluster: ClusterSpec,
        k: usize,
        seed: u64,
        reply: OneshotSender<Result<RecommendResponse, ServeError>>,
    },
    Observe {
        app: AppId,
        data: DataSpec,
        cluster: ClusterSpec,
        conf: SparkConf,
        result: Box<RunResult>,
        reply: OneshotSender<Result<usize, ServeError>>,
    },
    /// Test support: occupy a worker for `dur`. Lets tests fill the queue
    /// deterministically without racing real work.
    Stall { dur: Duration, reply: OneshotSender<Result<(), ServeError>> },
}

impl Request {
    /// Answer a request that will never reach a worker.
    fn reject(self, err: ServeError) {
        match self {
            Request::Recommend { reply, .. } => reply.send(Err(err)),
            Request::Observe { reply, .. } => reply.send(Err(err)),
            Request::Stall { reply, .. } => reply.send(Err(err)),
        }
    }
}

struct Job {
    request: Request,
    enqueued: Instant,
    deadline: Instant,
}

// ---------------------------------------------------------------------------
// Shared state and metrics

struct ServeMetrics {
    queue_depth: Gauge,
    shed: Counter,
    expired: Counter,
    requests: Counter,
    swaps: Counter,
    latency: Histogram,
    batch_size: Histogram,
    cache_hit_rate: Gauge,
    drift_mape: Gauge,
    drift_mean_error: Gauge,
    drift_inversion: Gauge,
    drift_samples: Gauge,
    drift_alerts: Counter,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            queue_depth: registry.gauge("serve.queue_depth"),
            shed: registry.counter("serve.shed"),
            expired: registry.counter("serve.expired"),
            requests: registry.counter("serve.requests"),
            swaps: registry.counter("serve.swaps"),
            latency: registry.histogram("serve.latency_ns"),
            batch_size: registry.histogram("serve.batch_size"),
            cache_hit_rate: registry.gauge("serve.cache_hit_rate"),
            drift_mape: registry.gauge("serve.drift.mape"),
            drift_mean_error: registry.gauge("serve.drift.mean_error_s"),
            drift_inversion: registry.gauge("serve.drift.inversion_rate"),
            drift_samples: registry.gauge("serve.drift.samples"),
            drift_alerts: registry.counter("serve.drift.alerts"),
        }
    }
}

struct Shared {
    slot: VersionedSlot<ModelSnapshot>,
    queue: BoundedQueue<Job>,
    cache: PredictionCache,
    feedback: Mutex<Vec<StageInstance>>,
    feedback_cv: Condvar,
    feedback_runs: AtomicUsize,
    source: Arc<Dataset>,
    config: ServeConfig,
    shutdown: AtomicBool,
    tracer: Tracer,
    metrics: ServeMetrics,
    /// The registry the service's metrics live in (for admin exposition).
    registry: Registry,
    monitor: DriftMonitor,
    started: Instant,
    /// Swaps that finished (the slot stamp, mirrored for cheap reads).
    swap_count: AtomicU64,
}

// ---------------------------------------------------------------------------
// Worker

fn worker_loop(shared: Arc<Shared>) {
    let mut reader = shared.slot.reader();
    while let Some((job, depth)) = shared.queue.pop() {
        shared.metrics.queue_depth.set(depth as f64);
        let now = Instant::now();
        if now > job.deadline {
            shared.metrics.expired.inc();
            job.request.reject(ServeError::DeadlineExceeded);
            continue;
        }
        match job.request {
            Request::Recommend { app, data, cluster, k, seed, reply } => {
                let snapshot = shared.slot.load_with(&mut reader).clone();
                let mut span = shared.tracer.span("serve.request");
                let outcome = serve_recommend(&shared, &snapshot, app, &data, &cluster, k, seed);
                if span.is_recording() {
                    span.attr_str("app", &app.to_string());
                    span.attr_u64("version", snapshot.version);
                    span.attr_f64("queue_wait_s", (now - job.enqueued).as_secs_f64());
                    match &outcome {
                        Ok(resp) => {
                            span.attr_u64("cached", resp.cached as u64);
                            span.attr_u64("scored", resp.scored as u64);
                        }
                        Err(err) => span.attr_str("error", &err.to_string()),
                    }
                }
                drop(span);
                shared.metrics.requests.inc();
                shared.metrics.latency.record_secs(job.enqueued.elapsed().as_secs_f64());
                shared.metrics.cache_hit_rate.set(shared.cache.hit_rate());
                reply.send(outcome);
            }
            Request::Observe { app, data, cluster, conf, result, reply } => {
                let snapshot = shared.slot.load_with(&mut reader).clone();
                // Feed the drift monitor: what did *this* model version
                // predict for the configuration that just ran? Failed runs
                // carry no meaningful runtime and are skipped.
                if result.failure.is_none() {
                    if let Some(pred) = predict_one(&shared, &snapshot, app, &data, &cluster, &conf)
                    {
                        shared.monitor.record(pred, result.total_time_s);
                    }
                }
                let run_id = usize::MAX - shared.feedback_runs.fetch_add(1, Ordering::Relaxed);
                let mut extracted = Vec::new();
                extract_stage_instances(
                    &snapshot.registry,
                    app,
                    &conf,
                    &data,
                    &cluster,
                    &result,
                    run_id,
                    &mut extracted,
                );
                let total = {
                    let mut feedback = shared.feedback.lock().expect("feedback poisoned");
                    feedback.extend(extracted);
                    feedback.len()
                };
                if total >= shared.config.update_batch {
                    shared.feedback_cv.notify_one();
                }
                shared.metrics.requests.inc();
                shared.metrics.latency.record_secs(job.enqueued.elapsed().as_secs_f64());
                reply.send(Ok(total));
            }
            Request::Stall { dur, reply } => {
                std::thread::sleep(dur);
                reply.send(Ok(()));
            }
        }
    }
}

/// Predict the runtime of one configuration under `snapshot`, answering
/// from the prediction cache when the pair was already scored at this
/// version (the common case: `observe` usually follows a `recommend` for
/// the same context). `None` when the app is cold in the snapshot.
fn predict_one(
    shared: &Shared,
    snapshot: &ModelSnapshot,
    app: AppId,
    data: &DataSpec,
    cluster: &ClusterSpec,
    conf: &SparkConf,
) -> Option<f64> {
    let key = CacheKey::new(app, data, cluster, conf);
    if let Some(v) = shared.cache.get(&key, snapshot.version) {
        return Some(v);
    }
    let ctx = snapshot.warm_context(app, data, cluster)?;
    let scores = score_candidates(
        &snapshot.model,
        &snapshot.registry,
        &ctx,
        cluster,
        std::slice::from_ref(conf),
        &shared.tracer,
    );
    let v = *scores.first()?;
    shared.cache.insert(key, snapshot.version, v);
    Some(v)
}

fn serve_recommend(
    shared: &Shared,
    snapshot: &ModelSnapshot,
    app: AppId,
    data: &DataSpec,
    cluster: &ClusterSpec,
    k: usize,
    seed: u64,
) -> Result<RecommendResponse, ServeError> {
    let Some(ctx) = snapshot.warm_context(app, data, cluster) else {
        return Err(ServeError::ColdApp(app));
    };
    let confs = snapshot.acg.candidates_seeded(app, data, &ctx.env, snapshot.num_candidates, seed);

    // Cache pass: answer what this model version already predicted.
    let keys: Vec<CacheKey> = confs.iter().map(|c| CacheKey::new(app, data, cluster, c)).collect();
    let mut scores: Vec<Option<f64>> =
        keys.iter().map(|key| shared.cache.get(key, snapshot.version)).collect();
    let cached = scores.iter().filter(|s| s.is_some()).count();

    // Batched NECS pass over the misses only. Batched scoring is
    // bit-identical to per-candidate scoring, so mixing cached and fresh
    // values cannot perturb the ranking.
    let miss_confs: Vec<SparkConf> = confs
        .iter()
        .zip(scores.iter())
        .filter(|(_, s)| s.is_none())
        .map(|(c, _)| c.clone())
        .collect();
    let scored = miss_confs.len();
    shared.metrics.batch_size.record(scored as u64);
    if scored > 0 {
        let fresh = score_candidates(
            &snapshot.model,
            &snapshot.registry,
            &ctx,
            cluster,
            &miss_confs,
            &shared.tracer,
        );
        let mut fresh = fresh.into_iter();
        for (slot, key) in scores.iter_mut().zip(keys.iter()) {
            if slot.is_none() {
                let v = fresh.next().expect("one score per miss");
                shared.cache.insert(*key, snapshot.version, v);
                *slot = Some(v);
            }
        }
    }

    let mut ranked: Vec<RankedCandidate> = confs
        .into_iter()
        .zip(scores)
        .map(|(conf, s)| RankedCandidate { conf, predicted_s: s.expect("every candidate scored") })
        .collect();
    ranked.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
    ranked.truncate(k.max(1));
    Ok(RecommendResponse { version: snapshot.version, ranked, cached, scored })
}

// ---------------------------------------------------------------------------
// Updater

fn updater_loop(shared: Arc<Shared>) {
    // Alerts are edge-triggered: one count per transition into drift, not
    // one per 100 ms poll while the condition persists.
    let mut was_drifted = false;
    loop {
        // Wait until retraining is warranted — a full feedback batch OR
        // detected prediction drift with any feedback at all — or shutdown.
        let mut trigger = "batch";
        let batch: Vec<StageInstance> = {
            let mut feedback = shared.feedback.lock().expect("feedback poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let drift = shared.monitor.summary();
                shared.metrics.drift_mape.set(drift.mape);
                shared.metrics.drift_mean_error.set(drift.mean_error_s);
                shared.metrics.drift_inversion.set(drift.inversion_rate);
                shared.metrics.drift_samples.set(drift.samples as f64);
                if drift.drifted && !was_drifted {
                    shared.metrics.drift_alerts.inc();
                }
                was_drifted = drift.drifted;
                if feedback.len() >= shared.config.update_batch {
                    break std::mem::take(&mut *feedback);
                }
                if drift.drifted && !feedback.is_empty() {
                    trigger = "drift";
                    break std::mem::take(&mut *feedback);
                }
                let (guard, _timeout) = shared
                    .feedback_cv
                    .wait_timeout(feedback, Duration::from_millis(100))
                    .expect("feedback poisoned");
                feedback = guard;
            }
        };
        if batch.is_empty() {
            continue;
        }

        // Clone-update-swap: readers keep serving the old version while the
        // fine-tune runs; the swap is the only synchronized step.
        let started = Instant::now();
        let old = shared.slot.load();
        let mut span = shared.tracer.span("serve.swap");
        let mut model = old.model.clone();
        let src: Vec<&StageInstance> = shared.source.instances.iter().collect();
        let tgt: Vec<&StageInstance> = batch.iter().collect();
        adaptive_model_update(&mut model, &old.registry, &src, &tgt, &shared.config.amu);
        let next = ModelSnapshot {
            version: old.version + 1,
            model,
            acg: old.acg.clone(),
            registry: old.registry.clone(),
            num_candidates: old.num_candidates,
        };
        if span.is_recording() {
            span.attr_u64("version", next.version);
            span.attr_u64("feedback_instances", tgt.len() as u64);
            span.attr_f64("update_s", started.elapsed().as_secs_f64());
            span.attr_str("trigger", trigger);
        }
        drop(span);
        shared.slot.swap(Arc::new(next));
        shared.swap_count.fetch_add(1, Ordering::Release);
        shared.metrics.swaps.inc();
        // The new version deserves a fresh verdict: clear the drift window
        // so stale errors from the replaced model cannot re-trigger.
        shared.monitor.reset();
        was_drifted = false;
    }
}

// ---------------------------------------------------------------------------
// Service + handle

/// The running service: owns the worker and updater threads.
pub struct Service {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// A cheap, cloneable client handle. Safe to share across threads; every
/// call enqueues a request and blocks on its reply.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl Service {
    /// Start the service over an initial model snapshot. `source` is the
    /// offline training dataset the Adaptive Model Update mixes with
    /// observed feedback.
    pub fn start(
        snapshot: ModelSnapshot,
        source: Arc<Dataset>,
        config: ServeConfig,
        registry: &Registry,
        tracer: Tracer,
    ) -> Service {
        let metrics = ServeMetrics::new(registry);
        let cache = PredictionCache::new(
            config.cache_shards.max(1),
            config.cache_capacity_per_shard,
            registry.counter("serve.cache_hits"),
            registry.counter("serve.cache_misses"),
        );
        let monitor = DriftMonitor::new(config.drift.clone());
        let shared = Arc::new(Shared {
            slot: VersionedSlot::new(Arc::new(snapshot)),
            queue: BoundedQueue::new(config.queue_capacity),
            cache,
            feedback: Mutex::new(Vec::new()),
            feedback_cv: Condvar::new(),
            feedback_runs: AtomicUsize::new(0),
            source,
            config,
            shutdown: AtomicBool::new(false),
            tracer,
            metrics,
            registry: registry.clone(),
            monitor,
            started: Instant::now(),
            swap_count: AtomicU64::new(0),
        });
        let mut threads = Vec::new();
        for i in 0..shared.config.workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker"),
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-updater".into())
                    .spawn(move || updater_loop(shared))
                    .expect("spawn updater"),
            );
        }
        Service { shared, threads }
    }

    /// A client handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { shared: self.shared.clone() }
    }

    /// Stop accepting requests, answer everything still queued with
    /// [`ServeError::ShuttingDown`], and join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for job in self.shared.queue.close() {
            job.request.reject(ServeError::ShuttingDown);
        }
        self.shared.feedback_cv.notify_all();
        for t in self.threads.drain(..) {
            t.join().expect("serve thread panicked");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl ServiceHandle {
    fn submit<T>(
        &self,
        request: Request,
        receiver: OneshotReceiver<Result<T, ServeError>>,
        deadline: Duration,
    ) -> Result<T, ServeError> {
        let now = Instant::now();
        let job = Job { request, enqueued: now, deadline: now + deadline };
        match self.shared.queue.try_push(job) {
            Ok(depth) => self.shared.metrics.queue_depth.set(depth as f64),
            Err(PushError::Full) => {
                self.shared.metrics.shed.inc();
                return Err(ServeError::Overloaded);
            }
            Err(PushError::Closed) => return Err(ServeError::ShuttingDown),
        }
        receiver.recv().unwrap_or(Err(ServeError::Internal("worker dropped reply")))
    }

    /// Recommend top-`k` configurations with the default deadline.
    pub fn recommend(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
    ) -> Result<RecommendResponse, ServeError> {
        self.recommend_deadline(app, data, cluster, k, seed, self.shared.config.default_deadline)
    }

    /// Recommend with an explicit deadline (measured from enqueue).
    pub fn recommend_deadline(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
        deadline: Duration,
    ) -> Result<RecommendResponse, ServeError> {
        let (tx, rx) = oneshot();
        let request =
            Request::Recommend { app, data: *data, cluster: cluster.clone(), k, seed, reply: tx };
        self.submit(request, rx, deadline)
    }

    /// Report an executed configuration's outcome (paper Step 4a). Returns
    /// the feedback-buffer size after extraction; reaching the configured
    /// batch wakes the background updater.
    pub fn observe(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        conf: &SparkConf,
        result: &RunResult,
    ) -> Result<usize, ServeError> {
        let (tx, rx) = oneshot();
        let request = Request::Observe {
            app,
            data: *data,
            cluster: cluster.clone(),
            conf: conf.clone(),
            result: Box::new(result.clone()),
            reply: tx,
        };
        self.submit(request, rx, self.shared.config.default_deadline)
    }

    /// Test support: occupy one worker for `dur`.
    pub fn stall(&self, dur: Duration) -> Result<(), ServeError> {
        let (tx, rx) = oneshot();
        // Stalls get a generous deadline: they exist to hold workers busy.
        self.submit(Request::Stall { dur, reply: tx }, rx, dur + Duration::from_secs(60))
    }

    /// Current model version.
    pub fn version(&self) -> u64 {
        self.shared.slot.load().version
    }

    /// Current model snapshot.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.shared.slot.load()
    }

    /// Completed background hot-swaps.
    pub fn swap_count(&self) -> u64 {
        self.shared.swap_count.load(Ordering::Acquire)
    }

    /// Feedback instances waiting for the next update.
    pub fn feedback_len(&self) -> usize {
        self.shared.feedback.lock().expect("feedback poisoned").len()
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Lifetime prediction-cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        self.shared.cache.hit_rate()
    }

    /// Lifetime (cache hits, cache misses).
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.shared.cache.hits(), self.shared.cache.misses())
    }

    /// Rolling prediction-drift statistics over recent observed feedback.
    pub fn drift(&self) -> DriftSummary {
        self.shared.monitor.summary()
    }

    /// A point-in-time operational summary (what the `stats` admin op
    /// serves).
    pub fn stats(&self) -> ServiceStats {
        let (cache_hits, cache_misses) = self.cache_counts();
        ServiceStats {
            uptime_s: self.shared.started.elapsed().as_secs_f64(),
            version: self.version(),
            swap_count: self.swap_count(),
            queue_depth: self.queue_len(),
            queue_capacity: self.shared.config.queue_capacity,
            workers: self.shared.config.workers,
            feedback_len: self.feedback_len(),
            update_batch: self.shared.config.update_batch,
            requests: self.shared.metrics.requests.value(),
            cache_hit_rate: self.cache_hit_rate(),
            cache_hits,
            cache_misses,
            drift: self.drift(),
        }
    }

    /// Prometheus text exposition of the service's metrics registry (what
    /// the `metrics` admin op serves). Includes every metric registered in
    /// the registry the service was started with.
    pub fn prometheus(&self) -> String {
        lite_obs::prometheus_text(&self.shared.registry.snapshot())
    }

    /// Finished spans rendered as Chrome trace-event JSON (what the
    /// `trace` admin op serves). Non-destructive: spans stay buffered in
    /// the tracer. Empty when the service runs with a disabled tracer.
    pub fn trace_json(&self) -> lite_obs::Json {
        lite_obs::chrome_trace(&self.shared.tracer.finished())
    }

    /// Like [`ServiceHandle::trace_json`], but bounded: when the rendered
    /// document would exceed `max_bytes`, the oldest spans are dropped
    /// until it fits (a long-lived service accumulates more spans than a
    /// single admin response frame can carry). Returns the trace and the
    /// number of spans dropped. Children of a dropped parent are promoted
    /// to roots of their own track.
    pub fn trace_json_capped(&self, max_bytes: usize) -> (lite_obs::Json, usize) {
        // Clone only a bounded tail out of the tracer: a span's B/E event
        // pair never serializes under ~128 bytes, so anything past
        // `max_bytes / 128` spans cannot fit and copying it would only
        // burn time on records about to be thrown away.
        let max_spans = (max_bytes / 128).max(16);
        let (mut spans, mut dropped) = self.shared.tracer.finished_tail(max_spans);
        loop {
            let trace = lite_obs::chrome_trace(&spans);
            let rendered = trace.render().len();
            if rendered <= max_bytes || spans.is_empty() {
                return (trace, dropped);
            }
            // Keep the newest spans, scaled to the byte budget with 10%
            // slack; always drop at least one so the loop terminates.
            let keep = (spans.len() * max_bytes / rendered).saturating_sub(spans.len() / 10);
            let keep = keep.min(spans.len() - 1);
            dropped += spans.len() - keep;
            spans.drain(..spans.len() - keep);
        }
    }
}

/// Point-in-time operational summary of a running service.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Seconds since [`Service::start`].
    pub uptime_s: f64,
    /// Currently served model version.
    pub version: u64,
    /// Completed background hot-swaps.
    pub swap_count: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// Worker threads.
    pub workers: usize,
    /// Feedback instances waiting for the next update.
    pub feedback_len: usize,
    /// Feedback instances that trigger a batch-full update.
    pub update_batch: usize,
    /// Requests answered by workers so far.
    pub requests: u64,
    /// Lifetime prediction-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Lifetime cache hits.
    pub cache_hits: u64,
    /// Lifetime cache misses.
    pub cache_misses: u64,
    /// Rolling prediction-drift statistics.
    pub drift: DriftSummary,
}

//! The versioned model slot: lock-free steady-state reads, locked swaps.
//!
//! `std` has no atomic `Arc` swap, so the slot pairs a `Mutex<Arc<T>>`
//! with an atomic change stamp. Writers (the single updater thread, once
//! per model swap) take the lock; readers keep a [`SlotReader`] cache and
//! re-enter the lock **only when the stamp moved** — in steady state a
//! read is one atomic load and a borrow of the cached `Arc`, so request
//! threads never contend with each other or with an in-flight update.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A slot holding an immutable snapshot behind an atomic change stamp.
pub struct VersionedSlot<T> {
    stamp: AtomicU64,
    value: Mutex<Arc<T>>,
}

/// A reader's cached view of a [`VersionedSlot`]. One per worker thread.
pub struct SlotReader<T> {
    cached: Arc<T>,
    seen: u64,
}

impl<T> VersionedSlot<T> {
    /// Wrap an initial snapshot.
    pub fn new(initial: Arc<T>) -> VersionedSlot<T> {
        VersionedSlot { stamp: AtomicU64::new(0), value: Mutex::new(initial) }
    }

    /// Number of swaps so far. Doubles as a lock-free cache-validity
    /// token: for snapshots whose own version counter starts equal to the
    /// stamp and moves in lockstep with swaps (the serve plane's model
    /// snapshots do), this reads the served version without taking the
    /// lock — the inline fast path probes response-cache entries against
    /// it instead of cloning the `Arc`.
    pub fn stamp(&self) -> u64 {
        self.stamp.load(Ordering::Acquire)
    }

    /// Clone the current snapshot (takes the lock briefly; use a
    /// [`SlotReader`] on hot paths).
    pub fn load(&self) -> Arc<T> {
        self.value.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Publish a new snapshot. Readers observe it at their next
    /// [`load_with`](Self::load_with) after the stamp moves.
    pub fn swap(&self, next: Arc<T>) {
        {
            let mut guard = self.value.lock().unwrap_or_else(PoisonError::into_inner);
            *guard = next;
        }
        // Release-store after the value is in place: a reader that sees
        // the new stamp and takes the lock gets (at least) this snapshot.
        self.stamp.fetch_add(1, Ordering::Release);
    }

    /// A fresh reader cache primed with the current snapshot.
    pub fn reader(&self) -> SlotReader<T> {
        SlotReader { cached: self.load(), seen: self.stamp() }
    }

    /// The current snapshot through a reader cache: one atomic load when
    /// nothing changed, a brief lock to refresh when it did.
    pub fn load_with<'r>(&self, reader: &'r mut SlotReader<T>) -> &'r Arc<T> {
        let now = self.stamp();
        if now != reader.seen {
            reader.cached = self.load();
            reader.seen = now;
        }
        &reader.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_sees_swaps_exactly_when_stamp_moves() {
        let slot = VersionedSlot::new(Arc::new(1u32));
        let mut reader = slot.reader();
        assert_eq!(**slot.load_with(&mut reader), 1);
        assert_eq!(slot.stamp(), 0);

        slot.swap(Arc::new(2));
        assert_eq!(slot.stamp(), 1);
        assert_eq!(**slot.load_with(&mut reader), 2);

        // Unchanged slot: the cached Arc is returned (same allocation).
        let before = Arc::as_ptr(slot.load_with(&mut reader));
        let after = Arc::as_ptr(slot.load_with(&mut reader));
        assert_eq!(before, after);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_state() {
        let slot = Arc::new(VersionedSlot::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = slot.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut r = slot.reader();
                    while stop.load(Ordering::Relaxed) == 0 {
                        let pair = slot.load_with(&mut r);
                        // Writers always publish matched pairs.
                        assert_eq!(pair.0, pair.1);
                    }
                })
            })
            .collect();
        for i in 1..500u64 {
            slot.swap(Arc::new((i, i)));
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(slot.stamp(), 499);
    }
}

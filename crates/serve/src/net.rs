//! Length-prefixed TCP front-end over the in-process service handle.
//!
//! Framing is a 4-byte big-endian payload length followed by one JSON
//! document (encoded/decoded with [`lite_obs::Json`] — the same value type
//! the manifests use, so the wire format needs no new dependency). One
//! request frame yields exactly one response frame; responses always carry
//! an `"ok"` boolean, with errors as `{"ok":false,"code":...,"error":...}`.
//!
//! Operations:
//!
//! * `{"op":"ping"}` → `{"ok":true,"version":v,"swaps":n}`
//! * `{"op":"recommend","app":"KMeans","data":{...},"cluster":"cluster-a",
//!   "k":3,"seed":7}` → `{"ok":true,"version":v,"cached":c,"scored":s,
//!   "ranked":[{"conf":[16 values],"predicted_s":t},...]}`
//! * `{"op":"observe","app":...,"data":...,"cluster":...,"conf":[...],
//!   "result":{"total_time_s":t,"failed":false,"stages":[{"name":...,
//!   "duration_s":d},...]}}` → `{"ok":true,"feedback":n}`
//!
//! Admin ops (no request fields beyond `"op"`):
//!
//! * `{"op":"stats"}` → `{"ok":true,"uptime_s":u,"version":v,"swaps":n,
//!   "queue_depth":d,"queue_capacity":c,"workers":w,"feedback":f,
//!   "update_batch":b,"requests":r,
//!   "cache":{"hit_rate":h,"hits":x,"misses":y},
//!   "drift":{"samples":s,"mape":m,"mean_error_s":e,"inversion_rate":i,
//!   "drifted":false}}` — a point-in-time operational summary.
//! * `{"op":"metrics"}` → `{"ok":true,"content_type":
//!   "text/plain; version=0.0.4","body":"# TYPE serve_requests counter\n
//!   serve_requests 17\n..."}` — the service registry as Prometheus text
//!   exposition (histograms as cumulative `_bucket`/`_sum`/`_count`).
//! * `{"op":"trace"}` → `{"ok":true,"trace":{"traceEvents":[...]},
//!   "dropped_spans":0}` — finished spans as Chrome trace-event JSON; save
//!   the `trace` value to a file and load it in Perfetto. Empty when
//!   tracing is disabled. When the document would overflow the response
//!   frame the oldest spans are shed and counted in `dropped_spans`.
//! * `{"op":"health"}` → `{"ok":true,"status":"ok","version":v,
//!   "uptime_s":u}` — liveness for probes.
//! * `{"op":"tailtrace"}` → `{"ok":true,"completed":n,"captured":m,
//!   "threshold_ns":t,"exemplars":[{"trace_id":id,"total_ns":t,
//!   "spans":[{"phase":"queue_wait","start_ns":a,"end_ns":b,
//!   "queue_depth":d,"swap":false},...]},...]}` — the slowest captured
//!   requests in full, phase by phase, slowest first. Empty when tail
//!   forensics is disabled. When the document would overflow the response
//!   frame the fastest exemplars are shed first.
//! * `{"op":"analyze","app":"KMeans"}` (or `"source":"...",`
//!   `"iterations":n` for submitted text) → `{"ok":true,"app_name":...,
//!   "stages":[{"template":...,"ops":["textFile",...],
//!   "instances_per_run":n},...],"diagnostics":[{"rule":...,
//!   "message":...,"line":l,"col":c},...]}` — the `lite-analyze` static
//!   extractor over the wire: stage templates and lint findings without
//!   running the application (cold-start onboarding).
//! * `{"v":2,"o":10,"app":"KMeans","data":{...},"cluster":"cluster-a",
//!   "k":5}` (or `"source":"..."` for submitted text) →
//!   `{"ok":true,"index":n,"search_ns":t,"neighbors":[{"app":...,
//!   "distance":d,"runtime_s":r,"estimate_s":e,"conf":[16 values]},...],
//!   "ranked":[{"conf":[...],"predicted_s":t},...]}` — `retrieve` is the
//!   v2-only ANN cold-start op: nearest historical runs by static code
//!   embedding, scale-adapted to the target data/cluster and re-ranked.
//!   v1 peers asking for `"op":"retrieve"` are refused with
//!   `bad_request`; servers without a configured retrieval store refuse
//!   likewise.
//! * `{"v":2,"o":11,"k":10}` → `{"ok":true,"samples":n,"sweeps":s,
//!   "torn":0,"truncated":0,"threads":t,"distinct_stacks":d,
//!   "top":[{"tag":"serve.recommend","self":a,"total":b},...],
//!   "alloc":[{"tag":...,"bytes":...,"allocs":...},...],
//!   "folded":"serve.recommend;serve.score 42\n..."}` — `profile` is the
//!   v2-only sampling-profiler report: the top-`k` tags by self samples,
//!   allocation attribution from the opt-in allocator wrapper, and the
//!   collapsed-stack text a flamegraph renders from. Refused with
//!   `bad_request` by v1 peers and by servers running no profiler.
//! * `{"v":2,"o":12}` → `{"ok":true,"objective_ns":o,"target":0.999,
//!   "bucket_s":1,"burn_fast":b,"burn_slow":c,"good_fraction":g,
//!   "alert":false,"alert_ticks":0,"fast":{"count":...,"rate":...,
//!   "p50_ns":...,"p99_ns":...,"p999_ns":...,"span_s":...},"slow":{...}}`
//!   — `slo` is the v2-only burn-rate SLO status over windowed rollups of
//!   `serve.latency_ns`. Refused with `bad_request` by v1 peers and by
//!   servers with no SLO configured.
//!
//! With tracing enabled the `stats` response additionally carries
//! `"phases":[{"phase":"queue_wait","count":...,"p50_ns":...,...},...]`
//! (the `serve.phase.*` breakdown), and with an SLO configured a
//! `"slo":{"alert":...,"burn_fast":...,"window":{...}}` summary — both
//! strictly additive keys; servers without those planes answer
//! byte-identically to before.
//!
//! `cluster` is either a preset name (`"cluster-a"`/`"cluster-b"`/
//! `"cluster-c"`) or a full object with the Table III fields.
//!
//! ## Protocol v2
//!
//! Requests carrying a `"v"` key speak the v2 envelope: numeric op codes
//! (`{"v":2,"o":1,...}` with [`OpCode`]), structured numeric error codes
//! (`{"v":2,"ok":false,"c":1,"code":"overloaded","error":...}` with
//! [`ErrorCode`]), and version negotiation via the `hello` op
//! (`{"op":"hello","max":2}` → `{"ok":true,"v":2}`, the server choosing
//! `min(client max, server max)`). Payload field names are shared with v1,
//! so v2 costs no second parser; requests without `"v"` keep decoding as
//! v1 byte-for-byte. Success responses under v2 are stamped `"v":2`.
//!
//! ## Trace header (`"t"`)
//!
//! v2 `recommend` requests may carry an optional `"t"` field — a nonzero
//! u64 trace id. When the server runs with tail forensics enabled, the
//! request's path through the server (frame read, parse, queueing,
//! scoring, serialization, write) is recorded under that id, the id is
//! echoed as `"t"` in the v2 success response, and a request without the
//! field is assigned a server-generated id at accept. The field is
//! strictly additive: requests without it are decoded byte-for-byte as
//! before, v1 peers are served unchanged, and with forensics disabled the
//! field is ignored and responses carry no `"t"`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use lite_obs::span::epoch_ns;
use lite_obs::trace::{Exemplar, Phase, TraceId};
use lite_obs::Json;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf, NUM_KNOBS};
use lite_sparksim::fault::FaultKind;
use lite_sparksim::result::{FailureReason, RunResult, StageStats};
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

use crate::monitor::DriftSummary;
use crate::proto;
use crate::service::{
    ObserveReply, RecommendReply, RecommendResponse, RetrieveResponse, ServeError, ServiceHandle,
    ServiceStats,
};

/// Largest accepted frame payload; recommendation traffic is tiny, so
/// anything bigger is a protocol error, not a workload. The transport
/// ceiling: `ProtocolConfig::max_frame` may lower the binary-frame cap
/// per service, never raise it past this.
pub const MAX_FRAME: u32 = 1 << 20;

/// Newest protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 2;

/// v2 numeric operation codes (v1 uses the same operations by name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Liveness + serving version.
    Ping = 0,
    /// Top-k recommendation.
    Recommend = 1,
    /// Executed-configuration feedback.
    Observe = 2,
    /// Operational summary.
    Stats = 3,
    /// Prometheus text exposition.
    Metrics = 4,
    /// Chrome trace-event JSON.
    Trace = 5,
    /// Probe endpoint.
    Health = 6,
    /// Version negotiation (valid from v1 too, by name).
    Hello = 7,
    /// Static stage extraction + lints for cold-start onboarding.
    Analyze = 8,
    /// Slow-request exemplars from the tail-forensics reservoir.
    Tailtrace = 9,
    /// Zero-execution cold-start retrieval from the historical run index
    /// (v2 only: the op postdates v1, so v1 peers get a clean
    /// `bad_request` instead of a silently different answer).
    Retrieve = 10,
    /// Sampling-profiler report: top-K self/total tag tables, folded
    /// stacks, and allocation attribution (v2 only, same refusal
    /// discipline as `retrieve`).
    Profile = 11,
    /// Burn-rate SLO status: windowed quantiles, burn rates, and the
    /// alert state (v2 only).
    Slo = 12,
}

impl OpCode {
    /// All operations, for exhaustive round-trip tests.
    pub const ALL: [OpCode; 13] = [
        OpCode::Ping,
        OpCode::Recommend,
        OpCode::Observe,
        OpCode::Stats,
        OpCode::Metrics,
        OpCode::Trace,
        OpCode::Health,
        OpCode::Hello,
        OpCode::Analyze,
        OpCode::Tailtrace,
        OpCode::Retrieve,
        OpCode::Profile,
        OpCode::Slo,
    ];

    /// The numeric wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The v1 `"op"` string.
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Ping => "ping",
            OpCode::Recommend => "recommend",
            OpCode::Observe => "observe",
            OpCode::Stats => "stats",
            OpCode::Metrics => "metrics",
            OpCode::Trace => "trace",
            OpCode::Health => "health",
            OpCode::Hello => "hello",
            OpCode::Analyze => "analyze",
            OpCode::Tailtrace => "tailtrace",
            OpCode::Retrieve => "retrieve",
            OpCode::Profile => "profile",
            OpCode::Slo => "slo",
        }
    }

    /// Decode a v2 numeric op code.
    pub fn from_code(code: u64) -> Option<OpCode> {
        OpCode::ALL.into_iter().find(|op| u64::from(op.code()) == code)
    }

    /// Decode a v1 op name.
    pub fn from_name(name: &str) -> Option<OpCode> {
        OpCode::ALL.into_iter().find(|op| op.name() == name)
    }
}

/// Structured wire error codes. v1 serializes only the snake_case name;
/// v2 additionally carries the numeric code in `"c"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request queue was full; shed at admission.
    Overloaded = 1,
    /// The deadline passed before a worker picked the request up.
    DeadlineExceeded = 2,
    /// The service answered from its degradation fallback. Never produced
    /// by the server as an error (degraded responses succeed with
    /// `"degraded":true`); reserved for clients that promote them.
    Degraded = 3,
    /// The service is shutting down.
    ShuttingDown = 4,
    /// A server-side bug; surfaced, not hung.
    Internal = 5,
    /// The app's templates are not in the serving snapshot.
    ColdApp = 6,
    /// The request itself was malformed.
    BadRequest = 7,
}

impl ErrorCode {
    /// All codes, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Degraded,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
        ErrorCode::ColdApp,
        ErrorCode::BadRequest,
    ];

    /// The numeric wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The snake_case name (the v1 `"code"` value).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Degraded => "degraded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::ColdApp => "cold_app",
            ErrorCode::BadRequest => "bad_request",
        }
    }

    /// Decode a numeric wire code.
    pub fn from_code(code: u64) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| u64::from(c.code()) == code)
    }

    /// Decode a snake_case name.
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Extract the error code from a response document, understanding both
    /// the v2 numeric `"c"` and the v1 string `"code"` forms. `None` for
    /// successful responses.
    pub fn from_response(resp: &Json) -> Option<ErrorCode> {
        if resp.get("ok").and_then(Json::as_bool) != Some(false) {
            return None;
        }
        if let Some(c) = resp.get("c").and_then(Json::as_u64) {
            return ErrorCode::from_code(c);
        }
        resp.get("code").and_then(Json::as_str).and_then(ErrorCode::from_name)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; `None` on a clean EOF before the length prefix.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    Ok(read_frame_timed(r)?.map(|(payload, _)| payload))
}

/// [`read_frame`], also reporting the epoch-ns instant the length prefix
/// finished arriving — the boundary between waiting for a request and
/// transferring it, which tail forensics uses to split the idle `Accept`
/// wait from the `FrameRead` transfer.
fn read_frame_timed<R: Read>(r: &mut R) -> std::io::Result<Option<(Vec<u8>, u64)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let arrived_ns = epoch_ns();
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((payload, arrived_ns)))
}

// ---------------------------------------------------------------------------
// Server

/// A running TCP front-end. Dropping (or calling
/// [`shutdown`](TcpServer::shutdown)) stops the reactor; established
/// connections are closed once their in-flight requests drain.
pub struct TcpServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    reactor_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop the reactor and join it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The reactor polls non-blockingly, so setting the flag is enough.
        if let Some(t) = self.reactor_thread.take() {
            t.join().expect("reactor thread panicked"); // gate: allow(expect)
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serve `handle` over TCP at `addr` (e.g. `"127.0.0.1:0"`).
///
/// One readiness-driven reactor thread owns the listener and every
/// connection: sockets are non-blocking, frames are extracted from
/// per-connection buffers, and hot operations (`recommend`/`observe`)
/// are submitted to the shard queues with callback replies so the
/// reactor never blocks on a worker. JSON (v1/v2) connections are served
/// strictly one frame at a time; v3 binary connections may pipeline up to
/// `protocol.max_pipeline` frames, with responses correlated by request
/// id. Admin and retrieval operations are answered inline on the reactor.
pub fn serve_tcp<A: ToSocketAddrs>(handle: ServiceHandle, addr: A) -> std::io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let reactor_stop = stop.clone();
    let reactor_thread = std::thread::Builder::new()
        .name("serve-reactor".into())
        .spawn(move || reactor_loop(listener, handle, reactor_stop))
        .expect("spawn reactor thread"); // gate: allow(expect)
    Ok(TcpServer { local_addr, stop, reactor_thread: Some(reactor_thread) })
}

/// The reply half of a connection, shared with worker callbacks. Writes
/// go through a mutex (one frame at a time, never interleaved) on a
/// dup'd socket handle; `dead` poisons the connection for the reactor.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
    in_flight: AtomicUsize,
    faults: Option<Arc<lite_sparksim::fault::FaultInjector>>,
}

impl ConnWriter {
    /// Write one length-prefixed frame, honoring the injected torn-frame
    /// fault (length promises a full payload, half arrives, the
    /// connection dies). Marks the connection dead on any write failure.
    fn write_frame(&self, payload: &[u8]) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let Ok(len) = u32::try_from(payload.len()) else {
            self.dead.store(true, Ordering::Release);
            return false;
        };
        if len > MAX_FRAME {
            self.dead.store(true, Ordering::Release);
            return false;
        }
        let torn =
            self.faults.as_deref().is_some_and(|f| f.fires(FaultKind::TornFrame, f.next_key()));
        let body = if torn { &payload[..payload.len() / 2] } else { payload };
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(body);
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let ok = nb_write_all(&mut stream, &frame).is_ok();
        let _ = stream.flush();
        drop(stream);
        if torn || !ok {
            self.dead.store(true, Ordering::Release);
            return false;
        }
        true
    }
}

/// `write_all` over a non-blocking socket (the dup'd writer handle shares
/// the reader's `O_NONBLOCK`): retry briefly on `WouldBlock`, give up —
/// poisoning the connection — if the peer stalls for seconds.
fn nb_write_all(stream: &mut TcpStream, mut buf: &[u8]) -> std::io::Result<()> {
    let mut stalls = 0u32;
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "peer gone")),
            Ok(n) => {
                buf = &buf[n..];
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stalls += 1;
                if stalls > 40_000 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer not draining",
                    ));
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Per-connection reactor state: the non-blocking reader, the shared
/// writer, and the receive buffer frames are extracted from.
struct Conn {
    stream: TcpStream,
    writer: Arc<ConnWriter>,
    buf: Vec<u8>,
    read_closed: bool,
    /// When the connection went idle (last frame fully consumed) — the
    /// start of the next request's `Accept` span.
    idle_ns: u64,
    /// When bytes last arrived — the `Accept`/`FrameRead` boundary.
    last_read_ns: u64,
}

/// Receive-buffer cap per connection: enough for one maximal frame plus a
/// full pipeline of small ones; the reactor stops draining the socket
/// past it, which backpressures pipelining clients through TCP.
const CONN_BUF_CAP: usize = 2 * MAX_FRAME as usize;

impl Conn {
    fn new(
        stream: TcpStream,
        writer_stream: TcpStream,
        faults: Option<Arc<lite_sparksim::fault::FaultInjector>>,
    ) -> Conn {
        let now = epoch_ns();
        Conn {
            stream,
            writer: Arc::new(ConnWriter {
                stream: Mutex::new(writer_stream),
                dead: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                faults,
            }),
            buf: Vec::new(),
            read_closed: false,
            idle_ns: now,
            last_read_ns: now,
        }
    }

    /// Whether the connection still has work: not poisoned, and either
    /// readable, holding a complete buffered frame, or awaiting replies.
    fn alive(&self) -> bool {
        if self.writer.dead.load(Ordering::Acquire) {
            return false;
        }
        !self.read_closed
            || self.writer.in_flight.load(Ordering::Acquire) > 0
            || complete_frame_len(&self.buf).is_some()
    }

    /// Drain the socket into the buffer and serve every extractable
    /// frame. Returns whether anything happened (the reactor's idle
    /// detector).
    fn pump(&mut self, cx: &ReactorCx, chunk: &mut [u8]) -> bool {
        if self.writer.dead.load(Ordering::Acquire) {
            return false;
        }
        let mut active = false;
        while !self.read_closed && self.buf.len() < CONN_BUF_CAP {
            match self.stream.read(chunk) {
                Ok(0) => self.read_closed = true,
                Ok(n) => {
                    self.last_read_ns = epoch_ns();
                    self.buf.extend_from_slice(&chunk[..n]);
                    active = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.read_closed = true;
                    self.writer.dead.store(true, Ordering::Release);
                }
            }
        }
        while let Some(total) = complete_frame_len(&self.buf) {
            if total == usize::MAX {
                // Oversized length prefix: unrecoverable framing error.
                self.writer.dead.store(true, Ordering::Release);
                self.read_closed = true;
                self.buf.clear();
                break;
            }
            let binary = self.buf.get(4) == Some(&proto::V3_MAGIC);
            let in_flight = self.writer.in_flight.load(Ordering::Acquire);
            // JSON frames are strictly serial (responses carry no
            // correlation tag, so order is the contract); binary frames
            // pipeline up to the configured depth.
            if in_flight >= if binary { cx.max_pipeline } else { 1 } {
                break;
            }
            let payload = self.buf[4..total].to_vec();
            self.buf.drain(..total);
            active = true;
            let arrived_ns = self.last_read_ns;
            let idle_ns = self.idle_ns;
            self.idle_ns = epoch_ns();
            if binary {
                if payload.len() > cx.binary_cap as usize {
                    let op = binary_op_hint(&payload);
                    let req_id = binary_req_id_hint(&payload);
                    self.writer.write_frame(&proto::encode_error_response(
                        op,
                        req_id,
                        ErrorCode::BadRequest,
                        "binary frame exceeds protocol.max_frame",
                    ));
                    continue;
                }
                serve_binary_frame(cx, &self.writer, &payload, idle_ns, arrived_ns);
            } else {
                serve_json_frame(cx, &self.writer, &payload, idle_ns, arrived_ns);
            }
        }
        active
    }
}

/// Total length (prefix + payload) of the first complete frame in `buf`,
/// `None` when more bytes are needed, `usize::MAX` when the length prefix
/// itself is out of protocol bounds.
fn complete_frame_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME {
        return Some(usize::MAX);
    }
    let total = 4 + len as usize;
    (buf.len() >= total).then_some(total)
}

/// Best-effort op extraction from an undecodable binary frame, so the
/// error frame still echoes something useful.
fn binary_op_hint(payload: &[u8]) -> OpCode {
    payload.get(2).and_then(|&b| OpCode::from_code(u64::from(b))).unwrap_or(OpCode::Ping)
}

/// Best-effort request-id extraction from an undecodable binary frame.
fn binary_req_id_hint(payload: &[u8]) -> u32 {
    match payload.get(4..8) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

/// Shared per-reactor context threaded into frame handlers.
struct ReactorCx {
    handle: ServiceHandle,
    space: ConfSpace,
    max_pipeline: usize,
    binary_cap: u32,
}

fn reactor_loop(listener: TcpListener, handle: ServiceHandle, stop: Arc<AtomicBool>) {
    let faults = handle.fault_injector();
    let cx = ReactorCx {
        space: ConfSpace::table_iv(),
        max_pipeline: handle.protocol().max_pipeline.max(1),
        binary_cap: handle.protocol().max_frame.min(MAX_FRAME),
        handle,
    };
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::Acquire) {
        let mut active = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Frames are small; without NODELAY, Nagle + delayed
                    // ACK stalls every response by tens of milliseconds.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if let Ok(writer_stream) = stream.try_clone() {
                        conns.push(Conn::new(stream, writer_stream, faults.clone()));
                        active = true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        for conn in &mut conns {
            active |= conn.pump(&cx, &mut chunk);
        }
        conns.retain(Conn::alive);
        if !active {
            // Nothing readable and nothing accepted: yield briefly rather
            // than spin. Callback replies progress on worker threads.
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

// ---------------------------------------------------------------------------
// Frame handlers

/// Serve one JSON (v1/v2) frame. Hot operations are submitted to the
/// shard queues with a callback reply; everything else is answered inline
/// through [`dispatch`], byte-identical to the previous
/// thread-per-connection front-end.
fn serve_json_frame(
    cx: &ReactorCx,
    writer: &Arc<ConnWriter>,
    payload: &[u8],
    idle_ns: u64,
    arrived_ns: u64,
) {
    let handle = &cx.handle;
    let tracing = handle.trace_enabled();
    let parsed = std::str::from_utf8(payload)
        .map_err(|_| "frame is not utf-8".to_string())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()));
    // The trace id lives inside the frame, so the socket-side phases that
    // precede parsing are recorded retroactively once it is known. Accept
    // covers the idle wait between frames (kept out of the request's
    // end-to-end total); FrameRead is the buffered-transfer boundary.
    let mut trace = None;
    if tracing {
        if let Ok(request) = &parsed {
            if let Some(id) = request_trace(request) {
                handle.trace_phase(id, Phase::Accept, idle_ns, arrived_ns);
                handle.trace_phase(id, Phase::FrameRead, arrived_ns, arrived_ns);
                handle.trace_phase(id, Phase::Parse, arrived_ns, epoch_ns());
                trace = Some(id);
            }
        }
    }
    let request = match parsed {
        Ok(request) => request,
        Err(msg) => {
            let doc = wire_error(false, ErrorCode::BadRequest, &msg);
            write_json_response(handle, writer, trace, arrived_ns, &doc);
            return;
        }
    };
    // Hot ops leave the reactor through the shard queues; their replies
    // come back on worker threads via the connection's writer. Versions
    // other than 1/2 fall through to `dispatch` for the error shape.
    let version = request.get("v").and_then(Json::as_u64);
    if matches!(version, None | Some(2)) {
        let v2 = version == Some(2);
        let op = if v2 {
            request.get("o").and_then(Json::as_u64).and_then(OpCode::from_code)
        } else {
            request.get("op").and_then(Json::as_str).and_then(OpCode::from_name)
        };
        match op {
            Some(OpCode::Recommend) => {
                submit_json_recommend(cx, writer, &request, v2, trace, arrived_ns);
                return;
            }
            Some(OpCode::Observe) => {
                submit_json_observe(cx, writer, &request, v2, arrived_ns);
                return;
            }
            _ => {}
        }
    }
    let doc = dispatch(handle, &cx.space, &request, trace);
    write_json_response(handle, writer, trace, arrived_ns, &doc);
}

/// Render and write one JSON response, recording the serialize/write
/// phases and completing the trace.
fn write_json_response(
    handle: &ServiceHandle,
    writer: &ConnWriter,
    trace: Option<TraceId>,
    arrived_ns: u64,
    doc: &Json,
) {
    let serialize_start_ns = if trace.is_some() { epoch_ns() } else { 0 };
    let rendered = doc.render();
    if let Some(id) = trace {
        handle.trace_phase(id, Phase::Serialize, serialize_start_ns, epoch_ns());
    }
    let write_start_ns = if trace.is_some() { epoch_ns() } else { 0 };
    writer.write_frame(rendered.as_bytes());
    if let Some(id) = trace {
        let done_ns = epoch_ns();
        handle.trace_phase(id, Phase::Write, write_start_ns, done_ns);
        // End-to-end as the server observed it: from the request frame
        // arriving to the response flushed. This is the latency the
        // exemplar reservoir ranks by.
        handle.trace_complete(id, done_ns.saturating_sub(arrived_ns));
    }
}

/// Parse and submit a JSON `recommend`; the response is written from the
/// worker callback (or inline, when the fast path answers immediately).
fn submit_json_recommend(
    cx: &ReactorCx,
    writer: &Arc<ConnWriter>,
    request: &Json,
    v2: bool,
    trace: Option<TraceId>,
    arrived_ns: u64,
) {
    let handle = &cx.handle;
    let parsed = (|| {
        let app = parse_app(request.get("app"))?;
        let data = parse_data(request.get("data"))?;
        let cluster = parse_cluster(request.get("cluster"))?;
        let k = request.get("k").and_then(Json::as_u64).unwrap_or(1) as usize;
        let seed = request.get("seed").and_then(Json::as_u64).unwrap_or(0);
        Ok((app, data, cluster, k, seed))
    })();
    let (app, data, cluster, k, seed) = match parsed {
        Ok(fields) => fields,
        Err((code, msg)) => {
            let doc = wire_error(v2, code, &msg);
            write_json_response(handle, writer, trace, arrived_ns, &doc);
            return;
        }
    };
    writer.in_flight.fetch_add(1, Ordering::AcqRel);
    let h = handle.clone();
    let w = writer.clone();
    handle.submit_recommend(
        app,
        &data,
        &cluster,
        k,
        seed,
        handle.default_deadline(),
        trace,
        RecommendReply::Callback(Box::new(move |outcome, sent_ns, shard| {
            if let Some(id) = trace {
                if sent_ns != 0 {
                    h.trace_respond(id, sent_ns, epoch_ns(), shard);
                }
            }
            let doc = match outcome {
                Ok(resp) => {
                    let doc = recommend_to_json(&resp);
                    if v2 {
                        stamp_v2(doc, trace)
                    } else {
                        doc
                    }
                }
                Err(err) => wire_error(v2, error_code(&err), &err.to_string()),
            };
            write_json_response(&h, &w, trace, arrived_ns, &doc);
            w.in_flight.fetch_sub(1, Ordering::AcqRel);
        })),
    );
}

/// Parse and submit a JSON `observe`; the response is written from the
/// worker callback.
fn submit_json_observe(
    cx: &ReactorCx,
    writer: &Arc<ConnWriter>,
    request: &Json,
    v2: bool,
    arrived_ns: u64,
) {
    let handle = &cx.handle;
    let parsed = (|| {
        let app = parse_app(request.get("app"))?;
        let data = parse_data(request.get("data"))?;
        let cluster = parse_cluster(request.get("cluster"))?;
        let conf = parse_conf(&cx.space, request.get("conf"))?;
        let result = parse_result(request.get("result"))?;
        Ok((app, data, cluster, conf, result))
    })();
    let (app, data, cluster, conf, result) = match parsed {
        Ok(fields) => fields,
        Err((code, msg)) => {
            let doc = wire_error(v2, code, &msg);
            write_json_response(handle, writer, None, arrived_ns, &doc);
            return;
        }
    };
    writer.in_flight.fetch_add(1, Ordering::AcqRel);
    let h = handle.clone();
    let w = writer.clone();
    handle.submit_observe(
        app,
        &data,
        &cluster,
        &conf,
        Box::new(result),
        ObserveReply::Callback(Box::new(move |outcome| {
            let doc = match outcome {
                Ok(feedback) => {
                    let doc = Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("feedback", Json::from(feedback)),
                    ]);
                    if v2 {
                        stamp_v2(doc, None)
                    } else {
                        doc
                    }
                }
                Err(err) => wire_error(v2, error_code(&err), &err.to_string()),
            };
            write_json_response(&h, &w, None, arrived_ns, &doc);
            w.in_flight.fetch_sub(1, Ordering::AcqRel);
        })),
    );
}

/// Serve one v3 binary frame. Hot ops go through the shard queues with
/// binary-encoding callbacks; retrieval and admin ops are answered inline.
/// Every failure is a clean error frame — the connection survives
/// anything short of transport-level framing damage.
fn serve_binary_frame(
    cx: &ReactorCx,
    writer: &Arc<ConnWriter>,
    payload: &[u8],
    idle_ns: u64,
    arrived_ns: u64,
) {
    let handle = &cx.handle;
    let (header, request) = match proto::decode_request(payload, &cx.space) {
        Ok(decoded) => decoded,
        Err(msg) => {
            writer.write_frame(&proto::encode_error_response(
                binary_op_hint(payload),
                binary_req_id_hint(payload),
                ErrorCode::BadRequest,
                msg,
            ));
            return;
        }
    };
    // Binary tracing is strictly opt-in per request (`FLAG_TRACED`):
    // pipelined hot paths stay trace-free unless the caller asks.
    let trace =
        if handle.trace_enabled() { request.trace_id().and_then(TraceId::from_wire) } else { None };
    if let Some(id) = trace {
        handle.trace_phase(id, Phase::Accept, idle_ns, arrived_ns);
        handle.trace_phase(id, Phase::FrameRead, arrived_ns, arrived_ns);
        handle.trace_phase(id, Phase::Parse, arrived_ns, epoch_ns());
    }
    let req_id = header.req_id;
    match request {
        proto::Request::Hello { max } => {
            writer.write_frame(&proto::encode_hello_response(
                req_id,
                max.clamp(1, proto::PROTOCOL_V3),
            ));
        }
        proto::Request::Ping => {
            writer.write_frame(&proto::encode_ping_response(
                req_id,
                handle.version(),
                handle.swap_count(),
            ));
        }
        proto::Request::Recommend { app, data, cluster, k, seed, .. } => {
            let cluster = match proto::resolve_cluster(&cluster) {
                Ok(c) => c,
                Err(msg) => {
                    writer.write_frame(&proto::encode_error_response(
                        OpCode::Recommend,
                        req_id,
                        ErrorCode::BadRequest,
                        &msg,
                    ));
                    return;
                }
            };
            writer.in_flight.fetch_add(1, Ordering::AcqRel);
            let h = handle.clone();
            let w = writer.clone();
            handle.submit_recommend(
                app,
                &data,
                &cluster,
                k,
                seed,
                handle.default_deadline(),
                trace,
                RecommendReply::Callback(Box::new(move |outcome, sent_ns, shard| {
                    if let Some(id) = trace {
                        if sent_ns != 0 {
                            h.trace_respond(id, sent_ns, epoch_ns(), shard);
                        }
                    }
                    let serialize_start_ns = if trace.is_some() { epoch_ns() } else { 0 };
                    let frame = match &outcome {
                        Ok(resp) => {
                            proto::encode_recommend_response(req_id, trace.map(TraceId::raw), resp)
                        }
                        Err(err) => proto::encode_error_response(
                            OpCode::Recommend,
                            req_id,
                            error_code(err),
                            &err.to_string(),
                        ),
                    };
                    if let Some(id) = trace {
                        h.trace_phase(id, Phase::Serialize, serialize_start_ns, epoch_ns());
                    }
                    let write_start_ns = if trace.is_some() { epoch_ns() } else { 0 };
                    w.write_frame(&frame);
                    if let Some(id) = trace {
                        let done_ns = epoch_ns();
                        h.trace_phase(id, Phase::Write, write_start_ns, done_ns);
                        h.trace_complete(id, done_ns.saturating_sub(arrived_ns));
                    }
                    w.in_flight.fetch_sub(1, Ordering::AcqRel);
                })),
            );
        }
        proto::Request::Observe { app, data, cluster, conf, result } => {
            let cluster = match proto::resolve_cluster(&cluster) {
                Ok(c) => c,
                Err(msg) => {
                    writer.write_frame(&proto::encode_error_response(
                        OpCode::Observe,
                        req_id,
                        ErrorCode::BadRequest,
                        &msg,
                    ));
                    return;
                }
            };
            writer.in_flight.fetch_add(1, Ordering::AcqRel);
            let w = writer.clone();
            handle.submit_observe(
                app,
                &data,
                &cluster,
                &conf,
                result,
                ObserveReply::Callback(Box::new(move |outcome| {
                    let frame = match outcome {
                        Ok(feedback) => proto::encode_observe_response(req_id, feedback),
                        Err(err) => proto::encode_error_response(
                            OpCode::Observe,
                            req_id,
                            error_code(&err),
                            &err.to_string(),
                        ),
                    };
                    w.write_frame(&frame);
                    w.in_flight.fetch_sub(1, Ordering::AcqRel);
                })),
            );
        }
        proto::Request::Retrieve { target, data, cluster, k, .. } => {
            let outcome = binary_retrieve(handle, &target, &data, &cluster, k, trace);
            let frame = match outcome {
                Ok(resp) => proto::encode_retrieve_response(req_id, trace.map(TraceId::raw), &resp),
                Err((code, msg)) => {
                    proto::encode_error_response(OpCode::Retrieve, req_id, code, &msg)
                }
            };
            let write_start_ns = if trace.is_some() { epoch_ns() } else { 0 };
            writer.write_frame(&frame);
            if let Some(id) = trace {
                let done_ns = epoch_ns();
                handle.trace_phase(id, Phase::Write, write_start_ns, done_ns);
                handle.trace_complete(id, done_ns.saturating_sub(arrived_ns));
            }
        }
        proto::Request::Analyze { target } => {
            let outcome = match &target {
                proto::AnalyzeTarget::App(app) => {
                    let iters =
                        app.dataset(lite_workloads::data::SizeTier::Train(0)).iterations.max(1);
                    run_analyze(app.main_source(), iters)
                }
                proto::AnalyzeTarget::Source { source, iterations } => {
                    run_analyze(source, (*iterations).max(1))
                }
            };
            write_binary_admin(writer, OpCode::Analyze, req_id, outcome);
        }
        proto::Request::Profile { k } => {
            write_binary_admin(
                writer,
                OpCode::Profile,
                req_id,
                wire_profile(handle, k.clamp(1, 64)),
            );
        }
        proto::Request::Stats => {
            write_binary_admin(writer, OpCode::Stats, req_id, Ok(stats_with_planes(handle)));
        }
        proto::Request::Metrics => {
            let doc = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("content_type", Json::from("text/plain; version=0.0.4")),
                ("body", Json::from(handle.prometheus().as_str())),
            ]);
            write_binary_admin(writer, OpCode::Metrics, req_id, Ok(doc));
        }
        proto::Request::Trace => {
            let (trace_doc, dropped) = handle.trace_json_capped(MAX_FRAME as usize / 2);
            let doc = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("trace", trace_doc),
                ("dropped_spans", Json::from(dropped)),
            ]);
            write_binary_admin(writer, OpCode::Trace, req_id, Ok(doc));
        }
        proto::Request::Health => {
            let doc = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("status", Json::from("ok")),
                ("version", Json::from(handle.version())),
                ("uptime_s", Json::Num(handle.stats().uptime_s)),
            ]);
            write_binary_admin(writer, OpCode::Health, req_id, Ok(doc));
        }
        proto::Request::Tailtrace => {
            let (completed, captured) = handle.tail_totals();
            let doc = tailtrace_to_json(
                handle.tail_exemplars(),
                completed,
                captured,
                MAX_FRAME as usize / 2,
            );
            write_binary_admin(writer, OpCode::Tailtrace, req_id, Ok(doc));
        }
        proto::Request::Slo => {
            write_binary_admin(writer, OpCode::Slo, req_id, wire_slo(handle));
        }
    }
}

/// The binary `retrieve` path, mirroring [`wire_retrieve`]'s semantics
/// over typed fields.
fn binary_retrieve(
    handle: &ServiceHandle,
    target: &proto::RetrieveTarget,
    data: &DataSpec,
    cluster: &proto::ClusterRef,
    k: usize,
    trace: Option<TraceId>,
) -> Result<RetrieveResponse, (ErrorCode, String)> {
    if !handle.retrieval_enabled() {
        return Err((ErrorCode::BadRequest, "retrieval not enabled on this server".to_string()));
    }
    let cluster = proto::resolve_cluster(cluster).map_err(|m| (ErrorCode::BadRequest, m))?;
    let k = k.clamp(1, 64);
    let outcome = match target {
        proto::RetrieveTarget::App(app) => match trace {
            Some(id) => handle.retrieve_traced(*app, data, &cluster, k, id),
            None => handle.retrieve(*app, data, &cluster, k),
        },
        proto::RetrieveTarget::Source(src) => handle.retrieve_source(src, data, &cluster, k, trace),
    };
    outcome.map_err(|err| (error_code(&err), err.to_string()))
}

/// Write one admin-op outcome as a binary frame: success docs travel as
/// rendered JSON bodies, failures as error frames.
fn write_binary_admin(
    writer: &ConnWriter,
    op: OpCode,
    req_id: u32,
    outcome: Result<Json, (ErrorCode, String)>,
) {
    let frame = match outcome {
        Ok(doc) => proto::encode_admin_response(op, req_id, &doc),
        Err((code, msg)) => proto::encode_error_response(op, req_id, code, &msg),
    };
    writer.write_frame(&frame);
}

/// The trace id a parsed request should be recorded under, when the
/// request-path phases apply: a v2 `recommend` or `retrieve` with the
/// caller's `"t"` id, or a fresh server-generated id when the field is
/// absent. `None` for v1 peers and other operations.
fn request_trace(request: &Json) -> Option<TraceId> {
    if request.get("v").and_then(Json::as_u64) != Some(2) {
        return None;
    }
    let op = request.get("o").and_then(Json::as_u64);
    let traced = op == Some(u64::from(OpCode::Recommend.code()))
        || op == Some(u64::from(OpCode::Retrieve.code()));
    if !traced {
        return None;
    }
    let wire = request.get("t").and_then(Json::as_u64).and_then(TraceId::from_wire);
    Some(wire.unwrap_or_else(TraceId::generate))
}

fn dispatch(
    handle: &ServiceHandle,
    space: &ConfSpace,
    request: &Json,
    trace: Option<TraceId>,
) -> Json {
    let v2 = match request.get("v").and_then(Json::as_u64) {
        Some(2) => true,
        Some(v) => {
            return wire_error(true, ErrorCode::BadRequest, &format!("unsupported version {v}"))
        }
        None => false,
    };
    let op = if v2 {
        request.get("o").and_then(Json::as_u64).and_then(OpCode::from_code)
    } else {
        request.get("op").and_then(Json::as_str).and_then(OpCode::from_name)
    };
    let outcome = match op {
        Some(OpCode::Ping) => Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("version", Json::from(handle.version())),
            ("swaps", Json::from(handle.swap_count())),
        ])),
        Some(OpCode::Recommend) => wire_recommend(handle, request, trace),
        Some(OpCode::Observe) => wire_observe(handle, space, request),
        Some(OpCode::Stats) => Ok(stats_with_planes(handle)),
        Some(OpCode::Metrics) => Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("content_type", Json::from("text/plain; version=0.0.4")),
            ("body", Json::from(handle.prometheus().as_str())),
        ])),
        Some(OpCode::Trace) => {
            // Leave half the frame for the envelope and escaping overhead;
            // oldest spans are shed first when the trace outgrows it.
            let (trace, dropped) = handle.trace_json_capped(MAX_FRAME as usize / 2);
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("trace", trace),
                ("dropped_spans", Json::from(dropped)),
            ]))
        }
        Some(OpCode::Health) => Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("status", Json::from("ok")),
            ("version", Json::from(handle.version())),
            ("uptime_s", Json::Num(handle.stats().uptime_s)),
        ])),
        Some(OpCode::Hello) => {
            let max = request.get("max").and_then(Json::as_u64).unwrap_or(1);
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("v", Json::from(max.clamp(1, PROTOCOL_VERSION))),
            ]))
        }
        Some(OpCode::Analyze) => wire_analyze(request),
        Some(OpCode::Tailtrace) => {
            let (completed, captured) = handle.tail_totals();
            // Leave half the frame for the envelope and escaping overhead;
            // the fastest exemplars are shed first when the document
            // outgrows it.
            Ok(tailtrace_to_json(
                handle.tail_exemplars(),
                completed,
                captured,
                MAX_FRAME as usize / 2,
            ))
        }
        Some(OpCode::Retrieve) if !v2 => {
            // The op postdates v1. A v1 `{"op":"retrieve"}` would resolve
            // by name, so reject explicitly: v1 byte behavior must not
            // grow a new success shape.
            Err((ErrorCode::BadRequest, "retrieve requires protocol v2".to_string()))
        }
        Some(OpCode::Retrieve) => wire_retrieve(handle, request, trace),
        Some(OpCode::Profile) if !v2 => {
            // Same discipline as retrieve: the op postdates v1, so v1
            // peers get a clean refusal, never a new v1 success shape.
            Err((ErrorCode::BadRequest, "profile requires protocol v2".to_string()))
        }
        Some(OpCode::Profile) => {
            let k = request.get("k").and_then(Json::as_u64).unwrap_or(10).clamp(1, 64) as usize;
            wire_profile(handle, k)
        }
        Some(OpCode::Slo) if !v2 => {
            Err((ErrorCode::BadRequest, "slo requires protocol v2".to_string()))
        }
        Some(OpCode::Slo) => wire_slo(handle),
        None => Err((ErrorCode::BadRequest, "unknown op".to_string())),
    };
    match outcome {
        Ok(json) if v2 => stamp_v2(json, trace),
        Ok(json) => json,
        Err((code, msg)) => wire_error(v2, code, &msg),
    }
}

/// Mark a success response as a v2 frame, echoing the trace id when the
/// request was traced.
fn stamp_v2(json: Json, trace: Option<TraceId>) -> Json {
    match json {
        Json::Obj(mut pairs) => {
            pairs.insert(0, ("v".to_string(), Json::from(PROTOCOL_VERSION)));
            if let Some(id) = trace {
                pairs.insert(1, ("t".to_string(), Json::from(id.raw())));
            }
            Json::Obj(pairs)
        }
        other => other,
    }
}

type WireResult = Result<Json, (ErrorCode, String)>;

fn wire_recommend(handle: &ServiceHandle, request: &Json, trace: Option<TraceId>) -> WireResult {
    let app = parse_app(request.get("app"))?;
    let data = parse_data(request.get("data"))?;
    let cluster = parse_cluster(request.get("cluster"))?;
    let k = request.get("k").and_then(Json::as_u64).unwrap_or(1) as usize;
    let seed = request.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let deadline = handle.default_deadline();
    let outcome = match trace {
        Some(id) => handle.recommend_traced(app, &data, &cluster, k, seed, deadline, id),
        None => handle.recommend(app, &data, &cluster, k, seed),
    };
    match outcome {
        Ok(resp) => Ok(recommend_to_json(&resp)),
        Err(err) => Err((error_code(&err), err.to_string())),
    }
}

/// Encode the tail-forensics reservoir, shedding the fastest exemplars
/// until the document fits `max_bytes`.
fn tailtrace_to_json(
    mut exemplars: Vec<Exemplar>,
    completed: u64,
    captured: u64,
    max_bytes: usize,
) -> Json {
    loop {
        let doc = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("completed", Json::from(completed)),
            ("captured", Json::from(captured)),
            ("exemplars", Json::Arr(exemplars.iter().map(exemplar_to_json).collect())),
        ]);
        if doc.render().len() <= max_bytes || exemplars.is_empty() {
            return doc;
        }
        exemplars.pop();
    }
}

/// Encode one captured exemplar for the wire.
pub fn exemplar_to_json(e: &Exemplar) -> Json {
    Json::obj(vec![
        ("trace_id", Json::from(e.trace_id)),
        ("total_ns", Json::from(e.total_ns)),
        (
            "spans",
            Json::Arr(
                e.spans
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("phase", Json::from(s.phase.name())),
                            ("start_ns", Json::from(s.start_ns)),
                            ("end_ns", Json::from(s.end_ns)),
                            ("queue_depth", Json::from(u64::from(s.queue_depth))),
                            ("swap", Json::Bool(s.swap_in_progress)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn wire_observe(handle: &ServiceHandle, space: &ConfSpace, request: &Json) -> WireResult {
    let app = parse_app(request.get("app"))?;
    let data = parse_data(request.get("data"))?;
    let cluster = parse_cluster(request.get("cluster"))?;
    let conf = parse_conf(space, request.get("conf"))?;
    let result = parse_result(request.get("result"))?;
    match handle.observe(app, &data, &cluster, &conf, &result) {
        Ok(feedback) => {
            Ok(Json::obj(vec![("ok", Json::Bool(true)), ("feedback", Json::from(feedback))]))
        }
        Err(err) => Err((error_code(&err), err.to_string())),
    }
}

fn wire_analyze(request: &Json) -> WireResult {
    let (source, default_iters) = match request.get("app") {
        Some(app_field) => {
            let app = parse_app(Some(app_field))?;
            let iters = app.dataset(lite_workloads::data::SizeTier::Train(0)).iterations;
            (app.main_source().to_string(), iters.max(1))
        }
        None => {
            let src = request.get("source").and_then(Json::as_str).ok_or_else(|| {
                (ErrorCode::BadRequest, "analyze needs \"app\" or \"source\"".to_string())
            })?;
            (src.to_string(), 1)
        }
    };
    let iterations = request
        .get("iterations")
        .and_then(Json::as_u64)
        .map_or(default_iters, |i| i.min(u64::from(u32::MAX)) as u32);
    run_analyze(&source, iterations)
}

/// Run the static stage extraction both front-ends (JSON `analyze` and
/// the v3 binary op) share.
fn run_analyze(source: &str, iterations: u32) -> WireResult {
    match lite_analyze::extract_stages(source, lite_analyze::ExtractOptions { iterations }) {
        Ok(ex) => Ok(extraction_to_json(&ex)),
        Err(e) => Err((ErrorCode::BadRequest, e.to_string())),
    }
}

fn extraction_to_json(ex: &lite_analyze::Extraction) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("app_name", ex.app_name.as_deref().map_or(Json::Null, Json::from)),
        (
            "stages",
            Json::Arr(
                ex.stages
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("template", Json::from(s.template.as_str())),
                            (
                                "ops",
                                Json::Arr(s.ops.iter().map(|o| Json::from(o.label())).collect()),
                            ),
                            ("instances_per_run", Json::from(s.instances_per_run)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "diagnostics",
            Json::Arr(
                ex.diagnostics
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("rule", Json::from(d.rule)),
                            ("message", Json::from(d.message.as_str())),
                            ("line", Json::from(u64::from(d.span.line))),
                            ("col", Json::from(u64::from(d.span.col))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn wire_retrieve(handle: &ServiceHandle, request: &Json, trace: Option<TraceId>) -> WireResult {
    if !handle.retrieval_enabled() {
        return Err((ErrorCode::BadRequest, "retrieval not enabled on this server".to_string()));
    }
    let data = parse_data(request.get("data"))?;
    let cluster = parse_cluster(request.get("cluster"))?;
    let k = request.get("k").and_then(Json::as_u64).unwrap_or(1).clamp(1, 64) as usize;
    let outcome = match request.get("app") {
        Some(app_field) => {
            let app = parse_app(Some(app_field))?;
            match trace {
                Some(id) => handle.retrieve_traced(app, &data, &cluster, k, id),
                None => handle.retrieve(app, &data, &cluster, k),
            }
        }
        None => {
            let src = request.get("source").and_then(Json::as_str).ok_or_else(|| {
                (ErrorCode::BadRequest, "retrieve needs \"app\" or \"source\"".to_string())
            })?;
            handle.retrieve_source(src, &data, &cluster, k, trace)
        }
    };
    match outcome {
        Ok(resp) => Ok(retrieve_to_json(&resp)),
        Err(err) => Err((error_code(&err), err.to_string())),
    }
}

fn retrieve_to_json(resp: &RetrieveResponse) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("index", Json::from(resp.index_len)),
        ("search_ns", Json::from(resp.search_ns)),
        (
            "neighbors",
            Json::Arr(
                resp.neighbors
                    .iter()
                    .map(|n| {
                        Json::obj(vec![
                            ("app", Json::from(n.app.name())),
                            ("distance", Json::Num(f64::from(n.distance))),
                            ("runtime_s", Json::Num(n.runtime_s)),
                            ("estimate_s", Json::Num(n.estimate_s)),
                            (
                                "conf",
                                Json::Arr(n.conf.values().iter().map(|&v| Json::Num(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "ranked",
            Json::Arr(
                resp.ranked
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            (
                                "conf",
                                Json::Arr(r.conf.values().iter().map(|&v| Json::Num(v)).collect()),
                            ),
                            ("predicted_s", Json::Num(r.predicted_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn wire_profile(handle: &ServiceHandle, k: usize) -> WireResult {
    let Some(report) = handle.profile_report(k) else {
        return Err((ErrorCode::BadRequest, "profiling not enabled on this server".to_string()));
    };
    let folded = handle.profile_folded().unwrap_or_default();
    Ok(Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("samples", Json::from(report.samples)),
        ("sweeps", Json::from(report.sweeps)),
        ("torn", Json::from(report.torn)),
        ("truncated", Json::from(report.truncated)),
        ("threads", Json::from(report.threads)),
        ("distinct_stacks", Json::from(report.distinct_stacks)),
        (
            "top",
            Json::Arr(
                report
                    .top
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("tag", Json::from(t.tag.as_str())),
                            ("self", Json::from(t.self_samples)),
                            ("total", Json::from(t.total_samples)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "alloc",
            Json::Arr(
                lite_obs::prof::alloc_table()
                    .iter()
                    .map(|(tag, bytes, allocs)| {
                        Json::obj(vec![
                            ("tag", Json::from(tag.as_str())),
                            ("bytes", Json::from(*bytes)),
                            ("allocs", Json::from(*allocs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("folded", Json::from(folded.as_str())),
    ]))
}

/// Encode one [`lite_obs::WindowStats`] for the wire.
fn window_to_json(w: &lite_obs::WindowStats) -> Json {
    Json::obj(vec![
        ("count", Json::from(w.count)),
        ("rate", Json::Num(w.rate)),
        ("mean_ns", Json::Num(w.mean)),
        ("min_ns", Json::from(w.min)),
        ("max_ns", Json::from(w.max)),
        ("p50_ns", Json::from(w.p50)),
        ("p90_ns", Json::from(w.p90)),
        ("p99_ns", Json::from(w.p99)),
        ("p999_ns", Json::from(w.p999)),
        ("span_s", Json::Num(w.span_s)),
    ])
}

fn wire_slo(handle: &ServiceHandle) -> WireResult {
    let (Some(config), Some(status)) = (handle.slo_config(), handle.slo_status()) else {
        return Err((ErrorCode::BadRequest, "slo not configured on this server".to_string()));
    };
    Ok(Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("objective_ns", Json::from(config.objective_ns)),
        ("target", Json::Num(config.target)),
        ("bucket_s", Json::Num(config.bucket.as_secs_f64())),
        ("burn_fast", Json::Num(status.burn_fast)),
        ("burn_slow", Json::Num(status.burn_slow)),
        ("good_fraction", Json::Num(status.good_fraction)),
        ("alert", Json::Bool(status.alert)),
        ("alert_ticks", Json::from(status.alert_ticks)),
        ("fast", window_to_json(&status.fast)),
        ("slow", window_to_json(&status.slow)),
    ]))
}

/// The `stats` response: the point-in-time summary plus, additively, the
/// per-phase latency breakdown (tracing enabled) and the windowed SLO
/// view (SLO configured) — so operators get both without a Prometheus
/// scrape. Servers without those planes answer exactly as before.
fn stats_with_planes(handle: &ServiceHandle) -> Json {
    let mut doc = stats_to_json(&handle.stats());
    let Json::Obj(pairs) = &mut doc else { return doc };
    let phases = handle.phase_summaries();
    if !phases.is_empty() {
        let arr = phases
            .iter()
            .map(|(name, s)| {
                Json::obj(vec![
                    ("phase", Json::from(*name)),
                    ("count", Json::from(s.count)),
                    ("mean_ns", Json::Num(s.mean)),
                    ("p50_ns", Json::from(s.p50)),
                    ("p90_ns", Json::from(s.p90)),
                    ("p99_ns", Json::from(s.p99)),
                    ("p999_ns", Json::from(s.p999)),
                    ("max_ns", Json::from(s.max)),
                ])
            })
            .collect();
        pairs.push(("phases".to_string(), Json::Arr(arr)));
    }
    if let Some(status) = handle.slo_status() {
        pairs.push((
            "slo".to_string(),
            Json::obj(vec![
                ("alert", Json::Bool(status.alert)),
                ("burn_fast", Json::Num(status.burn_fast)),
                ("burn_slow", Json::Num(status.burn_slow)),
                ("good_fraction", Json::Num(status.good_fraction)),
                ("window", window_to_json(&status.fast)),
            ]),
        ));
    }
    doc
}

fn error_code(err: &ServeError) -> ErrorCode {
    match err {
        ServeError::Overloaded => ErrorCode::Overloaded,
        ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        ServeError::ColdApp(_) => ErrorCode::ColdApp,
        ServeError::ShuttingDown => ErrorCode::ShuttingDown,
        ServeError::Internal(_) => ErrorCode::Internal,
    }
}

fn wire_error(v2: bool, code: ErrorCode, msg: &str) -> Json {
    if v2 {
        Json::obj(vec![
            ("v", Json::from(PROTOCOL_VERSION)),
            ("ok", Json::Bool(false)),
            ("c", Json::from(u64::from(code.code()))),
            ("code", Json::from(code.name())),
            ("error", Json::from(msg)),
        ])
    } else {
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("code", Json::from(code.name())),
            ("error", Json::from(msg)),
        ])
    }
}

fn drift_to_json(d: &DriftSummary) -> Json {
    Json::obj(vec![
        ("samples", Json::from(d.samples)),
        ("mape", Json::Num(d.mape)),
        ("mean_error_s", Json::Num(d.mean_error_s)),
        ("inversion_rate", Json::Num(d.inversion_rate)),
        ("drifted", Json::Bool(d.drifted)),
    ])
}

fn stats_to_json(s: &ServiceStats) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("uptime_s", Json::Num(s.uptime_s)),
        ("version", Json::from(s.version)),
        ("swaps", Json::from(s.swap_count)),
        ("queue_depth", Json::from(s.queue_depth)),
        ("queue_capacity", Json::from(s.queue_capacity)),
        ("workers", Json::from(s.workers)),
        ("feedback", Json::from(s.feedback_len)),
        ("update_batch", Json::from(s.update_batch)),
        ("requests", Json::from(s.requests)),
        (
            "cache",
            Json::obj(vec![
                ("hit_rate", Json::Num(s.cache_hit_rate)),
                ("hits", Json::from(s.cache_hits)),
                ("misses", Json::from(s.cache_misses)),
            ]),
        ),
        ("drift", drift_to_json(&s.drift)),
        ("degraded", Json::Bool(s.degraded)),
        ("backend", Json::from(s.backend)),
        ("updater_failures", Json::from(s.updater_failures)),
        ("fallbacks", Json::from(s.fallbacks)),
    ])
}

fn recommend_to_json(resp: &RecommendResponse) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("version", Json::from(resp.version)),
        ("cached", Json::from(resp.cached)),
        ("scored", Json::from(resp.scored)),
        ("degraded", Json::Bool(resp.degraded)),
        (
            "ranked",
            Json::Arr(
                resp.ranked
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            (
                                "conf",
                                Json::Arr(r.conf.values().iter().map(|&v| Json::Num(v)).collect()),
                            ),
                            ("predicted_s", Json::Num(r.predicted_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Wire parsing

fn parse_app(value: Option<&Json>) -> Result<AppId, (ErrorCode, String)> {
    let name = value
        .and_then(Json::as_str)
        .ok_or_else(|| (ErrorCode::BadRequest, "missing app name".to_string()))?;
    AppId::all()
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| (ErrorCode::BadRequest, format!("unknown app {name:?}")))
}

fn parse_data(value: Option<&Json>) -> Result<DataSpec, (ErrorCode, String)> {
    let obj = value.ok_or_else(|| (ErrorCode::BadRequest, "missing data".to_string()))?;
    let field = |key: &str| obj.get(key).and_then(Json::as_u64).unwrap_or(0);
    let bytes = obj
        .get("bytes")
        .and_then(Json::as_u64)
        .ok_or_else(|| (ErrorCode::BadRequest, "data.bytes required".to_string()))?;
    Ok(DataSpec {
        rows: field("rows"),
        cols: field("cols") as u32,
        iterations: field("iterations") as u32,
        partitions: field("partitions") as u32,
        bytes,
    })
}

fn parse_cluster(value: Option<&Json>) -> Result<ClusterSpec, (ErrorCode, String)> {
    match value {
        Some(Json::Str(name)) => ClusterSpec::all_evaluation_clusters()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| (ErrorCode::BadRequest, format!("unknown cluster preset {name:?}"))),
        Some(obj @ Json::Obj(_)) => {
            let name = obj.get("name").and_then(Json::as_str).unwrap_or("wire-cluster");
            let num = |key: &str| -> Result<f64, (ErrorCode, String)> {
                obj.get(key)
                    .and_then(Json::as_f64)
                    .ok_or((ErrorCode::BadRequest, format!("cluster.{key} required")))
            };
            Ok(ClusterSpec {
                name: name.to_string(),
                nodes: num("nodes")? as u32,
                cores_per_node: num("cores_per_node")? as u32,
                cpu_ghz: num("cpu_ghz")?,
                mem_gb_per_node: num("mem_gb_per_node")?,
                mem_mts: num("mem_mts")?,
                net_gbps: num("net_gbps")?,
            })
        }
        _ => Err((ErrorCode::BadRequest, "missing cluster (preset name or object)".to_string())),
    }
}

fn parse_conf(space: &ConfSpace, value: Option<&Json>) -> Result<SparkConf, (ErrorCode, String)> {
    let items = value
        .and_then(Json::as_arr)
        .ok_or_else(|| (ErrorCode::BadRequest, "missing conf array".to_string()))?;
    if items.len() != NUM_KNOBS {
        return Err((
            ErrorCode::BadRequest,
            format!("conf needs {NUM_KNOBS} values, got {}", items.len()),
        ));
    }
    let mut values = [0.0f64; NUM_KNOBS];
    for (i, item) in items.iter().enumerate() {
        values[i] = item
            .as_f64()
            .ok_or_else(|| (ErrorCode::BadRequest, format!("conf[{i}] is not a number")))?;
    }
    Ok(SparkConf::from_values(space, values))
}

fn parse_result(value: Option<&Json>) -> Result<RunResult, (ErrorCode, String)> {
    let obj = value.ok_or_else(|| (ErrorCode::BadRequest, "missing result".to_string()))?;
    let total_time_s = obj
        .get("total_time_s")
        .and_then(Json::as_f64)
        .ok_or_else(|| (ErrorCode::BadRequest, "result.total_time_s required".to_string()))?;
    let failed = obj.get("failed").and_then(Json::as_bool).unwrap_or(false);
    let stages_json = obj
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or_else(|| (ErrorCode::BadRequest, "result.stages required".to_string()))?;
    let mut stages = Vec::with_capacity(stages_json.len());
    for (i, st) in stages_json.iter().enumerate() {
        let name = st
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| (ErrorCode::BadRequest, format!("stages[{i}].name required")))?;
        let duration_s = st
            .get("duration_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| (ErrorCode::BadRequest, format!("stages[{i}].duration_s required")))?;
        let u = |key: &str| st.get(key).and_then(Json::as_u64).unwrap_or(0);
        stages.push(StageStats {
            stage_id: st.get("stage_id").and_then(Json::as_u64).unwrap_or(i as u64) as usize,
            name: name.to_string(),
            duration_s,
            num_tasks: u("num_tasks") as u32,
            input_bytes: u("input_bytes"),
            shuffle_read_bytes: u("shuffle_read_bytes"),
            shuffle_write_bytes: u("shuffle_write_bytes"),
            spill_bytes: u("spill_bytes"),
            gc_time_s: st.get("gc_time_s").and_then(Json::as_f64).unwrap_or(0.0),
            peak_task_memory: u("peak_task_memory"),
            cached_fraction: st.get("cached_fraction").and_then(Json::as_f64).unwrap_or(1.0),
            tasks: Vec::new(),
        });
    }
    Ok(RunResult {
        total_time_s,
        stages,
        // The wire carries only a failed flag; the concrete reason does not
        // affect feedback extraction.
        failure: failed.then_some(FailureReason::ExecutorOom),
        executors: obj.get("executors").and_then(Json::as_u64).unwrap_or(0) as u32,
        slots: obj.get("slots").and_then(Json::as_u64).unwrap_or(0) as u32,
    })
}

// ---------------------------------------------------------------------------
// Client

/// Builder for a [`Client`]: protocol ceiling, pipelining depth, and
/// per-request trace opt-in, with graceful fallback to JSON against
/// pre-v3 servers.
///
/// ```no_run
/// use lite_serve::net::ClientBuilder;
/// let client = ClientBuilder::new()
///     .pipeline_depth(64)
///     .trace(true)
///     .connect("127.0.0.1:7878")?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    protocol: u64,
    pipeline_depth: usize,
    trace: bool,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder::new()
    }
}

impl ClientBuilder {
    /// Defaults: newest protocol (v3 binary, falling back to the highest
    /// JSON version the server speaks), pipeline depth 32, tracing off.
    pub fn new() -> ClientBuilder {
        ClientBuilder { protocol: proto::PROTOCOL_V3, pipeline_depth: 32, trace: false }
    }

    /// Cap the protocol version: `1`/`2` force the JSON envelopes, `3`
    /// (the default) negotiates the binary protocol when the server
    /// speaks it.
    pub fn protocol(mut self, version: u64) -> ClientBuilder {
        self.protocol = version.max(1);
        self
    }

    /// Client-side pipelining window for [`Client::pipeline`]: at most
    /// this many v3 requests are in flight on the connection at once.
    pub fn pipeline_depth(mut self, depth: usize) -> ClientBuilder {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Opt hot requests into tail-forensics tracing: `recommend` and
    /// `retrieve` requests without an explicit trace id get a generated
    /// one (v2's implicit server-side tracing is unchanged).
    pub fn trace(mut self, on: bool) -> ClientBuilder {
        self.trace = on;
        self
    }

    /// Connect and negotiate. With the default protocol ceiling this
    /// sends a binary `hello` first; a pre-v3 server answers it with a
    /// JSON `bad_request` (the magic byte is not valid UTF-8), which the
    /// client detects and falls back to JSON negotiation on the same
    /// connection.
    pub fn connect<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            version: 1,
            pipeline_depth: self.pipeline_depth,
            trace: self.trace,
            space: ConfSpace::table_iv(),
            next_req: 0,
        };
        if self.protocol >= proto::PROTOCOL_V3 {
            let hello = proto::Request::Hello { max: self.protocol };
            write_frame(&mut client.stream, &proto::encode_request(&hello, 0))?;
            let payload = read_frame(&mut client.stream)?.ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
            })?;
            if payload.first() == Some(&proto::V3_MAGIC) {
                let (_, resp) = proto::decode_response(&payload, &client.space)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                if let proto::Response::Hello { v } = resp {
                    client.version = v.clamp(1, proto::PROTOCOL_V3);
                } else {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected binary hello response",
                    ));
                }
            } else {
                // Pre-v3 server: it answered the binary frame with a JSON
                // bad_request and kept the connection open. Fall back.
                client.negotiate()?;
            }
        } else if self.protocol >= 2 {
            client.negotiate()?;
        }
        Ok(client)
    }
}

/// A blocking TCP client for the serve plane. [`ClientBuilder`] is the
/// full-featured entry point (binary v3 with pipelining and JSON
/// fallback); [`connect`](Client::connect) gives the legacy v1 JSON
/// client, upgradable with [`negotiate`](Client::negotiate).
///
/// [`call`](Client::call) is the typed API: one [`proto::Request`] in,
/// one [`proto::Response`] out, encoded under whatever protocol version
/// the connection negotiated. The historical per-operation methods
/// survive as deprecated wrappers for one release.
pub struct Client {
    stream: TcpStream,
    version: u64,
    pipeline_depth: usize,
    trace: bool,
    space: ConfSpace,
    next_req: u32,
}

impl Client {
    /// Connect to a [`TcpServer`] as a v1 JSON client (no negotiation);
    /// use [`ClientBuilder`] for v3. Kept ungated because the wire-pin
    /// tests rely on a pristine v1 connection.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            version: 1,
            pipeline_depth: 1,
            trace: false,
            space: ConfSpace::table_iv(),
            next_req: 0,
        })
    }

    /// The protocol version requests are encoded with (1 until a
    /// successful [`negotiate`](Client::negotiate) or a v3 handshake via
    /// [`ClientBuilder::connect`]).
    pub fn protocol_version(&self) -> u64 {
        self.version
    }

    /// Send one typed request and block for its typed response.
    ///
    /// On a v3 connection the request travels as a binary frame; on v1/v2
    /// it is encoded as the byte-identical JSON document the legacy
    /// per-op methods produced, and the response document is decoded into
    /// the same [`proto::Response`] shape — callers never branch on the
    /// negotiated version.
    pub fn call(&mut self, request: &proto::Request) -> std::io::Result<proto::Response> {
        let request = self.stamped(request);
        if self.version >= proto::PROTOCOL_V3 {
            let req_id = self.next_req_id();
            write_frame(&mut self.stream, &proto::encode_request(&request, req_id))?;
            loop {
                let payload = self.read_response_payload()?;
                let (rid, resp) = proto::decode_response(&payload, &self.space)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                if rid == req_id {
                    return Ok(resp);
                }
                // A stale response from an abandoned pipeline: skip it.
            }
        }
        let doc = request.to_json(self.version);
        let resp = self.request(&doc)?;
        Ok(proto::Response::from_json(request.op(), &resp, &self.space))
    }

    /// Send a batch of typed requests over one connection, keeping up to
    /// the configured [`pipeline depth`](ClientBuilder::pipeline_depth)
    /// in flight, and return the responses in request order.
    ///
    /// v3 connections genuinely pipeline (responses are correlated by
    /// request id, so server-side completion order does not matter); on
    /// v1/v2 this degrades to a serial loop.
    pub fn pipeline(
        &mut self,
        requests: &[proto::Request],
    ) -> std::io::Result<Vec<proto::Response>> {
        if self.version < proto::PROTOCOL_V3 || requests.len() <= 1 {
            return requests.iter().map(|r| self.call(r)).collect();
        }
        let n = requests.len();
        let first_id = self.next_req.wrapping_add(1);
        let mut out: Vec<Option<proto::Response>> = (0..n).map(|_| None).collect();
        let mut sent = 0usize;
        let mut received = 0usize;
        while received < n {
            while sent < n && sent - received < self.pipeline_depth {
                let request = self.stamped(&requests[sent]);
                let req_id = self.next_req_id();
                write_frame(&mut self.stream, &proto::encode_request(&request, req_id))?;
                sent += 1;
            }
            let payload = self.read_response_payload()?;
            let (rid, resp) = proto::decode_response(&payload, &self.space)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            let idx = rid.wrapping_sub(first_id) as usize;
            if idx < n && out[idx].is_none() {
                out[idx] = Some(resp);
                received += 1;
            }
        }
        Ok(out
            .into_iter()
            .map(|r| {
                r.unwrap_or(proto::Response::Error {
                    code: ErrorCode::Internal,
                    message: "response missing from pipeline".to_string(),
                })
            })
            .collect())
    }

    fn next_req_id(&mut self) -> u32 {
        self.next_req = self.next_req.wrapping_add(1);
        self.next_req
    }

    fn read_response_payload(&mut self) -> std::io::Result<Vec<u8>> {
        read_frame(&mut self.stream)?
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Apply the builder's trace opt-in: hot requests without an explicit
    /// trace id get a generated one (only meaningful from v2 up — v1
    /// frames cannot carry the id).
    fn stamped(&mut self, request: &proto::Request) -> proto::Request {
        let mut request = request.clone();
        if self.trace && self.version >= 2 {
            match &mut request {
                proto::Request::Recommend { trace, .. }
                | proto::Request::Retrieve { trace, .. }
                    if trace.is_none() =>
                {
                    *trace = Some(TraceId::generate().raw());
                }
                _ => {}
            }
        }
        request
    }

    /// `hello`: negotiate the protocol version. The server answers
    /// `min(our max, its max)`; subsequent requests use that envelope.
    pub fn negotiate(&mut self) -> std::io::Result<u64> {
        let resp = self.request(&Json::obj(vec![
            ("op", Json::from(OpCode::Hello.name())),
            ("max", Json::from(PROTOCOL_VERSION)),
        ]))?;
        let v = resp.get("v").and_then(Json::as_u64).unwrap_or(1);
        self.version = v.clamp(1, PROTOCOL_VERSION);
        Ok(self.version)
    }

    /// Encode an operation under the negotiated protocol version (a v3
    /// connection still encodes JSON documents as v2 — the binary version
    /// never appears in a JSON envelope).
    fn op_frame(&self, op: OpCode, mut fields: Vec<(&str, Json)>) -> Json {
        let version = self.version.min(PROTOCOL_VERSION);
        let mut pairs = if version >= 2 {
            vec![("v", Json::from(version)), ("o", Json::from(u64::from(op.code())))]
        } else {
            vec![("op", Json::from(op.name()))]
        };
        pairs.append(&mut fields);
        Json::obj(pairs)
    }

    /// Send one request document and block for its response.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        write_frame(&mut self.stream, request.render().as_bytes())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf-8 frame"))?;
        Json::parse(text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send one operation under the negotiated envelope.
    pub fn request_op(&mut self, op: OpCode, fields: Vec<(&str, Json)>) -> std::io::Result<Json> {
        let frame = self.op_frame(op, fields);
        self.request(&frame)
    }

    /// `ping`: the serving model version.
    #[deprecated(note = "use Client::call with proto::Request::Ping")]
    pub fn ping(&mut self) -> std::io::Result<u64> {
        let resp = self.request_op(OpCode::Ping, Vec::new())?;
        resp.get("version").and_then(Json::as_u64).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "ping response missing version")
        })
    }

    /// `recommend` against a preset cluster; returns the raw response
    /// document (check `"ok"`).
    #[deprecated(note = "use Client::call with proto::Request::Recommend")]
    pub fn recommend(
        &mut self,
        app: AppId,
        data: &DataSpec,
        cluster: &str,
        k: usize,
        seed: u64,
    ) -> std::io::Result<Json> {
        self.request_op(
            OpCode::Recommend,
            vec![
                ("app", Json::from(app.name())),
                ("data", data_to_json(data)),
                ("cluster", Json::from(cluster)),
                ("k", Json::from(k)),
                ("seed", Json::from(seed)),
            ],
        )
    }

    /// `recommend` under a client-chosen trace id (v2 only; requires a
    /// prior [`negotiate`](Client::negotiate)). The server records the
    /// request's path under `trace_id` when tail forensics is enabled and
    /// echoes the id as `"t"` in the response.
    #[allow(clippy::too_many_arguments)]
    #[deprecated(note = "use Client::call with proto::Request::Recommend")]
    pub fn recommend_traced(
        &mut self,
        app: AppId,
        data: &DataSpec,
        cluster: &str,
        k: usize,
        seed: u64,
        trace_id: u64,
    ) -> std::io::Result<Json> {
        self.request_op(
            OpCode::Recommend,
            vec![
                ("t", Json::from(trace_id)),
                ("app", Json::from(app.name())),
                ("data", data_to_json(data)),
                ("cluster", Json::from(cluster)),
                ("k", Json::from(k)),
                ("seed", Json::from(seed)),
            ],
        )
    }

    /// `observe` an executed configuration's outcome against a preset
    /// cluster; returns the raw response document.
    #[deprecated(note = "use Client::call with proto::Request::Observe")]
    pub fn observe(
        &mut self,
        app: AppId,
        data: &DataSpec,
        cluster: &str,
        conf: &SparkConf,
        result: &RunResult,
    ) -> std::io::Result<Json> {
        self.request_op(
            OpCode::Observe,
            vec![
                ("app", Json::from(app.name())),
                ("data", data_to_json(data)),
                ("cluster", Json::from(cluster)),
                ("conf", Json::Arr(conf.values().iter().map(|&v| Json::Num(v)).collect())),
                ("result", result_to_json(result)),
            ],
        )
    }

    /// `stats`: the operational summary document (check `"ok"`).
    #[deprecated(note = "use Client::call with proto::Request::Stats")]
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request_op(OpCode::Stats, Vec::new())
    }

    /// `metrics`: the Prometheus text exposition body.
    #[deprecated(note = "use Client::call with proto::Request::Metrics")]
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let resp = self.request_op(OpCode::Metrics, Vec::new())?;
        resp.get("body").and_then(Json::as_str).map(str::to_string).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "metrics response missing body")
        })
    }

    /// `trace`: the Chrome trace-event document (save to a `.json` file
    /// and open in Perfetto).
    #[deprecated(note = "use Client::call with proto::Request::Trace")]
    pub fn trace(&mut self) -> std::io::Result<Json> {
        let resp = self.request_op(OpCode::Trace, Vec::new())?;
        resp.get("trace").cloned().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "trace response missing trace")
        })
    }

    /// `tailtrace`: the slow-request exemplar reservoir (check `"ok"`;
    /// `"exemplars"` is the slowest-first list with per-phase spans).
    #[deprecated(note = "use Client::call with proto::Request::Tailtrace")]
    pub fn tailtrace(&mut self) -> std::io::Result<Json> {
        self.request_op(OpCode::Tailtrace, Vec::new())
    }

    /// `analyze`: statically extract a named workload's stage templates
    /// and lint diagnostics — the zero-run cold-start onboarding probe.
    #[deprecated(note = "use Client::call with proto::Request::Analyze")]
    pub fn analyze(&mut self, app: AppId) -> std::io::Result<Json> {
        self.request_op(OpCode::Analyze, vec![("app", Json::from(app.name()))])
    }

    /// `analyze` submitted source text directly, with an explicit
    /// iteration count for iterative pipelines.
    #[deprecated(note = "use Client::call with proto::Request::Analyze")]
    pub fn analyze_source(&mut self, source: &str, iterations: u32) -> std::io::Result<Json> {
        self.request_op(
            OpCode::Analyze,
            vec![("source", Json::from(source)), ("iterations", Json::from(u64::from(iterations)))],
        )
    }

    /// `retrieve`: nearest historical runs for a named workload at a
    /// target data/cluster scale, with scale-adapted candidate confs
    /// (v2 only — v1 peers are refused with `BadRequest`). Returns the
    /// raw response document (check `"ok"`).
    #[deprecated(note = "use Client::call with proto::Request::Retrieve")]
    pub fn retrieve(
        &mut self,
        app: AppId,
        data: &DataSpec,
        cluster: &str,
        k: usize,
    ) -> std::io::Result<Json> {
        self.request_op(
            OpCode::Retrieve,
            vec![
                ("app", Json::from(app.name())),
                ("data", data_to_json(data)),
                ("cluster", Json::from(cluster)),
                ("k", Json::from(k)),
            ],
        )
    }

    /// `retrieve` for submitted source text: the zero-execution cold-start
    /// path — the server embeds the source statically and searches the
    /// run index without ever running the job.
    #[deprecated(note = "use Client::call with proto::Request::Retrieve")]
    pub fn retrieve_source(
        &mut self,
        source: &str,
        data: &DataSpec,
        cluster: &str,
        k: usize,
    ) -> std::io::Result<Json> {
        self.request_op(
            OpCode::Retrieve,
            vec![
                ("source", Json::from(source)),
                ("data", data_to_json(data)),
                ("cluster", Json::from(cluster)),
                ("k", Json::from(k)),
            ],
        )
    }

    /// `profile`: the sampling-profiler report — top-`k` self/total tag
    /// table, folded stacks, allocation attribution (v2 only — v1 peers
    /// are refused with `BadRequest`). Returns the raw response document
    /// (check `"ok"`).
    #[deprecated(note = "use Client::call with proto::Request::Profile")]
    pub fn profile(&mut self, k: usize) -> std::io::Result<Json> {
        self.request_op(OpCode::Profile, vec![("k", Json::from(k))])
    }

    /// `slo`: the burn-rate SLO status — windowed quantiles, burn rates,
    /// alert state (v2 only). Returns the raw response document.
    #[deprecated(note = "use Client::call with proto::Request::Slo")]
    pub fn slo(&mut self) -> std::io::Result<Json> {
        self.request_op(OpCode::Slo, Vec::new())
    }

    /// `health`: `Ok(version)` when the server answers `status: "ok"`.
    #[deprecated(note = "use Client::call with proto::Request::Health")]
    pub fn health(&mut self) -> std::io::Result<u64> {
        let resp = self.request_op(OpCode::Health, Vec::new())?;
        match (resp.get("status").and_then(Json::as_str), resp.get("version")) {
            (Some("ok"), Some(v)) => v.as_u64().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad health version")
            }),
            _ => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "unhealthy response")),
        }
    }
}

/// Encode a [`DataSpec`] for the wire.
pub fn data_to_json(data: &DataSpec) -> Json {
    Json::obj(vec![
        ("rows", Json::from(data.rows)),
        ("cols", Json::from(data.cols)),
        ("iterations", Json::from(data.iterations)),
        ("partitions", Json::from(data.partitions)),
        ("bytes", Json::from(data.bytes)),
    ])
}

/// Encode a [`RunResult`] for the wire (stage names and durations; the
/// observability-only stage fields travel too so nothing is lost).
pub fn result_to_json(result: &RunResult) -> Json {
    Json::obj(vec![
        ("total_time_s", Json::Num(result.total_time_s)),
        ("failed", Json::Bool(result.failure.is_some())),
        ("executors", Json::from(result.executors)),
        ("slots", Json::from(result.slots)),
        (
            "stages",
            Json::Arr(
                result
                    .stages
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("stage_id", Json::from(s.stage_id)),
                            ("name", Json::from(s.name.as_str())),
                            ("duration_s", Json::Num(s.duration_s)),
                            ("num_tasks", Json::from(s.num_tasks)),
                            ("input_bytes", Json::from(s.input_bytes)),
                            ("shuffle_read_bytes", Json::from(s.shuffle_read_bytes)),
                            ("shuffle_write_bytes", Json::from(s.shuffle_write_bytes)),
                            ("spill_bytes", Json::from(s.spill_bytes)),
                            ("gc_time_s", Json::Num(s.gc_time_s)),
                            ("peak_task_memory", Json::from(s.peak_task_memory)),
                            ("cached_fraction", Json::Num(s.cached_fraction)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"{\"op\":\"ping\"}");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME + 1).to_be_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn wire_parsers_roundtrip_domain_types() {
        let data = AppId::PageRank.dataset(lite_workloads::data::SizeTier::Valid);
        let parsed = parse_data(Some(&data_to_json(&data))).unwrap();
        assert_eq!(parsed, data);

        let cluster = parse_cluster(Some(&Json::from("cluster-b"))).unwrap();
        assert_eq!(cluster, ClusterSpec::cluster_b());
        let custom = Json::parse(
            r#"{"name":"x","nodes":2,"cores_per_node":8,"cpu_ghz":3.0,
                "mem_gb_per_node":32,"mem_mts":2400,"net_gbps":10}"#,
        )
        .unwrap();
        assert_eq!(parse_cluster(Some(&custom)).unwrap().nodes, 2);

        let space = ConfSpace::table_iv();
        let conf = space.default_conf();
        let wire = Json::Arr(conf.values().iter().map(|&v| Json::Num(v)).collect());
        assert_eq!(parse_conf(&space, Some(&wire)).unwrap(), conf);

        assert_eq!(parse_app(Some(&Json::from("KMeans"))).unwrap(), AppId::KMeans);
        assert!(parse_app(Some(&Json::from("NoSuchApp"))).is_err());
    }

    #[test]
    fn run_results_roundtrip_the_fields_feedback_needs() {
        let result = RunResult {
            total_time_s: 42.5,
            stages: vec![StageStats {
                stage_id: 3,
                name: "reduce".into(),
                duration_s: 21.25,
                num_tasks: 64,
                input_bytes: 1024,
                shuffle_read_bytes: 256,
                shuffle_write_bytes: 128,
                spill_bytes: 0,
                gc_time_s: 0.5,
                peak_task_memory: 99,
                cached_fraction: 0.75,
                tasks: Vec::new(),
            }],
            failure: None,
            executors: 4,
            slots: 16,
        };
        let parsed = parse_result(Some(&result_to_json(&result))).unwrap();
        assert_eq!(parsed, result);
    }
}

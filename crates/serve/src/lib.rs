//! # lite-serve — the LITE tuner as a concurrent recommendation service
//!
//! The paper's Step 1–4 loop (Section IV) lifted from a one-shot script
//! into a server: recommendations are answered by a pool of worker threads
//! in milliseconds while feedback-driven model updates happen continuously
//! in the background. Four pieces:
//!
//! * [`slot`] — a versioned model registry: an immutable
//!   [`Arc<ModelSnapshot>`](snapshot::ModelSnapshot) behind
//!   [`slot::VersionedSlot`], whose steady-state read is one atomic load;
//!   a background updater thread drains observed feedback, runs the
//!   paper's Adaptive Model Update on a clone, and hot-swaps a new
//!   version without stalling readers.
//! * [`service`] — a worker pool over a bounded request queue with
//!   per-request deadlines and explicit load-shedding: a full queue
//!   rejects with [`service::ServeError::Overloaded`] instead of queuing
//!   unboundedly.
//! * [`cache`] — a sharded LRU prediction cache keyed by
//!   `(app, data, cluster, conf)`; entries carry the model version that
//!   produced them, so every hot-swap invalidates the cache for free.
//! * batched NECS scoring — requests score all their candidates through
//!   [`lite_core::necs::Necs::predict_app_batch`], one tape per request
//!   instead of one per candidate.
//! * [`monitor`] — prediction-drift monitoring: a lock-free ring of
//!   `(predicted, observed)` runtime pairs fed by `observe` feedback,
//!   summarized into rolling MAPE / signed error / rank-inversion rate.
//!   The updater retrains on *drift or batch-full*, whichever comes
//!   first, so a model that stops ranking well is replaced before the
//!   blind feedback count would have noticed.
//!
//! Requests arrive over an in-process [`service::ServiceHandle`] or the
//! length-prefixed TCP front-end in [`net`], which reuses
//! [`lite_obs::Json`] for wire encoding and also answers the admin ops
//! (`stats`, `metrics` as Prometheus text, `trace` as Chrome trace JSON,
//! `health`, `tailtrace` for slow-request exemplars). Everything is
//! `std`-only on top of the workspace crates.
//!
//! With [`service::TraceConfig`] enabled, every v2 `recommend` is traced
//! end to end: each hop — frame read, parse, enqueue, queue wait, dequeue,
//! snapshot load, cache lookup, scoring, serialization, socket write —
//! records a [`lite_obs::PhaseSpan`] into lock-free per-thread rings and a
//! per-phase latency histogram, and the slowest requests are retained in
//! full as [`lite_obs::Exemplar`]s served by the `tailtrace` admin op.

pub mod cache;
pub mod monitor;
pub mod net;
pub mod proto;
pub mod resilience;
pub mod service;
pub mod slot;
pub mod snapshot;

pub use cache::PredictionCache;
pub use monitor::{DriftConfig, DriftMonitor, DriftSummary};
pub use net::{Client, ClientBuilder, ErrorCode, OpCode, TcpServer, MAX_FRAME, PROTOCOL_VERSION};
pub use proto::{
    AnalyzeTarget, ClusterRef, Neighbor, Request, Response, RetrieveTarget, PROTOCOL_V3,
};
pub use resilience::{
    BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker, ClientError, ResilientClient,
    RetryPolicy,
};
pub use service::{
    ConfigError, ProtocolConfig, RecommendResponse, RetrieveResponse, ServeConfig,
    ServeConfigBuilder, ServeError, Service, ServiceHandle, ServiceStats, TraceConfig,
};
pub use slot::{SlotReader, VersionedSlot};
pub use snapshot::ModelSnapshot;

/// Compile-time `Send + Sync` assertions: every type that crosses the
/// worker/updater/front-end thread boundaries must be safe to share. A
/// non-`Sync` field sneaking into the model stack fails the build here,
/// not in production.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<snapshot::ModelSnapshot>();
    assert_send_sync::<slot::VersionedSlot<snapshot::ModelSnapshot>>();
    assert_send_sync::<service::Service>();
    assert_send_sync::<service::ServiceHandle>();
    assert_send_sync::<cache::PredictionCache>();
    assert_send_sync::<service::ServeError>();
    assert_send_sync::<monitor::DriftMonitor>();
    assert_send_sync::<monitor::DriftSummary>();
    assert_send_sync::<resilience::CircuitBreaker>();
    assert_send_sync::<resilience::ResilientClient>();
    assert_send_sync::<lite_sparksim::fault::FaultInjector>();
};

//! Client-side resilience: retries with decorrelated-jitter backoff and
//! per-target circuit breaking over the framed TCP protocol.
//!
//! The [`RetryPolicy`] spaces attempts with *decorrelated jitter*
//! (`sleep = min(cap, uniform(base, prev * 3))`), which spreads retry
//! storms better than plain exponential backoff while still growing
//! geometrically in expectation. Jitter randomness derives from the
//! simulator's SplitMix64 ([`lite_sparksim::fault::mix64`]), so a fixed
//! seed reproduces an exact retry schedule.
//!
//! The [`CircuitBreaker`] is a windowed failure-rate breaker with the
//! classic three states: Closed (all traffic), Open (no traffic until a
//! cooldown passes), HalfOpen (a bounded probe quota decides whether the
//! target recovered). Every method takes an explicit `now: Instant`, so
//! tests — including the property tests — drive synthetic clocks instead
//! of sleeping.
//!
//! [`ResilientClient`] composes both over [`Client`](crate::net::Client):
//! one breaker per target address, reconnect on torn frames or dead
//! connections, protocol-v2 negotiation on every fresh connection, and
//! retry across targets until the policy is exhausted.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use lite_obs::Json;
use lite_sparksim::fault::{mix64, unit64};

use crate::net::{Client, ErrorCode, OpCode};
use crate::proto;

// ---------------------------------------------------------------------------
// Retry with decorrelated jitter

/// Retry schedule: total attempts plus the backoff shape between them.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: usize,
    /// Smallest sleep between attempts.
    pub base: Duration,
    /// Largest sleep between attempts.
    pub cap: Duration,
    /// Seed for the jitter stream; a fixed seed reproduces the schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            seed: 0x5EED_BACC,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based), given the previous
    /// sleep: decorrelated jitter, `min(cap, uniform(base, prev * 3))`.
    /// Always within `[base, cap]` (assuming `base <= cap`; an inverted
    /// pair collapses to `cap`).
    pub fn backoff(&self, attempt: usize, prev: Duration) -> Duration {
        let cap = self.cap.max(self.base);
        let hi = prev.saturating_mul(3).clamp(self.base, cap);
        let u = unit64(mix64(self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        (self.base + hi.saturating_sub(self.base).mul_f64(u)).min(cap)
    }

    /// Run `op` until it succeeds or the attempts are exhausted, sleeping
    /// the jittered backoff between failures. `op` receives the 0-based
    /// attempt index.
    pub fn run<T, E>(&self, mut op: impl FnMut(usize) -> Result<T, E>) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut prev = self.base;
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 >= attempts => return Err(e),
                Err(_) => {
                    let d = self.backoff(attempt, prev);
                    prev = d;
                    std::thread::sleep(d);
                    attempt += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Outcomes in the rolling failure-rate window.
    pub window: usize,
    /// Outcomes required before the breaker may open (avoids opening on
    /// the first failure of a cold window).
    pub min_samples: usize,
    /// Open when the windowed failure rate reaches this fraction.
    pub failure_threshold: f64,
    /// How long an Open breaker blocks before admitting probes.
    pub cooldown: Duration,
    /// Requests admitted in HalfOpen before a verdict: all must succeed
    /// to close; any failure reopens.
    pub probe_quota: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(200),
            probe_quota: 2,
        }
    }
}

/// The breaker's admission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally; outcomes feed the failure window.
    Closed,
    /// Rejecting everything until the cooldown elapses.
    Open,
    /// Admitting up to `probe_quota` probes to test recovery.
    HalfOpen,
}

/// Lifetime transition counts (for assertions and operator visibility).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Closed/HalfOpen → Open.
    pub opened: u64,
    /// Open → HalfOpen.
    pub half_opened: u64,
    /// HalfOpen → Closed (all probes succeeded).
    pub closed: u64,
}

/// A windowed failure-rate circuit breaker. All methods take an explicit
/// `now` so tests can drive a synthetic clock; production callers pass
/// `Instant::now()`.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling outcome window, `true` = failure.
    window: VecDeque<bool>,
    opened_at: Option<Instant>,
    /// Probes admitted since entering HalfOpen.
    probes_admitted: usize,
    /// Probe successes since entering HalfOpen.
    probe_successes: usize,
    transitions: BreakerTransitions,
}

impl CircuitBreaker {
    /// A Closed breaker with an empty window.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            opened_at: None,
            probes_admitted: 0,
            probe_successes: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// Current state, after applying any cooldown expiry at `now` (an Open
    /// breaker past its cooldown reports HalfOpen only once `allow` runs;
    /// this accessor is side-effect free).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime transition counts.
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// Windowed failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&f| f).count() as f64 / self.window.len() as f64
    }

    /// May a request proceed at `now`? Open→HalfOpen happens here once
    /// the cooldown elapses; HalfOpen admits at most `probe_quota`
    /// requests until their outcomes arrive.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let expired =
                    self.opened_at.is_some_and(|at| now.duration_since(at) >= self.config.cooldown);
                if !expired {
                    return false;
                }
                self.state = BreakerState::HalfOpen;
                self.transitions.half_opened += 1;
                self.probes_admitted = 0;
                self.probe_successes = 0;
                self.admit_probe()
            }
            BreakerState::HalfOpen => self.admit_probe(),
        }
    }

    fn admit_probe(&mut self) -> bool {
        if self.probes_admitted < self.config.probe_quota.max(1) {
            self.probes_admitted += 1;
            true
        } else {
            false
        }
    }

    /// Report a successful outcome.
    pub fn on_success(&mut self, _now: Instant) {
        match self.state {
            BreakerState::Closed => self.push_outcome(false),
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.probe_quota.max(1) {
                    // Every probe came back healthy: close with a clean
                    // window so stale failures cannot instantly reopen.
                    self.state = BreakerState::Closed;
                    self.transitions.closed += 1;
                    self.window.clear();
                    self.opened_at = None;
                }
            }
            // A success finishing after the breaker reopened carries no
            // signal about the *current* outage.
            BreakerState::Open => {}
        }
    }

    /// Report a failed outcome; may open the breaker.
    pub fn on_failure(&mut self, now: Instant) {
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(true);
                if self.window.len() >= self.config.min_samples.max(1)
                    && self.failure_rate() >= self.config.failure_threshold
                {
                    self.trip(now);
                }
            }
            // Any probe failure means the target has not recovered.
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.transitions.opened += 1;
        self.opened_at = Some(now);
        self.probes_admitted = 0;
        self.probe_successes = 0;
    }

    fn push_outcome(&mut self, failed: bool) {
        if self.window.len() >= self.config.window.max(1) {
            self.window.pop_front();
        }
        self.window.push_back(failed);
    }
}

// ---------------------------------------------------------------------------
// Resilient client

/// Why a [`ResilientClient`] request ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientError {
    /// The server answered with a non-retryable rejection (bad request,
    /// cold app): retrying the same request cannot help.
    Rejected(ErrorCode),
    /// Every attempt failed. `last` is the final wire error code, or
    /// `None` when the last failure was transport-level (torn frame,
    /// refused connection) or an open breaker.
    Exhausted {
        /// Attempts made.
        attempts: usize,
        /// Last structured wire error, if the transport survived.
        last: Option<ErrorCode>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(code) => write!(f, "rejected: {}", code.name()),
            ClientError::Exhausted { attempts, last: Some(code) } => {
                write!(f, "exhausted after {attempts} attempts (last: {})", code.name())
            }
            ClientError::Exhausted { attempts, last: None } => {
                write!(f, "exhausted after {attempts} attempts (transport failures)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

struct Target {
    addr: SocketAddr,
    breaker: CircuitBreaker,
    conn: Option<Client>,
}

/// A retrying, circuit-breaking, reconnecting client over the framed
/// protocol. Holds one breaker and one (lazily re-established, v2
/// negotiated) connection per target address.
pub struct ResilientClient {
    targets: Vec<Target>,
    policy: RetryPolicy,
    /// Rotates the starting target so load spreads when several are
    /// healthy.
    cursor: usize,
}

impl ResilientClient {
    /// A client over one or more equivalent targets.
    pub fn new(
        addrs: Vec<SocketAddr>,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> ResilientClient {
        ResilientClient {
            targets: addrs
                .into_iter()
                .map(|addr| Target {
                    addr,
                    breaker: CircuitBreaker::new(breaker.clone()),
                    conn: None,
                })
                .collect(),
            policy,
            cursor: 0,
        }
    }

    /// A client over a single target.
    pub fn single(
        addr: SocketAddr,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> ResilientClient {
        ResilientClient::new(vec![addr], policy, breaker)
    }

    /// The breaker state per target, in construction order.
    pub fn breaker_states(&self) -> Vec<(SocketAddr, BreakerState)> {
        self.targets.iter().map(|t| (t.addr, t.breaker.state())).collect()
    }

    /// Transition counts summed across targets.
    pub fn breaker_transitions(&self) -> BreakerTransitions {
        let mut sum = BreakerTransitions::default();
        for t in &self.targets {
            sum.opened += t.breaker.transitions().opened;
            sum.half_opened += t.breaker.transitions().half_opened;
            sum.closed += t.breaker.transitions().closed;
        }
        sum
    }

    /// Issue one typed request with retries, backoff, reconnection, and
    /// circuit breaking. A structured [`proto::Response::Error`] either
    /// counts against the retry budget (retryable codes) or surfaces
    /// immediately as [`ClientError::Rejected`] (bad request, cold app);
    /// transport failures drop the connection and reconnect next attempt.
    pub fn call(&mut self, request: &proto::Request) -> Result<proto::Response, ClientError> {
        self.run_attempts(|conn| {
            let resp = conn.call(request).map_err(|_| Attempt::Transport)?;
            match resp {
                proto::Response::Error { code, .. } => Err(Attempt::classify(code)),
                ok => Ok(ok),
            }
        })
    }

    /// Issue one operation with retries, backoff, reconnection, and
    /// circuit breaking. Returns the decoded response document on any
    /// `"ok":true` answer.
    #[deprecated(note = "use ResilientClient::call with proto::Request")]
    pub fn request_op(
        &mut self,
        op: OpCode,
        fields: Vec<(&str, Json)>,
    ) -> Result<Json, ClientError> {
        self.run_attempts(|conn| {
            let resp = conn
                .request_op(op, fields.iter().map(|(k, v)| (*k, v.clone())).collect())
                .map_err(|_| Attempt::Transport)?;
            if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                return Ok(resp);
            }
            Err(Attempt::classify(ErrorCode::from_response(&resp).unwrap_or(ErrorCode::Internal)))
        })
    }

    /// The shared attempt loop: backoff between attempts, breaker-gated
    /// round-robin target choice, lazy (re)connection, and breaker
    /// feedback driven by how `once` fails.
    fn run_attempts<T>(
        &mut self,
        mut once: impl FnMut(&mut Client) -> Result<T, Attempt>,
    ) -> Result<T, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut prev = self.policy.base;
        let mut last_code: Option<ErrorCode> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let d = self.policy.backoff(attempt - 1, prev);
                prev = d;
                std::thread::sleep(d);
            }
            let now = Instant::now();
            let Some(idx) = self.pick_target(now) else {
                // Every breaker is open: count the attempt, wait, retry —
                // a cooldown may expire before the policy is exhausted.
                continue;
            };
            let outcome = Self::connect_target(&mut self.targets[idx]).and_then(&mut once);
            match outcome {
                Ok(value) => {
                    self.targets[idx].breaker.on_success(Instant::now());
                    return Ok(value);
                }
                Err(Attempt::Transport) => {
                    // Torn frame, dead or refused connection: the session
                    // is unusable; reconnect on the next attempt.
                    self.targets[idx].conn = None;
                    self.targets[idx].breaker.on_failure(Instant::now());
                }
                Err(Attempt::Retryable(code)) => {
                    last_code = Some(code);
                    self.targets[idx].breaker.on_failure(Instant::now());
                }
                Err(Attempt::Fatal(code)) => {
                    // The service is healthy — the request itself was
                    // refused. Feed the breaker a success and stop.
                    self.targets[idx].breaker.on_success(Instant::now());
                    return Err(ClientError::Rejected(code));
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last: last_code })
    }

    /// The next target whose breaker admits a request, round-robin.
    fn pick_target(&mut self, now: Instant) -> Option<usize> {
        let n = self.targets.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if self.targets[idx].breaker.allow(now) {
                self.cursor = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// Ensure `target` holds a live, negotiated connection and borrow it.
    fn connect_target(target: &mut Target) -> Result<&mut Client, Attempt> {
        if target.conn.is_none() {
            let mut client = Client::connect(target.addr).map_err(|_| Attempt::Transport)?;
            // Negotiate v2 on every fresh connection; a v1-only server
            // answers 1 and the client keeps speaking v1.
            client.negotiate().map_err(|_| Attempt::Transport)?;
            target.conn = Some(client);
        }
        target.conn.as_mut().ok_or(Attempt::Transport)
    }
}

/// One attempt's failure mode (internal).
enum Attempt {
    /// Connection-level failure; reconnect next time.
    Transport,
    /// Structured error worth retrying (overload, deadline, shutdown...).
    Retryable(ErrorCode),
    /// Structured error retrying cannot fix.
    Fatal(ErrorCode),
}

impl Attempt {
    /// Sort a structured error code into retryable vs fatal.
    fn classify(code: ErrorCode) -> Attempt {
        match code {
            ErrorCode::BadRequest | ErrorCode::ColdApp => Attempt::Fatal(code),
            retryable => Attempt::Retryable(retryable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(50),
            probe_quota: 2,
        }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(t0));
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Open, "2/2 failures past min_samples");
        assert!(!b.allow(t0), "open rejects immediately");
        assert!(!b.allow(t0 + Duration::from_millis(49)), "open rejects inside cooldown");
        let t1 = t0 + Duration::from_millis(51);
        assert!(b.allow(t1), "cooldown expiry admits the first probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(t1), "second probe within quota");
        assert!(!b.allow(t1), "quota exhausted until outcomes arrive");
        b.on_success(t1);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one of two probes back");
        b.on_success(t1);
        assert_eq!(b.state(), BreakerState::Closed, "all probes healthy");
        let tr = b.transitions();
        assert_eq!((tr.opened, tr.half_opened, tr.closed), (1, 1, 1));
    }

    #[test]
    fn halfopen_failure_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        let t1 = t0 + Duration::from_millis(60);
        assert!(b.allow(t1));
        b.on_failure(t1);
        assert_eq!(b.state(), BreakerState::Open, "probe failure reopens");
        assert!(!b.allow(t1 + Duration::from_millis(49)), "cooldown restarted from reopen");
        assert!(b.allow(t1 + Duration::from_millis(51)));
        assert_eq!(b.transitions().opened, 2);
    }

    #[test]
    fn below_threshold_failures_keep_the_breaker_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 0.9, ..cfg() });
        let t0 = Instant::now();
        for i in 0..20 {
            if i % 2 == 0 {
                b.on_failure(t0);
            } else {
                b.on_success(t0);
            }
            assert_eq!(b.state(), BreakerState::Closed, "50% < 90% threshold");
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let p = RetryPolicy::default();
        let q = RetryPolicy::default();
        let mut prev = p.base;
        for attempt in 0..12 {
            let a = p.backoff(attempt, prev);
            let b = q.backoff(attempt, prev);
            assert_eq!(a, b, "same seed, same schedule");
            prev = a;
        }
        let shifted = RetryPolicy { seed: 1, ..RetryPolicy::default() };
        let differs = (0..12).any(|i| shifted.backoff(i, p.base) != p.backoff(i, p.base));
        assert!(differs, "different seeds should jitter differently");
    }

    #[test]
    fn retry_run_stops_on_success_and_exhausts_on_failure() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            seed: 7,
        };
        let mut calls = 0;
        let ok: Result<u32, ()> = p.run(|attempt| {
            calls += 1;
            if attempt == 1 {
                Ok(42)
            } else {
                Err(())
            }
        });
        assert_eq!(ok, Ok(42));
        assert_eq!(calls, 2);

        let mut calls = 0;
        let err: Result<(), u32> = p.run(|_| {
            calls += 1;
            Err(calls)
        });
        assert_eq!(err, Err(3), "last error surfaces after all attempts");
    }
}

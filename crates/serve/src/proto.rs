//! The typed request/response surface and the protocol v3 binary codec.
//!
//! One [`Request`]/[`Response`] enum pair covers every operation the serve
//! plane speaks — recommend/observe/retrieve plus the admin family — and
//! both codecs serialize it: the JSON envelopes (v1/v2, byte-identical to
//! the historical per-method client shims) and the v3 binary frames. The
//! [`Client`](crate::net::Client) calls [`Request::to_json`] or
//! [`encode_request`] depending on the negotiated version; the server's
//! reactor decodes v3 frames with [`decode_request`] and answers with the
//! `encode_*_response` family.
//!
//! ## v3 frame layout
//!
//! A v3 frame rides inside the same outer transport framing as JSON (a
//! 4-byte big-endian payload length), distinguished by its first payload
//! byte: JSON documents start with `{` (0x7B), v3 frames with the magic
//! byte 0xB3. The payload is a fixed 16-byte little-endian header followed
//! by an op-specific body:
//!
//! ```text
//! offset  size  field
//! 0       1     magic 0xB3
//! 1       1     protocol version (3)
//! 2       1     op code (the shared OpCode table)
//! 3       1     flags: bit0 = traced, bit1 = error response
//! 4       4     request id (u32 LE) — pipelining correlation tag
//! 8       8     trace id (u64 LE; meaningful when bit0 is set)
//! 16      ...   body
//! ```
//!
//! Hot ops (recommend/observe/retrieve, plus ping/hello) use fixed binary
//! body layouts decoded by bounds-checked slice views — no intermediate
//! JSON value exists on the hot path. Admin responses (stats, metrics,
//! trace, health, analyze, tailtrace, profile, slo) carry the rendered v2
//! JSON success document as the body: those ops are not hot, and reusing
//! the JSON renderers keeps one source of truth for their shapes. Error
//! responses set flags bit1 and carry `code:u8` + UTF-8 message.
//!
//! Multi-byte integers and floats are little-endian throughout the body;
//! floats travel as `f64` bit patterns. Strings are length-prefixed
//! (u16 for names, u32 for source text). A decoder rejects any frame with
//! trailing bytes, so round-trips are bit-exact.

use lite_core::recommend::RankedCandidate;
use lite_obs::Json;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf, NUM_KNOBS};
use lite_sparksim::result::{FailureReason, RunResult, StageStats};
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

use crate::net::{data_to_json, result_to_json, ErrorCode, OpCode, PROTOCOL_VERSION};
use crate::service::{RecommendResponse, RetrieveResponse};

/// First payload byte of a v3 binary frame (never a valid JSON start).
pub const V3_MAGIC: u8 = 0xB3;

/// The binary protocol version negotiated by a binary `hello`.
pub const PROTOCOL_V3: u64 = 3;

/// Fixed v3 header size, bytes.
pub const V3_HEADER: usize = 16;

/// Header flag: the request carries a trace id / the response echoes one.
pub const FLAG_TRACED: u8 = 1;

/// Header flag: the response is an error frame (`code:u8` + message body).
pub const FLAG_ERROR: u8 = 2;

// ---------------------------------------------------------------------------
// Typed surface

/// A cluster reference: a server-known preset name, or a full
/// specification for clusters the server has never seen.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterRef {
    /// A preset name (`"cluster-a"`/`"cluster-b"`/`"cluster-c"`).
    Preset(String),
    /// A full Table III specification.
    Spec(ClusterSpec),
}

impl ClusterRef {
    /// Wrap a [`ClusterSpec`], collapsing to the preset name when the spec
    /// is one of the evaluation presets (keeps JSON encodings minimal).
    pub fn from_spec(spec: &ClusterSpec) -> ClusterRef {
        for preset in ClusterSpec::all_evaluation_clusters() {
            if preset == *spec {
                return ClusterRef::Preset(preset.name.clone());
            }
        }
        ClusterRef::Spec(spec.clone())
    }

    fn to_json(&self) -> Json {
        match self {
            ClusterRef::Preset(name) => Json::from(name.as_str()),
            ClusterRef::Spec(c) => Json::obj(vec![
                ("name", Json::from(c.name.as_str())),
                ("nodes", Json::from(u64::from(c.nodes))),
                ("cores_per_node", Json::from(u64::from(c.cores_per_node))),
                ("cpu_ghz", Json::Num(c.cpu_ghz)),
                ("mem_gb_per_node", Json::Num(c.mem_gb_per_node)),
                ("mem_mts", Json::Num(c.mem_mts)),
                ("net_gbps", Json::Num(c.net_gbps)),
            ]),
        }
    }
}

/// What a `retrieve` searches by: a server-known app, or raw source text
/// the server embeds statically.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrieveTarget {
    /// Nearest runs for a named workload.
    App(AppId),
    /// Nearest runs for submitted source text (zero-execution cold start).
    Source(String),
}

/// What an `analyze` extracts from.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeTarget {
    /// A named workload's bundled source.
    App(AppId),
    /// Submitted source text with an explicit iteration count.
    Source {
        /// The application source to extract stages from.
        source: String,
        /// Iteration count for iterative pipelines.
        iterations: u32,
    },
}

/// Every operation the serve plane accepts, as one typed enum. Encoded by
/// [`Request::to_json`] (v1/v2) or [`encode_request`] (v3).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness + serving version.
    Ping,
    /// Version negotiation: the highest protocol version the client speaks.
    Hello {
        /// Client's maximum supported protocol version.
        max: u64,
    },
    /// Top-k recommendation.
    Recommend {
        /// Target workload.
        app: AppId,
        /// Target data scale.
        data: DataSpec,
        /// Target cluster.
        cluster: ClusterRef,
        /// How many candidates to return.
        k: usize,
        /// Candidate-sampling seed.
        seed: u64,
        /// Optional nonzero trace id for tail forensics.
        trace: Option<u64>,
    },
    /// Executed-configuration feedback.
    Observe {
        /// Workload that ran.
        app: AppId,
        /// Data scale it ran at.
        data: DataSpec,
        /// Cluster it ran on.
        cluster: ClusterRef,
        /// The configuration that was executed.
        conf: SparkConf,
        /// The observed outcome.
        result: Box<RunResult>,
    },
    /// Zero-execution cold-start retrieval (protocol v2+).
    Retrieve {
        /// What to search by.
        target: RetrieveTarget,
        /// Target data scale.
        data: DataSpec,
        /// Target cluster.
        cluster: ClusterRef,
        /// How many neighbors to retrieve.
        k: usize,
        /// Optional nonzero trace id for tail forensics.
        trace: Option<u64>,
    },
    /// Static stage extraction + lints.
    Analyze {
        /// What to extract from.
        target: AnalyzeTarget,
    },
    /// Sampling-profiler report (protocol v2+).
    Profile {
        /// Top-k tags to report.
        k: usize,
    },
    /// Operational summary.
    Stats,
    /// Prometheus text exposition.
    Metrics,
    /// Chrome trace-event JSON.
    Trace,
    /// Probe endpoint.
    Health,
    /// Slow-request exemplars.
    Tailtrace,
    /// Burn-rate SLO status (protocol v2+).
    Slo,
}

impl Request {
    /// The operation this request performs.
    pub fn op(&self) -> OpCode {
        match self {
            Request::Ping => OpCode::Ping,
            Request::Hello { .. } => OpCode::Hello,
            Request::Recommend { .. } => OpCode::Recommend,
            Request::Observe { .. } => OpCode::Observe,
            Request::Retrieve { .. } => OpCode::Retrieve,
            Request::Analyze { .. } => OpCode::Analyze,
            Request::Profile { .. } => OpCode::Profile,
            Request::Stats => OpCode::Stats,
            Request::Metrics => OpCode::Metrics,
            Request::Trace => OpCode::Trace,
            Request::Health => OpCode::Health,
            Request::Tailtrace => OpCode::Tailtrace,
            Request::Slo => OpCode::Slo,
        }
    }

    /// The trace id riding with this request, if any.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            Request::Recommend { trace, .. } | Request::Retrieve { trace, .. } => *trace,
            _ => None,
        }
    }

    /// Encode as a v1 (`version == 1`) or v2 (`version >= 2`) JSON
    /// document, byte-identical to what the historical per-method client
    /// shims produced: the envelope first (`"op"` by name for v1,
    /// `"v"`/`"o"` numeric for v2), then the payload fields in their
    /// pinned order, with the optional `"t"` trace id leading the payload.
    pub fn to_json(&self, version: u64) -> Json {
        let mut fields: Vec<(&str, Json)> = Vec::new();
        match self {
            Request::Ping
            | Request::Stats
            | Request::Metrics
            | Request::Trace
            | Request::Health
            | Request::Tailtrace
            | Request::Slo => {}
            Request::Hello { max } => fields.push(("max", Json::from(*max))),
            Request::Recommend { app, data, cluster, k, seed, trace } => {
                if let Some(t) = trace {
                    if version >= 2 {
                        fields.push(("t", Json::from(*t)));
                    }
                }
                fields.push(("app", Json::from(app.name())));
                fields.push(("data", data_to_json(data)));
                fields.push(("cluster", cluster.to_json()));
                fields.push(("k", Json::from(*k)));
                fields.push(("seed", Json::from(*seed)));
            }
            Request::Observe { app, data, cluster, conf, result } => {
                fields.push(("app", Json::from(app.name())));
                fields.push(("data", data_to_json(data)));
                fields.push(("cluster", cluster.to_json()));
                fields.push((
                    "conf",
                    Json::Arr(conf.values().iter().map(|&v| Json::Num(v)).collect()),
                ));
                fields.push(("result", result_to_json(result)));
            }
            Request::Retrieve { target, data, cluster, k, trace } => {
                if let Some(t) = trace {
                    if version >= 2 {
                        fields.push(("t", Json::from(*t)));
                    }
                }
                match target {
                    RetrieveTarget::App(app) => fields.push(("app", Json::from(app.name()))),
                    RetrieveTarget::Source(src) => {
                        fields.push(("source", Json::from(src.as_str())))
                    }
                }
                fields.push(("data", data_to_json(data)));
                fields.push(("cluster", cluster.to_json()));
                fields.push(("k", Json::from(*k)));
            }
            Request::Analyze { target } => match target {
                AnalyzeTarget::App(app) => fields.push(("app", Json::from(app.name()))),
                AnalyzeTarget::Source { source, iterations } => {
                    fields.push(("source", Json::from(source.as_str())));
                    fields.push(("iterations", Json::from(u64::from(*iterations))));
                }
            },
            Request::Profile { k } => fields.push(("k", Json::from(*k))),
        }
        let op = self.op();
        let mut pairs = if version >= 2 {
            vec![
                ("v", Json::from(version.min(PROTOCOL_VERSION))),
                ("o", Json::from(u64::from(op.code()))),
            ]
        } else {
            vec![("op", Json::from(op.name()))]
        };
        pairs.append(&mut fields);
        Json::obj(pairs)
    }
}

/// A retrieval neighbor as the wire carries it.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// Application of the historical run.
    pub app: AppId,
    /// Embedding distance to the target.
    pub distance: f64,
    /// Historical runtime, seconds.
    pub runtime_s: f64,
    /// First-order runtime estimate of the adapted conf on the target.
    pub estimate_s: f64,
    /// The neighbor's conf adapted to the target scale.
    pub conf: SparkConf,
}

/// Every answer the serve plane produces, as one typed enum.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `ping` answer.
    Pong {
        /// Serving model version.
        version: u64,
        /// Completed hot-swaps.
        swaps: u64,
    },
    /// `hello` answer: the negotiated protocol version.
    Hello {
        /// Version the server chose (`min(client max, server max)`).
        v: u64,
    },
    /// `recommend` answer.
    Recommend {
        /// Model version that produced every score.
        version: u64,
        /// Candidates answered from the prediction cache.
        cached: usize,
        /// Candidates scored through the batched NECS pass.
        scored: usize,
        /// Whether this is the degradation fallback.
        degraded: bool,
        /// Top-k candidates, best first.
        ranked: Vec<RankedCandidate>,
        /// Echo of the request's trace id, when the request was traced.
        trace: Option<u64>,
    },
    /// `observe` answer: feedback-buffer size after extraction.
    Observe {
        /// Feedback instances waiting (or total observed, tuner backends).
        feedback: usize,
    },
    /// `retrieve` answer.
    Retrieve {
        /// Historical runs in the index.
        index: usize,
        /// Index search time, nanoseconds.
        search_ns: u64,
        /// Raw neighbors, nearest first.
        neighbors: Vec<Neighbor>,
        /// Adapted candidates ranked best-first.
        ranked: Vec<RankedCandidate>,
        /// Echo of the request's trace id, when the request was traced.
        trace: Option<u64>,
    },
    /// Any admin-op answer (stats, metrics, trace, health, analyze,
    /// tailtrace, profile, slo): the raw success document.
    Admin(Json),
    /// A structured wire error.
    Error {
        /// The structured code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error { .. })
    }

    /// The raw response document, when this is an admin-op response.
    pub fn into_admin(self) -> Option<Json> {
        match self {
            Response::Admin(doc) => Some(doc),
            _ => None,
        }
    }

    /// Decode a JSON response document for `op` into the typed enum.
    /// Unrecognized success shapes fall back to [`Response::Admin`].
    pub fn from_json(op: OpCode, doc: &Json, space: &ConfSpace) -> Response {
        if doc.get("ok").and_then(Json::as_bool) == Some(false) {
            let code = ErrorCode::from_response(doc).unwrap_or(ErrorCode::Internal);
            let message =
                doc.get("error").and_then(Json::as_str).unwrap_or("unknown error").to_string();
            return Response::Error { code, message };
        }
        let u = |key: &str| doc.get(key).and_then(Json::as_u64);
        match op {
            OpCode::Ping => Response::Pong {
                version: u("version").unwrap_or(0),
                swaps: u("swaps").unwrap_or(0),
            },
            OpCode::Hello => Response::Hello { v: u("v").unwrap_or(1) },
            OpCode::Recommend => Response::Recommend {
                version: u("version").unwrap_or(0),
                cached: u("cached").unwrap_or(0) as usize,
                scored: u("scored").unwrap_or(0) as usize,
                degraded: doc.get("degraded").and_then(Json::as_bool).unwrap_or(false),
                ranked: parse_ranked(doc.get("ranked"), space),
                trace: u("t"),
            },
            OpCode::Observe => Response::Observe { feedback: u("feedback").unwrap_or(0) as usize },
            OpCode::Retrieve => Response::Retrieve {
                index: u("index").unwrap_or(0) as usize,
                search_ns: u("search_ns").unwrap_or(0),
                neighbors: parse_neighbors(doc.get("neighbors"), space),
                ranked: parse_ranked(doc.get("ranked"), space),
                trace: u("t"),
            },
            _ => Response::Admin(doc.clone()),
        }
    }
}

fn parse_ranked(value: Option<&Json>, space: &ConfSpace) -> Vec<RankedCandidate> {
    let Some(items) = value.and_then(Json::as_arr) else { return Vec::new() };
    items
        .iter()
        .filter_map(|item| {
            let conf = parse_conf_values(item.get("conf"), space)?;
            let predicted_s = item.get("predicted_s").and_then(Json::as_f64)?;
            Some(RankedCandidate { conf, predicted_s })
        })
        .collect()
}

fn parse_neighbors(value: Option<&Json>, space: &ConfSpace) -> Vec<Neighbor> {
    let Some(items) = value.and_then(Json::as_arr) else { return Vec::new() };
    items
        .iter()
        .filter_map(|item| {
            let name = item.get("app").and_then(Json::as_str)?;
            let app = AppId::all().iter().copied().find(|a| a.name() == name)?;
            Some(Neighbor {
                app,
                distance: item.get("distance").and_then(Json::as_f64).unwrap_or(0.0),
                runtime_s: item.get("runtime_s").and_then(Json::as_f64).unwrap_or(0.0),
                estimate_s: item.get("estimate_s").and_then(Json::as_f64).unwrap_or(0.0),
                conf: parse_conf_values(item.get("conf"), space)?,
            })
        })
        .collect()
}

fn parse_conf_values(value: Option<&Json>, space: &ConfSpace) -> Option<SparkConf> {
    let items = value.and_then(Json::as_arr)?;
    if items.len() != NUM_KNOBS {
        return None;
    }
    let mut values = [0.0f64; NUM_KNOBS];
    for (i, item) in items.iter().enumerate() {
        values[i] = item.as_f64()?;
    }
    Some(SparkConf::from_values(space, values))
}

// ---------------------------------------------------------------------------
// Binary primitives

/// Little-endian append-only encoder for v3 bodies.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::with_capacity(64) }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A u16-length-prefixed short string (names); silently truncates past
    /// 64 KiB, which no knob or preset name approaches.
    fn name(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = bytes.len().min(u16::MAX as usize);
        self.u16(len as u16);
        self.buf.extend_from_slice(&bytes[..len]);
    }

    /// A u32-length-prefixed long string (source text).
    fn text(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian slice reader for v3 bodies. Every accessor
/// returns a decode error instead of panicking, so torn and truncated
/// frames surface as clean `bad_request`s.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, &'static str>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else { return Err("truncated v3 frame") };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> DecResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> DecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> DecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn name(&mut self) -> DecResult<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map(str::to_string).map_err(|_| "non-utf8 string in v3 frame")
    }

    fn text(&mut self) -> DecResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map(str::to_string).map_err(|_| "non-utf8 string in v3 frame")
    }

    /// Declare decoding finished; trailing bytes are a protocol error.
    fn finish(self) -> DecResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err("trailing bytes in v3 frame")
        }
    }
}

/// A parsed v3 frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V3Header {
    /// The operation.
    pub op: OpCode,
    /// Header flags ([`FLAG_TRACED`], [`FLAG_ERROR`]).
    pub flags: u8,
    /// Pipelining correlation tag; echoed verbatim in the response.
    pub req_id: u32,
    /// Trace id (meaningful when [`FLAG_TRACED`] is set).
    pub trace_id: u64,
}

fn header_bytes(op: OpCode, flags: u8, req_id: u32, trace_id: u64) -> [u8; V3_HEADER] {
    let mut h = [0u8; V3_HEADER];
    h[0] = V3_MAGIC;
    h[1] = PROTOCOL_V3 as u8;
    h[2] = op.code();
    h[3] = flags;
    h[4..8].copy_from_slice(&req_id.to_le_bytes());
    h[8..16].copy_from_slice(&trace_id.to_le_bytes());
    h
}

/// Parse a v3 header from a frame payload. `Err` is a decode error fit for
/// a `bad_request` message.
pub fn parse_header(payload: &[u8]) -> Result<V3Header, &'static str> {
    if payload.len() < V3_HEADER {
        return Err("truncated v3 header");
    }
    if payload[0] != V3_MAGIC {
        return Err("bad v3 magic");
    }
    if payload[1] != PROTOCOL_V3 as u8 {
        return Err("unsupported binary protocol version");
    }
    let Some(op) = OpCode::from_code(u64::from(payload[2])) else {
        return Err("unknown v3 op");
    };
    let req_id = u32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]);
    let mut tid = [0u8; 8];
    tid.copy_from_slice(&payload[8..16]);
    Ok(V3Header { op, flags: payload[3], req_id, trace_id: u64::from_le_bytes(tid) })
}

// ---------------------------------------------------------------------------
// Request codec

fn enc_data(e: &mut Enc, data: &DataSpec) {
    e.u64(data.rows);
    e.u32(data.cols);
    e.u32(data.iterations);
    e.u32(data.partitions);
    e.u64(data.bytes);
}

fn dec_data(d: &mut Dec) -> DecResult<DataSpec> {
    Ok(DataSpec {
        rows: d.u64()?,
        cols: d.u32()?,
        iterations: d.u32()?,
        partitions: d.u32()?,
        bytes: d.u64()?,
    })
}

fn enc_cluster(e: &mut Enc, cluster: &ClusterRef) {
    match cluster {
        ClusterRef::Preset(name) => {
            e.u8(0);
            e.name(name);
        }
        ClusterRef::Spec(c) => {
            e.u8(1);
            e.name(&c.name);
            e.u32(c.nodes);
            e.u32(c.cores_per_node);
            e.f64(c.cpu_ghz);
            e.f64(c.mem_gb_per_node);
            e.f64(c.mem_mts);
            e.f64(c.net_gbps);
        }
    }
}

fn dec_cluster(d: &mut Dec) -> DecResult<ClusterRef> {
    match d.u8()? {
        0 => Ok(ClusterRef::Preset(d.name()?)),
        1 => Ok(ClusterRef::Spec(ClusterSpec {
            name: d.name()?,
            nodes: d.u32()?,
            cores_per_node: d.u32()?,
            cpu_ghz: d.f64()?,
            mem_gb_per_node: d.f64()?,
            mem_mts: d.f64()?,
            net_gbps: d.f64()?,
        })),
        _ => Err("bad cluster tag"),
    }
}

fn enc_app(e: &mut Enc, app: AppId) {
    e.u16(app.index() as u16);
}

fn dec_app(d: &mut Dec) -> DecResult<AppId> {
    let idx = d.u16()? as usize;
    AppId::all().get(idx).copied().ok_or("unknown app index")
}

fn enc_conf(e: &mut Enc, conf: &SparkConf) {
    for &v in conf.values() {
        e.f64(v);
    }
}

fn dec_conf(d: &mut Dec, space: &ConfSpace) -> DecResult<SparkConf> {
    let mut values = [0.0f64; NUM_KNOBS];
    for v in values.iter_mut() {
        *v = d.f64()?;
    }
    Ok(SparkConf::from_values(space, values))
}

fn enc_result(e: &mut Enc, result: &RunResult) {
    e.f64(result.total_time_s);
    e.u8(u8::from(result.failure.is_some()));
    e.u32(result.executors);
    e.u32(result.slots);
    let n = result.stages.len().min(u16::MAX as usize);
    e.u16(n as u16);
    for s in &result.stages[..n] {
        e.u32(s.stage_id as u32);
        e.name(&s.name);
        e.f64(s.duration_s);
        e.u32(s.num_tasks);
        e.u64(s.input_bytes);
        e.u64(s.shuffle_read_bytes);
        e.u64(s.shuffle_write_bytes);
        e.u64(s.spill_bytes);
        e.f64(s.gc_time_s);
        e.u64(s.peak_task_memory);
        e.f64(s.cached_fraction);
    }
}

fn dec_result(d: &mut Dec) -> DecResult<RunResult> {
    let total_time_s = d.f64()?;
    let failed = d.u8()? != 0;
    let executors = d.u32()?;
    let slots = d.u32()?;
    let n = d.u16()? as usize;
    let mut stages = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        stages.push(StageStats {
            stage_id: d.u32()? as usize,
            name: d.name()?,
            duration_s: d.f64()?,
            num_tasks: d.u32()?,
            input_bytes: d.u64()?,
            shuffle_read_bytes: d.u64()?,
            shuffle_write_bytes: d.u64()?,
            spill_bytes: d.u64()?,
            gc_time_s: d.f64()?,
            peak_task_memory: d.u64()?,
            cached_fraction: d.f64()?,
            tasks: Vec::new(),
        });
    }
    Ok(RunResult {
        total_time_s,
        stages,
        // The wire carries only a failed flag, same as the JSON codec.
        failure: failed.then_some(FailureReason::ExecutorOom),
        executors,
        slots,
    })
}

/// Encode one request as a complete v3 frame payload (header + body).
pub fn encode_request(req: &Request, req_id: u32) -> Vec<u8> {
    let trace = req.trace_id();
    let flags = if trace.is_some() { FLAG_TRACED } else { 0 };
    let mut e = Enc::new();
    e.buf.extend_from_slice(&header_bytes(req.op(), flags, req_id, trace.unwrap_or(0)));
    match req {
        Request::Ping
        | Request::Stats
        | Request::Metrics
        | Request::Trace
        | Request::Health
        | Request::Tailtrace
        | Request::Slo => {}
        Request::Hello { max } => e.u64(*max),
        Request::Recommend { app, data, cluster, k, seed, trace: _ } => {
            enc_app(&mut e, *app);
            enc_data(&mut e, data);
            enc_cluster(&mut e, cluster);
            e.u16(*k as u16);
            e.u64(*seed);
        }
        Request::Observe { app, data, cluster, conf, result } => {
            enc_app(&mut e, *app);
            enc_data(&mut e, data);
            enc_cluster(&mut e, cluster);
            enc_conf(&mut e, conf);
            enc_result(&mut e, result);
        }
        Request::Retrieve { target, data, cluster, k, trace: _ } => {
            match target {
                RetrieveTarget::App(app) => {
                    e.u8(0);
                    enc_app(&mut e, *app);
                }
                RetrieveTarget::Source(src) => {
                    e.u8(1);
                    e.text(src);
                }
            }
            enc_data(&mut e, data);
            enc_cluster(&mut e, cluster);
            e.u16(*k as u16);
        }
        Request::Analyze { target } => match target {
            AnalyzeTarget::App(app) => {
                e.u8(0);
                enc_app(&mut e, *app);
            }
            AnalyzeTarget::Source { source, iterations } => {
                e.u8(1);
                e.text(source);
                e.u32(*iterations);
            }
        },
        Request::Profile { k } => e.u16(*k as u16),
    }
    e.buf
}

/// Decode a v3 frame payload into its header and typed request.
pub fn decode_request(payload: &[u8], space: &ConfSpace) -> DecResult<(V3Header, Request)> {
    let header = parse_header(payload)?;
    let trace = (header.flags & FLAG_TRACED != 0).then_some(header.trace_id);
    let mut d = Dec::new(&payload[V3_HEADER..]);
    let req = match header.op {
        OpCode::Ping => Request::Ping,
        OpCode::Stats => Request::Stats,
        OpCode::Metrics => Request::Metrics,
        OpCode::Trace => Request::Trace,
        OpCode::Health => Request::Health,
        OpCode::Tailtrace => Request::Tailtrace,
        OpCode::Slo => Request::Slo,
        OpCode::Hello => Request::Hello { max: d.u64()? },
        OpCode::Recommend => Request::Recommend {
            app: dec_app(&mut d)?,
            data: dec_data(&mut d)?,
            cluster: dec_cluster(&mut d)?,
            k: d.u16()? as usize,
            seed: d.u64()?,
            trace,
        },
        OpCode::Observe => Request::Observe {
            app: dec_app(&mut d)?,
            data: dec_data(&mut d)?,
            cluster: dec_cluster(&mut d)?,
            conf: dec_conf(&mut d, space)?,
            result: Box::new(dec_result(&mut d)?),
        },
        OpCode::Retrieve => {
            let target = match d.u8()? {
                0 => RetrieveTarget::App(dec_app(&mut d)?),
                1 => RetrieveTarget::Source(d.text()?),
                _ => return Err("bad retrieve target tag"),
            };
            Request::Retrieve {
                target,
                data: dec_data(&mut d)?,
                cluster: dec_cluster(&mut d)?,
                k: d.u16()? as usize,
                trace,
            }
        }
        OpCode::Analyze => {
            let target = match d.u8()? {
                0 => AnalyzeTarget::App(dec_app(&mut d)?),
                1 => {
                    let source = d.text()?;
                    AnalyzeTarget::Source { source, iterations: d.u32()? }
                }
                _ => return Err("bad analyze target tag"),
            };
            Request::Analyze { target }
        }
        OpCode::Profile => Request::Profile { k: d.u16()? as usize },
    };
    d.finish()?;
    Ok((header, req))
}

// ---------------------------------------------------------------------------
// Response codec

/// Resolve a decoded cluster reference into a concrete spec, the same way
/// the JSON front-end resolves preset names. `Err` is a `bad_request`
/// message.
pub fn resolve_cluster(cluster: &ClusterRef) -> Result<ClusterSpec, String> {
    match cluster {
        ClusterRef::Preset(name) => ClusterSpec::all_evaluation_clusters()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown cluster preset {name:?}")),
        ClusterRef::Spec(spec) => Ok(spec.clone()),
    }
}

fn response_flags(trace: Option<u64>) -> u64 {
    u64::from(trace.is_some())
}

fn response_header(op: OpCode, req_id: u32, trace: Option<u64>) -> [u8; V3_HEADER] {
    let flags = if response_flags(trace) != 0 { FLAG_TRACED } else { 0 };
    header_bytes(op, flags, req_id, trace.unwrap_or(0))
}

/// Encode a v3 `recommend` success response.
pub fn encode_recommend_response(
    req_id: u32,
    trace: Option<u64>,
    resp: &RecommendResponse,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&response_header(OpCode::Recommend, req_id, trace));
    e.u64(resp.version);
    e.u32(resp.cached as u32);
    e.u32(resp.scored as u32);
    e.u8(u8::from(resp.degraded));
    let n = resp.ranked.len().min(u16::MAX as usize);
    e.u16(n as u16);
    for r in &resp.ranked[..n] {
        enc_conf(&mut e, &r.conf);
        e.f64(r.predicted_s);
    }
    e.buf
}

/// Encode a v3 `observe` success response.
pub fn encode_observe_response(req_id: u32, feedback: usize) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&response_header(OpCode::Observe, req_id, None));
    e.u64(feedback as u64);
    e.buf
}

/// Encode a v3 `retrieve` success response.
pub fn encode_retrieve_response(
    req_id: u32,
    trace: Option<u64>,
    resp: &RetrieveResponse,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&response_header(OpCode::Retrieve, req_id, trace));
    e.u64(resp.index_len as u64);
    e.u64(resp.search_ns);
    let n = resp.neighbors.len().min(u16::MAX as usize);
    e.u16(n as u16);
    for nb in &resp.neighbors[..n] {
        enc_app(&mut e, nb.app);
        e.f64(f64::from(nb.distance));
        e.f64(nb.runtime_s);
        e.f64(nb.estimate_s);
        enc_conf(&mut e, &nb.conf);
    }
    let r = resp.ranked.len().min(u16::MAX as usize);
    e.u16(r as u16);
    for rc in &resp.ranked[..r] {
        enc_conf(&mut e, &rc.conf);
        e.f64(rc.predicted_s);
    }
    e.buf
}

/// Encode a v3 `ping` success response.
pub fn encode_ping_response(req_id: u32, version: u64, swaps: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&response_header(OpCode::Ping, req_id, None));
    e.u64(version);
    e.u64(swaps);
    e.buf
}

/// Encode a v3 `hello` success response.
pub fn encode_hello_response(req_id: u32, v: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&response_header(OpCode::Hello, req_id, None));
    e.u64(v);
    e.buf
}

/// Encode a v3 admin success response: the rendered JSON success document
/// as the body.
pub fn encode_admin_response(op: OpCode, req_id: u32, doc: &Json) -> Vec<u8> {
    let rendered = doc.render();
    let mut buf = Vec::with_capacity(V3_HEADER + rendered.len());
    buf.extend_from_slice(&response_header(op, req_id, None));
    buf.extend_from_slice(rendered.as_bytes());
    buf
}

/// Encode a v3 error response for any op.
pub fn encode_error_response(op: OpCode, req_id: u32, code: ErrorCode, msg: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&header_bytes(op, FLAG_ERROR, req_id, 0));
    e.u8(code.code());
    e.buf.extend_from_slice(msg.as_bytes());
    e.buf
}

/// Decode a v3 response frame into its request id and typed response.
pub fn decode_response(payload: &[u8], space: &ConfSpace) -> DecResult<(u32, Response)> {
    let header = parse_header(payload)?;
    let body = &payload[V3_HEADER..];
    if header.flags & FLAG_ERROR != 0 {
        let mut d = Dec::new(body);
        let code = ErrorCode::from_code(u64::from(d.u8()?)).unwrap_or(ErrorCode::Internal);
        let message =
            std::str::from_utf8(&body[1..]).map_err(|_| "non-utf8 error message")?.to_string();
        return Ok((header.req_id, Response::Error { code, message }));
    }
    let mut d = Dec::new(body);
    let resp = match header.op {
        OpCode::Ping => Response::Pong { version: d.u64()?, swaps: d.u64()? },
        OpCode::Hello => Response::Hello { v: d.u64()? },
        OpCode::Observe => Response::Observe { feedback: d.u64()? as usize },
        OpCode::Recommend => {
            let version = d.u64()?;
            let cached = d.u32()? as usize;
            let scored = d.u32()? as usize;
            let degraded = d.u8()? != 0;
            let n = d.u16()? as usize;
            let mut ranked = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let conf = dec_conf(&mut d, space)?;
                ranked.push(RankedCandidate { conf, predicted_s: d.f64()? });
            }
            let trace = (header.flags & FLAG_TRACED != 0).then_some(header.trace_id);
            Response::Recommend { version, cached, scored, degraded, ranked, trace }
        }
        OpCode::Retrieve => {
            let index = d.u64()? as usize;
            let search_ns = d.u64()?;
            let n = d.u16()? as usize;
            let mut neighbors = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let app = dec_app(&mut d)?;
                let distance = d.f64()?;
                let runtime_s = d.f64()?;
                let estimate_s = d.f64()?;
                neighbors.push(Neighbor {
                    app,
                    distance,
                    runtime_s,
                    estimate_s,
                    conf: dec_conf(&mut d, space)?,
                });
            }
            let r = d.u16()? as usize;
            let mut ranked = Vec::with_capacity(r.min(1024));
            for _ in 0..r {
                let conf = dec_conf(&mut d, space)?;
                ranked.push(RankedCandidate { conf, predicted_s: d.f64()? });
            }
            let trace = (header.flags & FLAG_TRACED != 0).then_some(header.trace_id);
            Response::Retrieve { index, search_ns, neighbors, ranked, trace }
        }
        // Admin bodies are rendered JSON documents.
        _ => {
            let text = std::str::from_utf8(body).map_err(|_| "non-utf8 admin body in v3 frame")?;
            let doc = Json::parse(text).map_err(|_| "unparsable admin body in v3 frame")?;
            return Ok((header.req_id, Response::Admin(doc)));
        }
    };
    d.finish()?;
    Ok((header.req_id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v3_request_roundtrip_hot_ops() {
        let space = ConfSpace::table_iv();
        let data = AppId::Sort.dataset(lite_workloads::data::SizeTier::Valid);
        let req = Request::Recommend {
            app: AppId::Sort,
            data,
            cluster: ClusterRef::Preset("cluster-a".into()),
            k: 3,
            seed: 7,
            trace: Some(42),
        };
        let frame = encode_request(&req, 9);
        let (header, decoded) = decode_request(&frame, &space).expect("decode");
        assert_eq!(header.req_id, 9);
        assert_eq!(header.trace_id, 42);
        assert_eq!(decoded, req);
        assert_eq!(encode_request(&decoded, 9), frame, "re-encode is bit-identical");
    }

    #[test]
    fn v3_truncated_frames_fail_cleanly() {
        let space = ConfSpace::table_iv();
        let data = AppId::Sort.dataset(lite_workloads::data::SizeTier::Valid);
        let req = Request::Recommend {
            app: AppId::Sort,
            data,
            cluster: ClusterRef::Spec(ClusterSpec::cluster_b()),
            k: 1,
            seed: 0,
            trace: None,
        };
        let frame = encode_request(&req, 0);
        for cut in 0..frame.len() {
            assert!(decode_request(&frame[..cut], &space).is_err(), "cut at {cut} must fail");
        }
        // Trailing garbage is refused too: round-trips are exact.
        let mut padded = frame.clone();
        padded.push(0);
        assert!(decode_request(&padded, &space).is_err());
    }

    #[test]
    fn v3_response_roundtrip_recommend() {
        let space = ConfSpace::table_iv();
        let resp = RecommendResponse {
            version: 5,
            ranked: vec![RankedCandidate { conf: space.default_conf(), predicted_s: 12.5 }],
            cached: 2,
            scored: 3,
            degraded: false,
        };
        let frame = encode_recommend_response(7, Some(99), &resp);
        let (req_id, decoded) = decode_response(&frame, &space).expect("decode");
        assert_eq!(req_id, 7);
        match decoded {
            Response::Recommend { version, cached, scored, degraded, ranked, trace } => {
                assert_eq!((version, cached, scored, degraded), (5, 2, 3, false));
                assert_eq!(ranked.len(), 1);
                assert_eq!(ranked[0].predicted_s, 12.5);
                assert_eq!(trace, Some(99), "traced response must echo its id");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let err = encode_error_response(OpCode::Recommend, 8, ErrorCode::Overloaded, "full");
        let (id, e) = decode_response(&err, &space).expect("decode error frame");
        assert_eq!(id, 8);
        assert_eq!(e, Response::Error { code: ErrorCode::Overloaded, message: "full".into() });
    }
}

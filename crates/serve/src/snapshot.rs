//! An immutable, versioned bundle of everything a recommendation needs.
//!
//! Workers answer requests against *one* snapshot for the request's whole
//! lifetime, so a hot-swap mid-request can never mix model versions. The
//! version lives **inside** the snapshot (not just on the slot) so a
//! response can report exactly which model produced it.

use lite_core::acg::AdaptiveCandidateGenerator;
use lite_core::experiment::PredictionContext;
use lite_core::features::TemplateRegistry;
use lite_core::necs::Necs;
use lite_core::recommend::LiteTuner;
use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

/// One immutable model version: NECS + ACG + template registry.
#[derive(Clone)]
pub struct ModelSnapshot {
    /// Monotonic model version; v0 is the offline-trained model, each
    /// Adaptive Model Update publishes v+1.
    pub version: u64,
    /// The performance estimator.
    pub model: Necs,
    /// The candidate generator.
    pub acg: AdaptiveCandidateGenerator,
    /// Template registry frozen at snapshot time. Snapshots are immutable,
    /// so cold-start apps (which would grow the registry) are rejected by
    /// the service rather than served.
    pub registry: TemplateRegistry,
    /// Candidates sampled per recommendation.
    pub num_candidates: usize,
}

impl ModelSnapshot {
    /// Assemble version 0 from an offline-trained tuner's parts.
    pub fn from_tuner(tuner: &LiteTuner) -> ModelSnapshot {
        ModelSnapshot {
            version: 0,
            model: tuner.model.clone(),
            acg: tuner.acg.clone(),
            registry: tuner.registry.clone(),
            num_candidates: tuner.num_candidates,
        }
    }

    /// The warm-start prediction context for a request, or `None` when the
    /// app's templates were never interned (cold-start — not servable from
    /// an immutable snapshot).
    pub fn warm_context(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
    ) -> Option<PredictionContext> {
        PredictionContext::warm(&self.registry, app, data, cluster)
    }
}

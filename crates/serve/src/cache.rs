//! Sharded LRU cache of per-candidate NECS predictions.
//!
//! Keys are exact: the full `(app, data, cluster, conf)` tuple packed into
//! a fixed word array (floats by bit pattern), so two requests share an
//! entry only when the model would compute the identical number — batched
//! NECS inference is bit-for-bit equal to per-candidate inference, so a
//! hit never changes a response. Entries remember the model version that
//! produced them; a hot-swap therefore invalidates the whole cache lazily,
//! with no swap-time sweep.

use std::collections::HashMap;
use std::sync::Mutex;

use lite_obs::Counter;
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::SparkConf;
use lite_workloads::apps::AppId;
use lite_workloads::data::DataSpec;

/// app(1) + data(5) + cluster env(6) + cluster name hash(1) + conf(16).
const KEY_WORDS: usize = 29;

/// Exact cache key: every feature the prediction depends on, bit-packed.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey([u64; KEY_WORDS]);

impl CacheKey {
    /// Pack one candidate's identity.
    pub fn new(app: AppId, data: &DataSpec, cluster: &ClusterSpec, conf: &SparkConf) -> CacheKey {
        let mut w = [0u64; KEY_WORDS];
        w[0] = app.index() as u64;
        w[1] = data.rows;
        w[2] = data.cols as u64;
        w[3] = data.iterations as u64;
        w[4] = data.partitions as u64;
        w[5] = data.bytes;
        for (i, &e) in cluster.env_features().iter().enumerate() {
            w[6 + i] = e.to_bits();
        }
        w[12] = fnv1a(cluster.name.as_bytes());
        for (i, &v) in conf.values().iter().enumerate() {
            w[13 + i] = v.to_bits();
        }
        CacheKey(w)
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = 0xcbf29ce484222325u64;
        for &word in &self.0 {
            h = (h ^ word).wrapping_mul(0x100000001b3);
        }
        (h % shards as u64) as usize
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

struct Entry {
    version: u64,
    value: f64,
    stamp: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// The cache: N independently locked shards, per-shard LRU eviction.
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: Counter,
    misses: Counter,
}

impl PredictionCache {
    /// `shards` independently locked maps of at most `capacity_per_shard`
    /// entries each. Hit/miss counters come from the caller's metrics
    /// registry so the cache shows up in manifests.
    pub fn new(
        shards: usize,
        capacity_per_shard: usize,
        hits: Counter,
        misses: Counter,
    ) -> PredictionCache {
        assert!(shards > 0, "cache needs at least one shard");
        PredictionCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), clock: 0 }))
                .collect(),
            capacity_per_shard,
            hits,
            misses,
        }
    }

    /// Look up a prediction made by model `version`. A stale-version entry
    /// is removed on sight and counts as a miss.
    pub fn get(&self, key: &CacheKey, version: u64) -> Option<f64> {
        let mut shard = self.shard(key);
        match shard.map.get_mut(key) {
            Some(entry) if entry.version == version => {
                shard.clock += 1;
                let stamp = shard.clock;
                shard.map.get_mut(key).expect("entry present").stamp = stamp;
                self.hits.inc();
                Some(shard.map[key].value)
            }
            Some(_) => {
                shard.map.remove(key);
                self.misses.inc();
                None
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Store a prediction, evicting the shard's least-recently-used entry
    /// when full.
    pub fn insert(&self, key: CacheKey, version: u64, value: f64) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let mut shard = self.shard(&key);
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                shard.map.remove(&oldest);
            }
        }
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.insert(key, Entry { version, value, stamp });
    }

    /// Entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Credit `n` hits answered on behalf of this cache without probing
    /// it — the response-cache fast path short-circuits the per-candidate
    /// lookups a repeat request would have hit, and the hit-rate account
    /// must not lose them.
    pub fn credit_hits(&self, n: u64) {
        self.hits.add(n);
    }

    /// Lifetime misses (stale-version evictions included).
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    /// Lifetime hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    fn shard(&self, key: &CacheKey) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[key.shard_of(self.shards.len())].lock().expect("cache shard poisoned")
    }
}

// ---------------------------------------------------------------------------
// Response cache

/// app(1) + data(5) + cluster env(6) + cluster name hash(1) + k(1) + seed(1).
const RESPONSE_KEY_WORDS: usize = 15;

/// Exact whole-request key: every input a `recommend` response depends on
/// besides the model version, bit-packed the same way [`CacheKey`] packs a
/// candidate's identity. Two requests share an entry only when the server
/// would compute the identical response.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResponseKey([u64; RESPONSE_KEY_WORDS]);

impl ResponseKey {
    /// Pack one request's identity.
    pub fn new(
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
        seed: u64,
    ) -> ResponseKey {
        let mut w = [0u64; RESPONSE_KEY_WORDS];
        w[0] = app.index() as u64;
        w[1] = data.rows;
        w[2] = data.cols as u64;
        w[3] = data.iterations as u64;
        w[4] = data.partitions as u64;
        w[5] = data.bytes;
        for (i, &e) in cluster.env_features().iter().enumerate() {
            w[6 + i] = e.to_bits();
        }
        w[12] = fnv1a(cluster.name.as_bytes());
        w[13] = k as u64;
        w[14] = seed;
        ResponseKey(w)
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = 0xcbf29ce484222325u64;
        for &word in &self.0 {
            h = (h ^ word).wrapping_mul(0x100000001b3);
        }
        (h % shards as u64) as usize
    }

    /// FNV-1a over the packed words — the shard-affinity hash the sharded
    /// dispatcher routes by, so repeats of one request always land on the
    /// same worker (and therefore the same warm caches).
    pub fn route_hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &word in &self.0 {
            h = (h ^ word).wrapping_mul(0x100000001b3);
        }
        h
    }
}

struct ResponseEntry<V> {
    version: u64,
    value: V,
    stamp: u64,
}

struct ResponseShard<V> {
    map: HashMap<ResponseKey, ResponseEntry<V>>,
    clock: u64,
}

/// Whole-response LRU cache: the serve plane's inline fast path answers
/// repeat `recommend` requests from here without crossing into a worker.
/// Same versioning discipline as [`PredictionCache`] — entries remember
/// the model version, so hot-swaps invalidate lazily — and same sharded
/// locking, so reactor threads and workers never convoy on one mutex.
pub struct ResponseCache<V> {
    shards: Vec<Mutex<ResponseShard<V>>>,
    capacity_per_shard: usize,
    hits: Counter,
    misses: Counter,
}

impl<V: Clone> ResponseCache<V> {
    /// `shards` independently locked maps of at most `capacity_per_shard`
    /// entries each.
    pub fn new(
        shards: usize,
        capacity_per_shard: usize,
        hits: Counter,
        misses: Counter,
    ) -> ResponseCache<V> {
        assert!(shards > 0, "cache needs at least one shard");
        ResponseCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ResponseShard { map: HashMap::new(), clock: 0 }))
                .collect(),
            capacity_per_shard,
            hits,
            misses,
        }
    }

    /// Look up the response served at model `version`. A stale-version
    /// entry is removed on sight and counts as a miss.
    pub fn get(&self, key: &ResponseKey, version: u64) -> Option<V> {
        let mut shard = self.shard(key);
        match shard.map.get_mut(key) {
            Some(entry) if entry.version == version => {
                shard.clock += 1;
                let stamp = shard.clock;
                let entry = shard.map.get_mut(key)?;
                entry.stamp = stamp;
                let value = entry.value.clone();
                self.hits.inc();
                Some(value)
            }
            Some(_) => {
                shard.map.remove(key);
                self.misses.inc();
                None
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Store a response, evicting the shard's least-recently-used entry
    /// when full.
    pub fn insert(&self, key: ResponseKey, version: u64, value: V) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let mut shard = self.shard(&key);
        if shard.map.len() >= self.capacity_per_shard && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                shard.map.remove(&oldest);
            }
        }
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.insert(key, ResponseEntry { version, value, stamp });
    }

    /// Entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Lifetime misses (stale-version evictions included).
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }

    fn shard(&self, key: &ResponseKey) -> std::sync::MutexGuard<'_, ResponseShard<V>> {
        self.shards[key.shard_of(self.shards.len())]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite_obs::Registry;
    use lite_sparksim::conf::ConfSpace;

    fn cache(shards: usize, cap: usize) -> PredictionCache {
        let reg = Registry::new();
        PredictionCache::new(shards, cap, reg.counter("hits"), reg.counter("misses"))
    }

    fn key(knob0: f64) -> CacheKey {
        let space = ConfSpace::table_iv();
        let mut conf = space.default_conf();
        conf.set(&space, lite_sparksim::conf::Knob::ExecutorCores, knob0);
        CacheKey::new(
            AppId::Sort,
            &AppId::Sort.dataset(lite_workloads::data::SizeTier::Valid),
            &ClusterSpec::cluster_a(),
            &conf,
        )
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let c = cache(4, 8);
        let k = key(2.0);
        assert_eq!(c.get(&k, 0), None);
        c.insert(k, 0, 123.5);
        assert_eq!(c.get(&k, 0), Some(123.5));
        // A new model version invalidates the entry.
        assert_eq!(c.get(&k, 1), None);
        assert_eq!(c.get(&k, 1), None); // really removed, not just skipped
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
        assert!((c.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn response_cache_versions_and_routes_stably() {
        let reg = Registry::new();
        let c: ResponseCache<u32> = ResponseCache::new(2, 2, reg.counter("rh"), reg.counter("rm"));
        let data = AppId::Sort.dataset(lite_workloads::data::SizeTier::Valid);
        let k = ResponseKey::new(AppId::Sort, &data, &ClusterSpec::cluster_a(), 3, 7);
        assert_eq!(c.get(&k, 0), None);
        c.insert(k, 0, 42);
        assert_eq!(c.get(&k, 0), Some(42));
        assert_eq!(c.get(&k, 1), None, "hot-swap invalidates lazily");
        let again = ResponseKey::new(AppId::Sort, &data, &ClusterSpec::cluster_a(), 3, 7);
        assert_eq!(k.route_hash(), again.route_hash(), "routing must be deterministic");
        let other = ResponseKey::new(AppId::Sort, &data, &ClusterSpec::cluster_a(), 3, 8);
        assert!(k != other, "seed must be part of the response identity");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_shard() {
        let c = cache(1, 2); // one shard so all keys compete
        let (a, b, d) = (key(1.0), key(2.0), key(3.0));
        c.insert(a, 0, 1.0);
        c.insert(b, 0, 2.0);
        assert_eq!(c.get(&a, 0), Some(1.0)); // touch a: b is now LRU
        c.insert(d, 0, 3.0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&b, 0), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&a, 0), Some(1.0));
        assert_eq!(c.get(&d, 0), Some(3.0));
    }
}

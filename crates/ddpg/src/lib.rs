//! # lite-ddpg — reinforcement-learning tuning baselines
//!
//! The paper's `DDPG(2h)` competitor follows CDBTune: Deep Deterministic
//! Policy Gradient where the action space is the (normalized)
//! configuration vector and the state is the engine's inner status
//! summary. `DDPG-C(2h)` follows QTune and additionally feeds code
//! features into the networks.
//!
//! Both tuners charge each trial's simulated execution time against their
//! tuning budget, reproducing how Table VI and Figure 8 account overhead.

pub mod agent;
pub mod tuner;

pub use agent::{DdpgAgent, DdpgConfig};
pub use tuner::{DdpgServeTuner, DdpgTuner, TuneTrace};

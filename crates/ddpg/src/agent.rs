//! The DDPG agent: actor, critic, target networks, replay buffer,
//! Ornstein–Uhlenbeck exploration noise.

use lite_nn::init::rng;
use lite_nn::layers::Dense;
use lite_nn::optim::Adam;
use lite_nn::tape::{ParamId, Params, Tape, Var};
use lite_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Agent hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DdpgConfig {
    /// State dimensionality.
    pub state_dim: usize,
    /// Action dimensionality (here: number of knobs).
    pub action_dim: usize,
    /// Hidden width of actor/critic MLPs.
    pub hidden: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Soft target-update rate.
    pub tau: f32,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Replay-buffer capacity.
    pub buffer_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// OU noise stiffness.
    pub ou_theta: f32,
    /// OU noise scale.
    pub ou_sigma: f32,
}

impl DdpgConfig {
    /// Defaults matching a CDBTune-scale setup.
    pub fn new(state_dim: usize, action_dim: usize) -> DdpgConfig {
        DdpgConfig {
            state_dim,
            action_dim,
            hidden: 64,
            gamma: 0.9,
            tau: 0.01,
            actor_lr: 1e-3,
            critic_lr: 1e-3,
            buffer_capacity: 4096,
            batch_size: 16,
            ou_theta: 0.15,
            ou_sigma: 0.2,
        }
    }
}

/// One replay transition.
#[derive(Debug, Clone)]
struct Transition {
    state: Vec<f32>,
    action: Vec<f32>,
    reward: f32,
    next_state: Vec<f32>,
    done: bool,
}

/// A two-layer MLP head used for both actor and critic.
#[derive(Debug, Clone)]
struct Mlp2 {
    l1: Dense,
    l2: Dense,
    out: Dense,
}

impl Mlp2 {
    fn new(
        params: &mut Params,
        name: &str,
        input: usize,
        hidden: usize,
        output: usize,
        r: &mut StdRng,
    ) -> Mlp2 {
        Mlp2 {
            l1: Dense::new(params, &format!("{name}.l1"), input, hidden, r),
            l2: Dense::new(params, &format!("{name}.l2"), hidden, hidden, r),
            out: Dense::new(params, &format!("{name}.out"), hidden, output, r),
        }
    }

    fn forward(&self, tape: &mut Tape, params: &Params, x: Var) -> Var {
        let h = self.l1.forward(tape, params, x);
        let h = tape.relu(h);
        let h = self.l2.forward(tape, params, h);
        let h = tape.relu(h);
        self.out.forward(tape, params, h)
    }

    fn param_ids(&self) -> [ParamId; 6] {
        [self.l1.w, self.l1.b, self.l2.w, self.l2.b, self.out.w, self.out.b]
    }
}

/// The DDPG agent.
pub struct DdpgAgent {
    /// Agent configuration.
    pub config: DdpgConfig,
    params: Params,
    target_params: Params,
    actor: Mlp2,
    critic: Mlp2,
    actor_opt: Adam,
    critic_opt: Adam,
    buffer: Vec<Transition>,
    buffer_pos: usize,
    ou_state: Vec<f32>,
    rng: StdRng,
}

impl DdpgAgent {
    /// New agent with seeded initialization.
    pub fn new(config: DdpgConfig, seed: u64) -> DdpgAgent {
        let mut r = rng(seed);
        let mut params = Params::new();
        let actor = Mlp2::new(
            &mut params,
            "actor",
            config.state_dim,
            config.hidden,
            config.action_dim,
            &mut r,
        );
        let critic = Mlp2::new(
            &mut params,
            "critic",
            config.state_dim + config.action_dim,
            config.hidden,
            1,
            &mut r,
        );
        let target_params = params.clone();
        DdpgAgent {
            config,
            params,
            target_params,
            actor,
            critic,
            actor_opt: Adam::new(config.actor_lr),
            critic_opt: Adam::new(config.critic_lr),
            buffer: Vec::new(),
            buffer_pos: 0,
            ou_state: vec![0.0; config.action_dim],
            rng: StdRng::seed_from_u64(seed ^ 0xddb6),
        }
    }

    fn actor_forward(&self, tape: &mut Tape, params: &Params, state: Var) -> Var {
        let raw = self.actor.forward(tape, params, state);
        tape.sigmoid(raw) // actions live in [0,1]^D
    }

    fn critic_forward(&self, tape: &mut Tape, params: &Params, state: Var, action: Var) -> Var {
        let sa = tape.concat_cols(&[state, action]);
        self.critic.forward(tape, params, sa)
    }

    /// Deterministic policy action for a state.
    pub fn act(&self, state: &[f32]) -> Vec<f32> {
        let mut tape = Tape::new();
        let s = tape.leaf(Tensor::row_vector(state.to_vec()));
        let a = self.actor_forward(&mut tape, &self.params, s);
        tape.value(a).data().to_vec()
    }

    /// Policy action plus OU exploration noise, clamped to `[0,1]`.
    pub fn act_noisy(&mut self, state: &[f32]) -> Vec<f32> {
        let mut a = self.act(state);
        let normal = Normal::new(0.0, 1.0).expect("unit normal");
        for (ai, ou) in a.iter_mut().zip(self.ou_state.iter_mut()) {
            let dx = -self.config.ou_theta * *ou
                + self.config.ou_sigma * normal.sample(&mut self.rng) as f32;
            *ou += dx;
            *ai = (*ai + *ou).clamp(0.0, 1.0);
        }
        a
    }

    /// Store a transition in the replay buffer.
    pub fn remember(
        &mut self,
        state: &[f32],
        action: &[f32],
        reward: f32,
        next_state: &[f32],
        done: bool,
    ) {
        let t = Transition {
            state: state.to_vec(),
            action: action.to_vec(),
            reward,
            next_state: next_state.to_vec(),
            done,
        };
        if self.buffer.len() < self.config.buffer_capacity {
            self.buffer.push(t);
        } else {
            self.buffer[self.buffer_pos] = t;
            self.buffer_pos = (self.buffer_pos + 1) % self.config.buffer_capacity;
        }
    }

    /// Number of stored transitions.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// One gradient update on a replay minibatch (no-op until the buffer
    /// holds a full batch), followed by a soft target update.
    pub fn train_step(&mut self) {
        let b = self.config.batch_size;
        if self.buffer.len() < b {
            return;
        }
        let idx: Vec<usize> = (0..b).map(|_| self.rng.gen_range(0..self.buffer.len())).collect();

        let sd = self.config.state_dim;
        let ad = self.config.action_dim;
        let mut states = Tensor::zeros(b, sd);
        let mut actions = Tensor::zeros(b, ad);
        let mut next_states = Tensor::zeros(b, sd);
        let mut targets = Tensor::zeros(b, 1);
        for (r, &i) in idx.iter().enumerate() {
            let t = &self.buffer[i];
            states.row_mut(r).copy_from_slice(&t.state);
            actions.row_mut(r).copy_from_slice(&t.action);
            next_states.row_mut(r).copy_from_slice(&t.next_state);
        }
        // Q-targets from the target networks.
        {
            let mut tape = Tape::new();
            let ns = tape.leaf(next_states.clone());
            let na = self.actor_forward(&mut tape, &self.target_params, ns);
            let nq = self.critic_forward(&mut tape, &self.target_params, ns, na);
            for (r, &i) in idx.iter().enumerate() {
                let t = &self.buffer[i];
                let bootstrap =
                    if t.done { 0.0 } else { self.config.gamma * tape.value(nq).get(r, 0) };
                targets.set(r, 0, t.reward + bootstrap);
            }
        }
        // Critic update: minimize TD error.
        {
            let mut tape = Tape::new();
            let s = tape.leaf(states.clone());
            let a = tape.leaf(actions);
            let q = self.critic_forward(&mut tape, &self.params, s, a);
            let loss = tape.mse_loss(q, &targets);
            tape.backward(loss, &mut self.params);
            // Zero out actor gradients: the critic step must not move the
            // actor even though both live in one store.
            for id in self.actor.param_ids() {
                self.params.grad_mut(id).zero_();
            }
            self.critic_opt.step(&mut self.params);
        }
        // Actor update: ascend Q(s, π(s)).
        {
            let mut tape = Tape::new();
            let s = tape.leaf(states);
            let a = self.actor_forward(&mut tape, &self.params, s);
            let q = self.critic_forward(&mut tape, &self.params, s, a);
            // Minimize -mean(Q).
            let neg_q = tape.scale(q, -1.0);
            let loss = tape.mean(neg_q);
            tape.backward(loss, &mut self.params);
            for id in self.critic.param_ids() {
                self.params.grad_mut(id).zero_();
            }
            self.actor_opt.step(&mut self.params);
        }
        // Soft target update.
        let tau = self.config.tau;
        for i in 0..self.params.len() {
            let id = ParamId(i);
            let src = self.params.value(id).clone();
            let dst = self.target_params.value_mut(id);
            for (d, s) in dst.data_mut().iter_mut().zip(src.data().iter()) {
                *d = (1.0 - tau) * *d + tau * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_live_in_unit_cube() {
        let mut agent = DdpgAgent::new(DdpgConfig::new(4, 3), 1);
        let state = vec![0.5, -1.0, 2.0, 0.0];
        let a = agent.act(&state);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|v| (0.0..=1.0).contains(v)));
        let noisy = agent.act_noisy(&state);
        assert!(noisy.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn buffer_wraps_at_capacity() {
        let mut cfg = DdpgConfig::new(2, 2);
        cfg.buffer_capacity = 4;
        let mut agent = DdpgAgent::new(cfg, 2);
        for i in 0..10 {
            agent.remember(&[i as f32, 0.0], &[0.5, 0.5], 0.0, &[0.0, 0.0], false);
        }
        assert_eq!(agent.buffer_len(), 4);
    }

    #[test]
    fn train_step_is_noop_until_batch_full() {
        let mut agent = DdpgAgent::new(DdpgConfig::new(2, 2), 3);
        let before = agent.act(&[0.1, 0.2]);
        agent.train_step();
        assert_eq!(agent.act(&[0.1, 0.2]), before);
    }

    #[test]
    fn agent_learns_a_one_step_bandit() {
        // Reward = -|a0 - 0.8|: optimal action has a0 = 0.8, independent of
        // state. After training, the policy should move toward it.
        let mut cfg = DdpgConfig::new(2, 1);
        cfg.batch_size = 32;
        cfg.actor_lr = 3e-3;
        cfg.critic_lr = 3e-3;
        let mut agent = DdpgAgent::new(cfg, 4);
        let state = vec![0.0f32, 0.0];
        let initial = (agent.act(&state)[0] - 0.8).abs();
        for _ in 0..400 {
            let a = agent.act_noisy(&state);
            let r = -(a[0] - 0.8).abs();
            agent.remember(&state, &a, r, &state, true);
            agent.train_step();
        }
        let trained = (agent.act(&state)[0] - 0.8).abs();
        assert!(trained < initial.max(0.15), "policy did not improve: {initial} -> {trained}");
    }
}

//! Budgeted DDPG tuning loop (the paper's DDPG(2h) / DDPG-C(2h)).

use crate::agent::{DdpgAgent, DdpgConfig};
use lite_obs::Tracer;

/// One step of a tuning trajectory (same shape as the BO trace so Figure 8
/// can overlay them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneTrace {
    /// Cumulative tuning overhead in executed-application seconds.
    pub overhead_s: f64,
    /// Execution time of the trial configuration.
    pub time_s: f64,
    /// Best execution time so far.
    pub best_s: f64,
}

/// A budgeted DDPG tuner.
///
/// The environment contract mirrors CDBTune: each trial executes the
/// application under the proposed configuration, observes the engine's
/// inner status as the next state, and receives a reward that increases as
/// execution time drops below the first (default-configuration) trial.
/// DDPG-C is obtained by appending code features to every state vector
/// (QTune's workload-aware state) — the tuner itself is agnostic.
pub struct DdpgTuner {
    agent: DdpgAgent,
    /// Gradient updates per environment step.
    pub updates_per_step: usize,
    /// Span tracer: one `ddpg.step` span per environment trial (disabled
    /// by default).
    pub tracer: Tracer,
}

impl DdpgTuner {
    /// New tuner; `state_dim` must match what the environment emits,
    /// `action_dim` is the knob count.
    pub fn new(state_dim: usize, action_dim: usize, seed: u64) -> DdpgTuner {
        DdpgTuner {
            agent: DdpgAgent::new(DdpgConfig::new(state_dim, action_dim), seed),
            updates_per_step: 4,
            tracer: Tracer::disabled(),
        }
    }

    /// Run tuning until `budget_s` seconds of executed application time
    /// are spent.
    ///
    /// `step` maps a normalized action to `(execution time, next state)`;
    /// `initial_state` is the state observed under the default
    /// configuration (whose execution time `t_default` anchors rewards).
    pub fn run(
        &mut self,
        initial_state: Vec<f32>,
        t_default: f64,
        mut step: impl FnMut(&[f32]) -> (f64, Vec<f32>),
        budget_s: f64,
    ) -> (Vec<TuneTrace>, Vec<f32>) {
        let mut run_span = self.tracer.span("ddpg.run");
        if run_span.is_recording() {
            run_span.attr_f64("budget_s", budget_s);
            run_span.attr_f64("t_default_s", t_default);
        }
        let mut state = initial_state;
        let mut overhead = 0.0;
        let mut best = f64::INFINITY;
        let mut best_action = vec![0.5; self.agent.config.action_dim];
        let mut trace = Vec::new();
        let mut iteration = 0u64;
        loop {
            let mut step_span = self.tracer.span("ddpg.step");
            let action = self.agent.act_noisy(&state);
            let (t, next_state) = step(&action);
            overhead += t;
            if t < best {
                best = t;
                best_action = action.clone();
            }
            // CDBTune-style reward: relative improvement over default,
            // clipped so failure caps don't explode the critic.
            let reward = (((t_default - t) / t_default).clamp(-2.0, 1.0)) as f32;
            self.agent.remember(&state, &action, reward, &next_state, false);
            for _ in 0..self.updates_per_step {
                self.agent.train_step();
            }
            state = next_state;
            trace.push(TuneTrace { overhead_s: overhead, time_s: t, best_s: best });
            if step_span.is_recording() {
                step_span.attr_u64("iteration", iteration);
                step_span.attr_str("candidate", &format!("{action:.3?}"));
                step_span.attr_f64("actual_s", t);
                step_span.attr_f64("reward", f64::from(reward));
                step_span.attr_f64("best_s", best);
                step_span.attr_f64("overhead_s", overhead);
            }
            iteration += 1;
            if overhead >= budget_s {
                break;
            }
        }
        if run_span.is_recording() {
            run_span.attr_u64("steps", iteration);
            run_span.attr_f64("best_s", best);
        }
        (trace, best_action)
    }
}

/// [`DdpgAgent`] behind the unified [`Tuner`](lite_core::tuner::Tuner)
/// trait: an online CDBTune-style loop driven from the outside. The
/// environment state is the engine's inner-status summary of the most
/// recently observed run; the first observed runtime anchors rewards.
///
/// The agent's actor carries an RNG (OU exploration noise), so
/// `recommend(&self)` wraps it in a mutex — recommendation cost is one
/// small forward pass, the lock is held for microseconds.
pub struct DdpgServeTuner {
    /// The configuration space actions decode into.
    pub space: lite_sparksim::conf::ConfSpace,
    /// Gradient updates per observed run.
    pub updates_per_step: usize,
    /// Failure/time cap applied to observed runtimes.
    pub cap_s: f64,
    agent: std::sync::Mutex<DdpgAgent>,
    /// (rolling state, reward anchor): the inner status of the last
    /// observed run and the first run's capped time.
    env: std::sync::Mutex<(Vec<f32>, Option<f64>)>,
}

impl DdpgServeTuner {
    /// An online DDPG tuner over `space`. State dim is the engine's
    /// inner-status width (8), action dim the knob count.
    pub fn new(space: lite_sparksim::conf::ConfSpace, seed: u64) -> DdpgServeTuner {
        let agent = DdpgAgent::new(DdpgConfig::new(8, lite_sparksim::conf::NUM_KNOBS), seed);
        DdpgServeTuner {
            space,
            updates_per_step: 4,
            cap_s: 7200.0,
            agent: std::sync::Mutex::new(agent),
            env: std::sync::Mutex::new((vec![0.0; 8], None)),
        }
    }
}

impl lite_core::tuner::Tuner for DdpgServeTuner {
    fn name(&self) -> &'static str {
        "ddpg"
    }

    /// One noisy policy action decoded into a configuration. DDPG is a
    /// trial-driven tuner: it proposes a single candidate per call
    /// regardless of `k`.
    fn recommend(
        &self,
        _req: &lite_core::tuner::TuneRequest,
    ) -> Result<lite_core::tuner::TuneResult, lite_core::tuner::TuneError> {
        let state = self.env.lock().expect("env lock").0.clone();
        let action = self.agent.lock().expect("agent lock").act_noisy(&state);
        let mut u = [0.0; lite_sparksim::conf::NUM_KNOBS];
        for (ui, ai) in u.iter_mut().zip(action.iter()) {
            *ui = f64::from(*ai).clamp(0.0, 1.0);
        }
        let conf = self.space.decode(&u);
        Ok(lite_core::tuner::TuneResult {
            ranked: vec![lite_core::recommend::RankedCandidate { conf, predicted_s: 0.0 }],
            degraded: false,
        })
    }

    /// Store the transition (previous state, executed action, anchored
    /// reward, observed inner status) and train.
    fn observe(&mut self, fb: lite_core::tuner::Feedback) {
        let t = fb.result.capped_time(self.cap_s);
        let next_state: Vec<f32> = fb.result.inner_status().iter().map(|&v| v as f32).collect();
        let action: Vec<f32> = fb.conf.normalized(&self.space).iter().map(|&v| v as f32).collect();
        let mut env = self.env.lock().expect("env lock");
        let anchor = *env.1.get_or_insert(t);
        let reward = (((anchor - t) / anchor.max(1e-9)).clamp(-2.0, 1.0)) as f32;
        let mut agent = self.agent.lock().expect("agent lock");
        agent.remember(&env.0, &action, reward, &next_state, false);
        for _ in 0..self.updates_per_step {
            agent.train_step();
        }
        env.0 = next_state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy environment: time = 20 + 300*dist(action, optimum); state echoes
    /// the last action.
    fn env(action: &[f32]) -> (f64, Vec<f32>) {
        let opt = [0.8f32, 0.2];
        let d: f32 = action.iter().zip(opt.iter()).map(|(a, o)| (a - o) * (a - o)).sum();
        (20.0 + 300.0 * d as f64, action.to_vec())
    }

    #[test]
    fn tuner_explores_within_budget() {
        let mut tuner = DdpgTuner::new(2, 2, 11);
        let (trace, best) = tuner.run(vec![0.5, 0.5], 100.0, env, 3000.0);
        assert!(!trace.is_empty());
        assert!(trace.last().unwrap().overhead_s >= 3000.0);
        assert_eq!(best.len(), 2);
        for w in trace.windows(2) {
            assert!(w[1].best_s <= w[0].best_s);
        }
    }

    #[test]
    fn step_spans_match_the_trace() {
        let mut tuner = DdpgTuner::new(2, 2, 17);
        tuner.tracer = Tracer::new();
        let (trace, _) = tuner.run(vec![0.5, 0.5], 100.0, env, 500.0);
        let spans = tuner.tracer.finished();
        let run = spans.iter().find(|s| s.name == "ddpg.run").expect("run span");
        let steps: Vec<_> = spans.iter().filter(|s| s.name == "ddpg.step").collect();
        assert_eq!(steps.len(), trace.len());
        assert!(steps.iter().all(|s| s.parent == Some(run.id)));
        for (step, span) in trace.iter().zip(steps.iter()) {
            match span.attr("actual_s") {
                Some(lite_obs::AttrValue::F64(v)) => assert_eq!(*v, step.time_s),
                other => panic!("missing actual_s: {other:?}"),
            }
        }
    }

    #[test]
    fn serve_tuner_proposes_and_learns_through_the_unified_trait() {
        use lite_core::tuner::{Feedback, TuneRequest, Tuner};
        use lite_sparksim::cluster::ClusterSpec;
        use lite_sparksim::conf::ConfSpace;
        use lite_sparksim::exec::simulate;
        use lite_workloads::apps::{build_job, AppId};
        use lite_workloads::data::SizeTier;

        let space = ConfSpace::table_iv();
        let mut tuner = DdpgServeTuner::new(space.clone(), 31);
        let cluster = ClusterSpec::cluster_a();
        let data = AppId::Terasort.dataset(SizeTier::Valid);
        let plan = build_job(AppId::Terasort, &data);
        let req =
            TuneRequest { app: AppId::Terasort, data, cluster: cluster.clone(), k: 3, seed: 1 };
        for seed in 0..3u64 {
            let r = tuner.recommend(&req).unwrap();
            assert_eq!(r.ranked.len(), 1, "DDPG proposes one trial at a time");
            let conf = r.ranked[0].conf.clone();
            assert!(space.is_valid(&conf));
            let result = simulate(&cluster, &conf, &plan, 700 + seed);
            tuner.observe(Feedback {
                app: AppId::Terasort,
                data,
                cluster: cluster.clone(),
                conf,
                result,
            });
        }
        assert!(tuner.agent.lock().unwrap().buffer_len() >= 3);
    }

    #[test]
    fn tuner_improves_over_first_trial() {
        let mut tuner = DdpgTuner::new(2, 2, 13);
        let (trace, _) = tuner.run(vec![0.5, 0.5], 100.0, env, 8000.0);
        let first = trace.first().unwrap().time_s;
        let best = trace.last().unwrap().best_s;
        assert!(best <= first, "no improvement: first {first}, best {best}");
    }
}

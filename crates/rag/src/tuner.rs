//! [`RagTuner`]: retrieval-augmented configuration tuning.
//!
//! The zero-execution cold-start path: embed the target application
//! *statically* (no simulator run, no instrumentation run), retrieve the
//! top-k most similar historical runs from the [`RunStore`], **adapt**
//! each neighbor's configuration to the target data/cluster scale, and
//! rank the adapted candidates — either by scaled neighbor runtime (pure
//! retrieval) or, when a NECS model is attached, by batched NECS scoring
//! with templates interned from static extraction.
//!
//! The adaptation rule is deliberately first-order (ratios, then clamped
//! into the knob domains by [`SparkConf::from_values`]):
//!
//! * `spark.default.parallelism` scales with the core ratio times the
//!   square root of the data ratio (more data wants more, but sublinearly
//!   more, partitions per core);
//! * `executor.instances` scales with the node ratio,
//!   `executor.cores` with the cores-per-node ratio,
//! * executor/driver memory with the per-node memory ratio;
//! * every remaining knob (compression flags, fractions, buffers) carries
//!   over unchanged — these encode workload shape, not scale.
//!
//! [`RagTuner::warm_start`] exposes the adapted neighbor confs as seeds
//! for ACG/BO so an execution-driven tuner can start from retrieved
//! optima instead of from scratch, cutting its candidate budget.

use crate::embed::CodeEmbedder;
use crate::hnsw::HnswConfig;
use crate::store::{RunRecord, RunStore};
use lite_core::experiment::{Dataset, PredictionContext};
use lite_core::features::TemplateRegistry;
use lite_core::necs::Necs;
use lite_core::recommend::{score_candidates, RankedCandidate};
use lite_core::tuner::{Feedback, TuneError, TuneRequest, TuneResult, Tuner};
use lite_metrics::ranking::EXECUTION_CAP_S;
use lite_obs::{Registry, Tracer};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, Knob, SparkConf};
use lite_workloads::instrument::static_stage_codes;
use lite_workloads::{AppId, DataSpec};
use std::sync::Mutex;

/// Retrieval parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RagConfig {
    /// Neighbors retrieved per recommendation (candidates before dedup).
    pub neighbors: usize,
    /// Index build/search parameters.
    pub hnsw: HnswConfig,
}

impl Default for RagConfig {
    fn default() -> Self {
        RagConfig { neighbors: 8, hnsw: HnswConfig::default() }
    }
}

/// One retrieval hit after adaptation to the target scale.
#[derive(Debug, Clone)]
pub struct Retrieved {
    /// Application of the historical run.
    pub app: AppId,
    /// Embedding distance (squared L2) to the target.
    pub distance: f32,
    /// Historical failure-capped runtime in seconds.
    pub runtime_s: f64,
    /// The neighbor's conf adapted to the target data/cluster scale.
    pub conf: SparkConf,
    /// First-order runtime estimate of the adapted conf on the target.
    pub estimate_s: f64,
}

/// Optional NECS reranker: model + registry. The registry sits behind a
/// mutex so cold apps can be interned from *static* stage codes inside
/// `&self` recommendation calls — still zero executions.
struct NecsRanker {
    model: Necs,
    registry: Mutex<TemplateRegistry>,
}

/// Retrieval-augmented tuner over a [`RunStore`].
pub struct RagTuner {
    store: RunStore,
    embedder: CodeEmbedder,
    cfg: RagConfig,
    space: ConfSpace,
    ranker: Option<NecsRanker>,
}

impl std::fmt::Debug for RagTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RagTuner")
            .field("records", &self.store.len())
            .field("neighbors", &self.cfg.neighbors)
            .field("necs", &self.ranker.is_some())
            .finish()
    }
}

impl RagTuner {
    /// Pure-retrieval tuner over an existing store.
    pub fn new(store: RunStore, space: ConfSpace, cfg: RagConfig) -> RagTuner {
        RagTuner { store, embedder: CodeEmbedder::new(), cfg, space, ranker: None }
    }

    /// Build the store from a training dataset's run history.
    pub fn from_dataset(ds: &Dataset, cfg: RagConfig) -> RagTuner {
        let embedder = CodeEmbedder::new();
        let store = RunStore::from_dataset(ds, &embedder, cfg.hnsw);
        RagTuner { store, embedder, cfg, space: ds.space.clone(), ranker: None }
    }

    /// Attach a NECS model: adapted candidates are re-ranked by batched
    /// NECS scoring instead of scaled neighbor runtimes.
    pub fn with_necs(mut self, model: Necs, registry: TemplateRegistry) -> RagTuner {
        self.ranker = Some(NecsRanker { model, registry: Mutex::new(registry) });
        self
    }

    /// Register `rag.` metrics on `registry`.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.store.attach_metrics(registry);
    }

    /// Borrow the run store.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// Number of indexed historical runs.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    fn retrieve_embedded(
        &self,
        q: &[f32],
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
    ) -> Result<Vec<Retrieved>, TuneError> {
        if self.store.is_empty() {
            return Err(TuneError::Unavailable("retrieval store is empty"));
        }
        let hits = self.store.search(q, k.max(1));
        if hits.is_empty() {
            return Err(TuneError::Unavailable("retrieval returned no neighbors"));
        }
        Ok(hits
            .into_iter()
            .map(|h| {
                let conf = adapt_conf(&self.space, h.record, data, cluster);
                Retrieved {
                    app: h.record.app,
                    distance: h.distance,
                    runtime_s: h.record.runtime_s,
                    estimate_s: scale_runtime(h.record, data, cluster),
                    conf,
                }
            })
            .collect())
    }

    /// Retrieve the top-k most similar historical runs for a known app,
    /// adapted to the target scale. Nearest first.
    pub fn retrieve(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
    ) -> Result<Vec<Retrieved>, TuneError> {
        let q = self.embedder.embed(app, data, cluster);
        self.retrieve_embedded(&q, data, cluster, k)
    }

    /// Retrieve for raw application source the server has never seen.
    pub fn retrieve_source(
        &self,
        source: &str,
        data: &DataSpec,
        cluster: &ClusterSpec,
        k: usize,
    ) -> Result<Vec<Retrieved>, TuneError> {
        let q = self
            .embedder
            .embed_source(source, data, cluster)
            .map_err(|_| TuneError::Unavailable("source analysis failed"))?;
        self.retrieve_embedded(&q, data, cluster, k)
    }

    /// Rank retrieved candidates: dedup adapted confs (keeping the best
    /// estimate per distinct conf), then order by NECS prediction when a
    /// model is attached and the app is known, else by the first-order
    /// runtime estimate (`app: None` — e.g. raw-source queries — always
    /// ranks by estimate).
    pub fn rank(
        &self,
        app: Option<AppId>,
        data: &DataSpec,
        cluster: &ClusterSpec,
        retrieved: &[Retrieved],
        k: usize,
    ) -> Vec<RankedCandidate> {
        let mut seen: Vec<[u64; lite_sparksim::conf::NUM_KNOBS]> = Vec::new();
        let mut unique: Vec<&Retrieved> = Vec::new();
        for r in retrieved {
            let bits = r.conf.values().map(f64::to_bits);
            if !seen.contains(&bits) {
                seen.push(bits);
                unique.push(r);
            }
        }
        let confs: Vec<SparkConf> = unique.iter().map(|r| r.conf.clone()).collect();
        let scores: Vec<f64> = match app.and_then(|a| self.necs_scores(a, data, cluster, &confs)) {
            Some(s) => s,
            None => unique.iter().map(|r| r.estimate_s).collect(),
        };
        let mut ranked: Vec<RankedCandidate> = confs
            .into_iter()
            .zip(scores)
            .map(|(conf, predicted_s)| RankedCandidate { conf, predicted_s })
            .collect();
        ranked.sort_by(|a, b| a.predicted_s.total_cmp(&b.predicted_s));
        ranked.truncate(k.max(1));
        ranked
    }

    /// Batched NECS scores for the adapted candidates, interning the
    /// target app's templates from static extraction when it is cold.
    /// `None` when no model is attached.
    fn necs_scores(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        confs: &[SparkConf],
    ) -> Option<Vec<f64>> {
        let ranker = self.ranker.as_ref()?;
        let mut registry =
            ranker.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = match PredictionContext::warm(&registry, app, data, cluster) {
            Some(ctx) => ctx,
            None => {
                for stage in static_stage_codes(app) {
                    registry.intern(app, &stage);
                }
                PredictionContext::warm(&registry, app, data, cluster)?
            }
        };
        Some(score_candidates(&ranker.model, &registry, &ctx, cluster, confs, &Tracer::disabled()))
    }

    /// Adapted neighbor confs as warm-start seeds for ACG/BO (deduped,
    /// best-estimate first). Empty when the store cannot answer.
    pub fn warm_start(
        &self,
        app: AppId,
        data: &DataSpec,
        cluster: &ClusterSpec,
        n: usize,
    ) -> Vec<SparkConf> {
        let Ok(mut retrieved) = self.retrieve(app, data, cluster, n.max(1) * 2) else {
            return Vec::new();
        };
        retrieved.sort_by(|a, b| a.estimate_s.total_cmp(&b.estimate_s));
        let mut seen: Vec<[u64; lite_sparksim::conf::NUM_KNOBS]> = Vec::new();
        let mut out = Vec::new();
        for r in retrieved {
            let bits = r.conf.values().map(f64::to_bits);
            if seen.contains(&bits) {
                continue;
            }
            seen.push(bits);
            out.push(r.conf);
            if out.len() >= n {
                break;
            }
        }
        out
    }
}

impl Tuner for RagTuner {
    fn name(&self) -> &'static str {
        "rag"
    }

    fn recommend(&self, req: &TuneRequest) -> Result<TuneResult, TuneError> {
        let k = self.cfg.neighbors.max(req.k).max(1);
        let retrieved = self.retrieve(req.app, &req.data, &req.cluster, k)?;
        let ranked = self.rank(Some(req.app), &req.data, &req.cluster, &retrieved, req.k.max(1));
        if ranked.is_empty() {
            return Err(TuneError::Unavailable("no candidates after dedup"));
        }
        Ok(TuneResult { ranked, degraded: false })
    }

    fn observe(&mut self, fb: Feedback) {
        let embedding = self.embedder.embed(fb.app, &fb.data, &fb.cluster);
        self.store.push(
            &embedding,
            RunRecord {
                app: fb.app,
                data: fb.data,
                cluster: fb.cluster,
                conf: fb.conf,
                runtime_s: fb.result.capped_time(EXECUTION_CAP_S),
            },
        );
    }
}

/// Adapt a neighbor's conf to the target data/cluster scale (see the
/// module docs for the rule). Out-of-domain results clamp via
/// [`SparkConf::from_values`].
pub fn adapt_conf(
    space: &ConfSpace,
    rec: &RunRecord,
    data: &DataSpec,
    cluster: &ClusterSpec,
) -> SparkConf {
    let mut v = *rec.conf.values();
    let core_ratio = cluster.total_cores() as f64 / rec.cluster.total_cores().max(1) as f64;
    let node_ratio = cluster.nodes as f64 / rec.cluster.nodes.max(1) as f64;
    let cores_ratio = cluster.cores_per_node as f64 / rec.cluster.cores_per_node.max(1) as f64;
    let mem_ratio = cluster.mem_gb_per_node / rec.cluster.mem_gb_per_node.max(1e-6);
    let data_ratio = data.bytes.max(1) as f64 / rec.data.bytes.max(1) as f64;

    let scale = |v: &mut f64, r: f64| *v *= r;
    scale(&mut v[Knob::DefaultParallelism.index()], core_ratio * data_ratio.sqrt());
    scale(&mut v[Knob::ExecutorInstances.index()], node_ratio);
    scale(&mut v[Knob::ExecutorCores.index()], cores_ratio);
    scale(&mut v[Knob::ExecutorMemoryGb.index()], mem_ratio);
    scale(&mut v[Knob::DriverMemoryGb.index()], mem_ratio);
    SparkConf::from_values(space, v)
}

/// First-order runtime estimate of a neighbor's conf on the target:
/// neighbor runtime scaled by data volume and iteration count, inversely
/// by total cores. Capped at [`EXECUTION_CAP_S`].
pub fn scale_runtime(rec: &RunRecord, data: &DataSpec, cluster: &ClusterSpec) -> f64 {
    let data_ratio = data.bytes.max(1) as f64 / rec.data.bytes.max(1) as f64;
    let iter_ratio = data.iterations.max(1) as f64 / rec.data.iterations.max(1) as f64;
    let core_ratio = cluster.total_cores().max(1) as f64 / rec.cluster.total_cores().max(1) as f64;
    (rec.runtime_s * data_ratio * iter_ratio / core_ratio).min(EXECUTION_CAP_S)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite_workloads::SizeTier;

    fn record(app: AppId, tier: SizeTier, cluster: ClusterSpec, runtime_s: f64) -> RunRecord {
        let space = ConfSpace::table_iv();
        RunRecord { app, data: app.dataset(tier), cluster, conf: space.default_conf(), runtime_s }
    }

    fn small_tuner() -> RagTuner {
        let space = ConfSpace::table_iv();
        let embedder = CodeEmbedder::new();
        let mut store = RunStore::new(crate::embed::EMBED_DIM, HnswConfig::default());
        for app in [AppId::Sort, AppId::Terasort, AppId::KMeans, AppId::Svm, AppId::PageRank] {
            for tier in [SizeTier::Train(0), SizeTier::Train(2)] {
                let rec = record(app, tier, ClusterSpec::cluster_a(), 20.0);
                let v = embedder.embed(rec.app, &rec.data, &rec.cluster);
                store.push(&v, rec);
            }
        }
        RagTuner::new(store, space, RagConfig::default())
    }

    #[test]
    fn adaptation_scales_parallelism_with_cores_and_data() {
        let space = ConfSpace::table_iv();
        let rec = record(AppId::Sort, SizeTier::Train(0), ClusterSpec::cluster_a(), 10.0);
        let big = AppId::Sort.dataset(SizeTier::Test);
        let adapted = adapt_conf(&space, &rec, &big, &ClusterSpec::cluster_c());
        assert!(
            adapted.get(Knob::DefaultParallelism) > rec.conf.get(Knob::DefaultParallelism),
            "8x cores and 400x data must raise parallelism"
        );
        assert_eq!(
            adapted.get(Knob::ShuffleCompress),
            rec.conf.get(Knob::ShuffleCompress),
            "shape knobs carry over"
        );
    }

    #[test]
    fn recommend_prefers_same_app_neighbors() {
        let tuner = small_tuner();
        let req = TuneRequest {
            app: AppId::KMeans,
            data: AppId::KMeans.dataset(SizeTier::Valid),
            cluster: ClusterSpec::cluster_a(),
            k: 3,
            seed: 7,
        };
        let retrieved =
            tuner.retrieve(req.app, &req.data, &req.cluster, 4).expect("non-empty store answers");
        assert_eq!(retrieved[0].app, AppId::KMeans, "nearest neighbor shares stage code");
        let result = tuner.recommend(&req).expect("recommendation succeeds");
        assert!(!result.ranked.is_empty() && !result.degraded);
        assert!(result
            .ranked
            .windows(2)
            .all(|w| w[0].predicted_s <= w[1].predicted_s || w[1].predicted_s.is_nan()));
    }

    #[test]
    fn empty_store_is_unavailable() {
        let space = ConfSpace::table_iv();
        let store = RunStore::new(crate::embed::EMBED_DIM, HnswConfig::default());
        let tuner = RagTuner::new(store, space, RagConfig::default());
        let req = TuneRequest {
            app: AppId::Sort,
            data: AppId::Sort.dataset(SizeTier::Valid),
            cluster: ClusterSpec::cluster_a(),
            k: 1,
            seed: 1,
        };
        assert!(matches!(tuner.recommend(&req), Err(TuneError::Unavailable(_))));
    }

    #[test]
    fn observe_grows_the_store() {
        let mut tuner = small_tuner();
        let before = tuner.len();
        let conf = ConfSpace::table_iv().default_conf();
        let data = AppId::Sort.dataset(SizeTier::Valid);
        let cluster = ClusterSpec::cluster_b();
        let result = lite_sparksim::exec::simulate(
            &cluster,
            &conf,
            &lite_workloads::build_job(AppId::Sort, &data),
            42,
        );
        tuner.observe(Feedback { app: AppId::Sort, data, cluster, conf, result });
        assert_eq!(tuner.len(), before + 1);
    }

    #[test]
    fn warm_start_yields_deduped_confs() {
        let tuner = small_tuner();
        let seeds = tuner.warm_start(
            AppId::Svm,
            &AppId::Svm.dataset(SizeTier::Test),
            &ClusterSpec::cluster_c(),
            4,
        );
        assert!(!seeds.is_empty());
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a.values(), b.values(), "warm-start seeds are distinct");
            }
        }
    }
}

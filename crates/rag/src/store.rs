//! Historical run storage: the HNSW index plus the per-point payload.
//!
//! A [`RunStore`] pairs each indexed embedding with the
//! (app, data, cluster, conf, runtime) record it came from. Records ingest
//! from a trained [`Dataset`](lite_core::experiment::Dataset) (the same
//! history the NECS model trains on) or from JSON-lines manifests — one
//! object per line, the SLOG/report idiom — so a serving process can
//! rebuild its retrieval plane from committed artifacts.

use crate::embed::CodeEmbedder;
use crate::hnsw::{Hnsw, HnswConfig};
use crate::vecs::Neighbor as IndexNeighbor;
use lite_core::experiment::Dataset;
use lite_obs::{Counter, Gauge, Histogram, Json, Registry};
use lite_sparksim::cluster::ClusterSpec;
use lite_sparksim::conf::{ConfSpace, SparkConf, NUM_KNOBS};
use lite_workloads::{AppId, DataSpec};
use std::time::Instant;

/// One historical run: the payload behind one indexed embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Application that ran.
    pub app: AppId,
    /// Input data it ran on.
    pub data: DataSpec,
    /// Cluster it ran on.
    pub cluster: ClusterSpec,
    /// Configuration it ran under.
    pub conf: SparkConf,
    /// Failure-capped wall-clock seconds.
    pub runtime_s: f64,
}

/// One retrieval hit: index distance plus the stored record.
#[derive(Debug, Clone, Copy)]
pub struct Hit<'a> {
    /// Point id in the index.
    pub id: u32,
    /// Squared L2 distance from the query embedding.
    pub distance: f32,
    /// The historical run.
    pub record: &'a RunRecord,
}

/// Metrics registered under the `rag.` prefix when attached.
#[derive(Clone)]
struct StoreMetrics {
    searches: Counter,
    search_ns: Histogram,
    inserts: Counter,
    size: Gauge,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> StoreMetrics {
        StoreMetrics {
            searches: registry.counter("rag.searches"),
            search_ns: registry.histogram("rag.search_ns"),
            inserts: registry.counter("rag.inserts"),
            size: registry.gauge("rag.index_size"),
        }
    }
}

/// HNSW index + aligned record payloads.
#[derive(Clone)]
pub struct RunStore {
    index: Hnsw,
    records: Vec<RunRecord>,
    metrics: Option<StoreMetrics>,
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("records", &self.records.len())
            .field("dim", &self.index.dim())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl RunStore {
    /// Empty store over `dim`-dimensional embeddings.
    pub fn new(dim: usize, cfg: HnswConfig) -> RunStore {
        RunStore { index: Hnsw::new(dim, cfg), records: Vec::new(), metrics: None }
    }

    /// Ingest every run of a training dataset, embedding with `embedder`.
    pub fn from_dataset(ds: &Dataset, embedder: &CodeEmbedder, cfg: HnswConfig) -> RunStore {
        let mut store = RunStore::new(crate::embed::EMBED_DIM, cfg);
        for run in &ds.runs {
            let cluster = &ds.clusters[run.cluster];
            let embedding = embedder.embed(run.app, &run.data, cluster);
            store.push(
                &embedding,
                RunRecord {
                    app: run.app,
                    data: run.data,
                    cluster: cluster.clone(),
                    conf: run.conf.clone(),
                    runtime_s: ds.run_time(run),
                },
            );
        }
        store
    }

    /// Register `rag.` metrics (searches, search_ns, inserts, index_size).
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let m = StoreMetrics::new(registry);
        m.size.set(self.len() as f64);
        self.metrics = Some(m);
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no runs.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the underlying index (serialization, diagnostics).
    pub fn index(&self) -> &Hnsw {
        &self.index
    }

    /// Borrow the stored records.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Insert one embedded run.
    pub fn push(&mut self, embedding: &[f32], record: RunRecord) -> u32 {
        let id = self.index.insert(embedding);
        self.records.push(record);
        if let Some(m) = &self.metrics {
            m.inserts.inc();
            m.size.set(self.len() as f64);
        }
        id
    }

    /// Top-k retrieval, nearest first.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit<'_>> {
        let t0 = Instant::now();
        let neighbors = self.index.search(query, k);
        if let Some(m) = &self.metrics {
            m.searches.inc();
            m.search_ns.record(t0.elapsed().as_nanos() as u64);
        }
        neighbors.into_iter().map(|n| self.hit(n)).collect()
    }

    fn hit(&self, n: IndexNeighbor) -> Hit<'_> {
        Hit { id: n.id, distance: n.dist, record: &self.records[n.id as usize] }
    }

    /// Serialize all records as JSON lines (one object per line).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&record_to_json(rec).render());
            out.push('\n');
        }
        out
    }

    /// Ingest a JSON-lines manifest, embedding each parsed record. Blank
    /// and unparsable lines are skipped; returns how many records landed.
    pub fn ingest_jsonl(
        &mut self,
        space: &ConfSpace,
        embedder: &CodeEmbedder,
        text: &str,
    ) -> usize {
        let mut ingested = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(doc) = Json::parse(line) else { continue };
            let Some(rec) = record_from_json(space, &doc) else { continue };
            let embedding = embedder.embed(rec.app, &rec.data, &rec.cluster);
            self.push(&embedding, rec);
            ingested += 1;
        }
        ingested
    }
}

/// Encode one record as a JSON object (inverse of [`record_from_json`]).
pub fn record_to_json(rec: &RunRecord) -> Json {
    Json::obj(vec![
        ("app", Json::Str(rec.app.name().to_string())),
        (
            "data",
            Json::obj(vec![
                ("rows", Json::UInt(rec.data.rows)),
                ("cols", Json::UInt(rec.data.cols as u64)),
                ("iterations", Json::UInt(rec.data.iterations as u64)),
                ("partitions", Json::UInt(rec.data.partitions as u64)),
                ("bytes", Json::UInt(rec.data.bytes)),
            ]),
        ),
        (
            "cluster",
            Json::obj(vec![
                ("name", Json::Str(rec.cluster.name.clone())),
                ("nodes", Json::UInt(rec.cluster.nodes as u64)),
                ("cores_per_node", Json::UInt(rec.cluster.cores_per_node as u64)),
                ("cpu_ghz", Json::Num(rec.cluster.cpu_ghz)),
                ("mem_gb_per_node", Json::Num(rec.cluster.mem_gb_per_node)),
                ("mem_mts", Json::Num(rec.cluster.mem_mts)),
                ("net_gbps", Json::Num(rec.cluster.net_gbps)),
            ]),
        ),
        ("conf", Json::Arr(rec.conf.values().iter().map(|&v| Json::Num(v)).collect())),
        ("runtime_s", Json::Num(rec.runtime_s)),
    ])
}

/// Decode one record; `None` on any missing or malformed field.
pub fn record_from_json(space: &ConfSpace, doc: &Json) -> Option<RunRecord> {
    let app_name = doc.get("app")?.as_str()?;
    let app = AppId::all().iter().copied().find(|a| a.name().eq_ignore_ascii_case(app_name))?;
    let d = doc.get("data")?;
    let data = DataSpec {
        rows: d.get("rows")?.as_u64()?,
        cols: d.get("cols")?.as_u64()? as u32,
        iterations: d.get("iterations")?.as_u64()? as u32,
        partitions: d.get("partitions")?.as_u64()? as u32,
        bytes: d.get("bytes")?.as_u64()?,
    };
    let c = doc.get("cluster")?;
    let cluster = ClusterSpec {
        name: c.get("name")?.as_str()?.to_string(),
        nodes: c.get("nodes")?.as_u64()? as u32,
        cores_per_node: c.get("cores_per_node")?.as_u64()? as u32,
        cpu_ghz: c.get("cpu_ghz")?.as_f64()?,
        mem_gb_per_node: c.get("mem_gb_per_node")?.as_f64()?,
        mem_mts: c.get("mem_mts")?.as_f64()?,
        net_gbps: c.get("net_gbps")?.as_f64()?,
    };
    let conf_arr = doc.get("conf")?.as_arr()?;
    if conf_arr.len() != NUM_KNOBS {
        return None;
    }
    let mut values = [0.0f64; NUM_KNOBS];
    for (i, v) in conf_arr.iter().enumerate() {
        values[i] = v.as_f64()?;
    }
    Some(RunRecord {
        app,
        data,
        cluster,
        conf: SparkConf::from_values(space, values),
        runtime_s: doc.get("runtime_s")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite_workloads::SizeTier;

    fn sample_record(app: AppId, tier: SizeTier, runtime_s: f64) -> RunRecord {
        let space = ConfSpace::table_iv();
        RunRecord {
            app,
            data: app.dataset(tier),
            cluster: ClusterSpec::cluster_b(),
            conf: space.default_conf(),
            runtime_s,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let embedder = CodeEmbedder::new();
        let space = ConfSpace::table_iv();
        let mut store = RunStore::new(crate::embed::EMBED_DIM, HnswConfig::default());
        for (i, app) in [AppId::Sort, AppId::KMeans, AppId::PageRank].into_iter().enumerate() {
            let rec = sample_record(app, SizeTier::Train(0), 10.0 + i as f64);
            let v = embedder.embed(rec.app, &rec.data, &rec.cluster);
            store.push(&v, rec);
        }
        let text = store.export_jsonl();
        let mut back = RunStore::new(crate::embed::EMBED_DIM, HnswConfig::default());
        let n = back.ingest_jsonl(&space, &embedder, &text);
        assert_eq!(n, 3);
        assert_eq!(back.records(), store.records());
        // Same ingestion order + same build seed -> identical index bytes.
        assert_eq!(back.index().to_bytes(), store.index().to_bytes());
    }

    #[test]
    fn ingest_skips_garbage_lines() {
        let embedder = CodeEmbedder::new();
        let space = ConfSpace::table_iv();
        let mut store = RunStore::new(crate::embed::EMBED_DIM, HnswConfig::default());
        let good = record_to_json(&sample_record(AppId::Sort, SizeTier::Valid, 4.0)).render();
        let text = format!("not json\n{{\"app\":\"nope\"}}\n\n{good}\n");
        assert_eq!(store.ingest_jsonl(&space, &embedder, &text), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn search_returns_nearest_record() {
        let embedder = CodeEmbedder::new();
        let mut store = RunStore::new(crate::embed::EMBED_DIM, HnswConfig::default());
        for app in [AppId::Sort, AppId::Terasort, AppId::KMeans, AppId::Svm] {
            let rec = sample_record(app, SizeTier::Train(1), 5.0);
            let v = embedder.embed(rec.app, &rec.data, &rec.cluster);
            store.push(&v, rec);
        }
        let target = sample_record(AppId::KMeans, SizeTier::Train(1), 0.0);
        let q = embedder.embed(target.app, &target.data, &target.cluster);
        let hits = store.search(&q, 2);
        assert_eq!(hits[0].record.app, AppId::KMeans);
        assert!(hits[0].distance <= hits[1].distance);
    }
}

//! Static app/stage-code embeddings for retrieval.
//!
//! The retrieval key must be computable with **zero executions** of the
//! target application, so the code part of the embedding comes from
//! `lite_workloads::instrument::static_stage_codes` (backed by the
//! `lite-analyze` parser, proven StageCode-equal to instrumented runs) —
//! never from running the simulator. Tokens of every stage's expanded
//! source plus the operator kinds of its DAG are feature-hashed (FNV-1a)
//! into [`CODE_DIMS`] buckets, log-squashed and L2-normalized: two
//! applications sharing shuffle structure and operator mix land close even
//! when no token matches exactly (the hashed analogue of NECS's learned
//! stage-code encoder).
//!
//! The remaining [`SCALE_DIMS`] components carry the data-scale and
//! cluster-environment features (same pre-scaling as
//! `lite::features::env_features`), down-weighted by [`SCALE_WEIGHT`] so
//! code similarity dominates but, among equal codes, neighbors at a similar
//! scale win.

use lite_sparksim::cluster::ClusterSpec;
use lite_workloads::instrument::static_stage_codes;
use lite_workloads::{tokenize, AppId, DataSpec};
use std::collections::HashMap;
use std::sync::Mutex;

/// Hashed stage-code buckets.
pub const CODE_DIMS: usize = 48;
/// Data + environment feature slots.
pub const SCALE_DIMS: usize = 16;
/// Total embedding dimensionality.
pub const EMBED_DIM: usize = CODE_DIMS + SCALE_DIMS;
/// Norm of the scale block relative to the (unit-norm) code block.
pub const SCALE_WEIGHT: f32 = 0.5;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn l2_normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 && norm.is_finite() {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Hash one stage's tokens and DAG operators into the code buckets.
fn hash_stage(buckets: &mut [f32; CODE_DIMS], source: &str, ops: &[&str], weight: f32) {
    for tok in tokenize(source) {
        let slot = (fnv1a64(tok.as_bytes()) % CODE_DIMS as u64) as usize;
        buckets[slot] += weight;
    }
    for op in ops {
        // Salt op-kind hashes so an operator label colliding with a source
        // token still lands in its own bucket distribution.
        let h = fnv1a64(op.as_bytes()) ^ 0x9e37_79b9_7f4a_7c15;
        buckets[(h % CODE_DIMS as u64) as usize] += 4.0 * weight;
    }
}

fn finish_code(mut buckets: [f32; CODE_DIMS]) -> [f32; CODE_DIMS] {
    for x in buckets.iter_mut() {
        *x = (1.0 + *x).ln();
    }
    l2_normalize(&mut buckets);
    buckets
}

fn scale_block(data: &DataSpec, cluster: &ClusterSpec) -> [f32; SCALE_DIMS] {
    let d = data.log_features();
    let e = cluster.env_features();
    let mut s = [0.0f32; SCALE_DIMS];
    s[0] = d[0] as f32; // ln rows
    s[1] = d[1] as f32; // cols
    s[2] = d[2] as f32; // iterations
    s[3] = d[3] as f32; // ln partitions
    s[4] = (1.0 + data.bytes as f64 / (1 << 20) as f64).ln() as f32;
    s[5] = e[0] as f32; // nodes
    s[6] = e[1] as f32; // cores per node
    s[7] = e[2] as f32; // GHz
    s[8] = (e[3] / 8.0) as f32; // mem GB, same pre-scaling as lite::features
    s[9] = (e[4] / 1000.0) as f32; // MT/s
    s[10] = e[5] as f32; // net Gbps
    s[11] = (cluster.total_cores() as f32).ln();
    l2_normalize(&mut s);
    for x in s.iter_mut() {
        *x *= SCALE_WEIGHT;
    }
    s
}

fn assemble(code: &[f32; CODE_DIMS], scale: &[f32; SCALE_DIMS]) -> Vec<f32> {
    let mut v = Vec::with_capacity(EMBED_DIM);
    v.extend_from_slice(code);
    v.extend_from_slice(scale);
    v
}

/// Embeds applications (by id or by raw source) together with their data
/// and cluster scale. Per-app code blocks are cached: static extraction
/// parses the app's main source, which is worth doing once, not per query.
#[derive(Debug, Default)]
pub struct CodeEmbedder {
    cache: Mutex<HashMap<AppId, [f32; CODE_DIMS]>>,
}

impl CodeEmbedder {
    /// New embedder with an empty cache.
    pub fn new() -> CodeEmbedder {
        CodeEmbedder::default()
    }

    fn code_block(&self, app: AppId) -> [f32; CODE_DIMS] {
        let mut cache = self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(hit) = cache.get(&app) {
            return *hit;
        }
        let mut buckets = [0.0f32; CODE_DIMS];
        for stage in static_stage_codes(app) {
            let ops: Vec<&str> = stage.dag.nodes.iter().map(|op| op.label()).collect();
            hash_stage(&mut buckets, &stage.source, &ops, stage.instances_per_run as f32);
        }
        let code = finish_code(buckets);
        cache.insert(app, code);
        code
    }

    /// Embed a known application at a given data/cluster scale. Always
    /// returns exactly [`EMBED_DIM`] components.
    pub fn embed(&self, app: AppId, data: &DataSpec, cluster: &ClusterSpec) -> Vec<f32> {
        assemble(&self.code_block(app), &scale_block(data, cluster))
    }

    /// Embed raw application source (the wire path for apps the server has
    /// never seen). Fails only when `lite-analyze` cannot extract stages.
    pub fn embed_source(
        &self,
        source: &str,
        data: &DataSpec,
        cluster: &ClusterSpec,
    ) -> Result<Vec<f32>, lite_analyze::AnalyzeError> {
        let opts = lite_analyze::ExtractOptions { iterations: data.iterations.max(1) };
        let extraction = lite_analyze::extract_stages(source, opts)?;
        let mut buckets = [0.0f32; CODE_DIMS];
        for stage in &extraction.stages {
            let ops: Vec<&str> = stage.ops.iter().map(|op| op.label()).collect();
            // Stage sources from raw extraction are not expanded through
            // srcgen; hash the template name next to the shared main
            // source so per-stage structure still differentiates.
            hash_stage(&mut buckets, &stage.template, &ops, stage.instances_per_run as f32);
        }
        hash_stage(&mut buckets, source, &[], 1.0);
        Ok(assemble(&finish_code(buckets), &scale_block(data, cluster)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lite_workloads::SizeTier;

    #[test]
    fn embedding_is_deterministic_and_sized() {
        let e = CodeEmbedder::new();
        let data = AppId::KMeans.dataset(SizeTier::Train(0));
        let c = ClusterSpec::cluster_a();
        let a = e.embed(AppId::KMeans, &data, &c);
        let b = e.embed(AppId::KMeans, &data, &c);
        assert_eq!(a.len(), EMBED_DIM);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn different_apps_are_farther_than_different_scales() {
        let e = CodeEmbedder::new();
        let c = ClusterSpec::cluster_a();
        let small = AppId::KMeans.dataset(SizeTier::Train(0));
        let big = AppId::KMeans.dataset(SizeTier::Test);
        let same_app = crate::vecs::l2_sq(
            &e.embed(AppId::KMeans, &small, &c),
            &e.embed(AppId::KMeans, &big, &c),
        );
        let other_app = crate::vecs::l2_sq(
            &e.embed(AppId::KMeans, &small, &c),
            &e.embed(AppId::Terasort, &small, &c),
        );
        assert!(
            same_app < other_app,
            "scale change ({same_app}) must cost less than code change ({other_app})"
        );
    }

    #[test]
    fn source_embedding_matches_dim() {
        let e = CodeEmbedder::new();
        let data = AppId::Sort.dataset(SizeTier::Train(0));
        let c = ClusterSpec::cluster_b();
        let v = e
            .embed_source(AppId::Sort.main_source(), &data, &c)
            .expect("known-good source extracts");
        assert_eq!(v.len(), EMBED_DIM);
    }
}

//! LITE-RAG: retrieval-augmented configuration tuning.
//!
//! The serving plane's cold-start answer without executing anything: a
//! zero-dependency HNSW index ([`hnsw`]) over static stage-code embeddings
//! ([`embed`]), a [`store::RunStore`] pairing each indexed point with its
//! historical (app, data, cluster, conf, runtime) record, and a
//! [`tuner::RagTuner`] that retrieves the top-k most similar runs, adapts
//! their configurations to the target scale and ranks them — optionally
//! through batched NECS scoring. [`vecs`] holds the flat vector storage
//! and the brute-force oracle the recall gates compare against.
//!
//! Everything ranks through `total_cmp`: NaN or infinite embedding
//! components degrade ordering quality, never determinism, and never
//! panic.

pub mod embed;
pub mod hnsw;
pub mod store;
pub mod tuner;
pub mod vecs;

pub use embed::{CodeEmbedder, EMBED_DIM};
pub use hnsw::{DecodeError, Hnsw, HnswConfig};
pub use store::{record_from_json, record_to_json, Hit, RunRecord, RunStore};
pub use tuner::{adapt_conf, scale_runtime, RagConfig, RagTuner, Retrieved};
pub use vecs::{exact_knn, l2_sq, Neighbor, VecSet};

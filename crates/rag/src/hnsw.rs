//! Hierarchical Navigable Small World (HNSW) approximate nearest-neighbor
//! index — zero dependencies, deterministic, serializable.
//!
//! Layout follows Malkov & Yashunin: every point lives on layer 0; a point
//! additionally appears on layer `l` with probability `exp(-l / mL)` where
//! `mL = 1/ln(M)`. Upper layers form an expressway of long links descended
//! greedily; layer 0 is searched with a beam of width `ef`. Insertion links
//! each new point to neighbors chosen by the *heuristic* rule (a candidate
//! is kept only if it is closer to the query than to any already-selected
//! neighbor), which preserves links across cluster boundaries and is what
//! keeps recall high on clustered corpora.
//!
//! Determinism: level draws come from a private splitmix64 stream seeded by
//! [`HnswConfig::seed`], so the same insertion order always builds the same
//! graph, and [`Hnsw::to_bytes`] / [`Hnsw::from_bytes`] round-trip the
//! entire structure bit-identically (`LRAG` magic, versioned).

use crate::vecs::{l2_sq, Neighbor, VecSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max links per point on layers ≥ 1.
    pub m: usize,
    /// Max links per point on layer 0 (conventionally `2·m`).
    pub m0: usize,
    /// Beam width while building.
    pub ef_construction: usize,
    /// Default beam width while searching (raised to `k` when `k` larger).
    pub ef_search: usize,
    /// Seed for the level-sampling stream.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, m0: 32, ef_construction: 100, ef_search: 64, seed: 0x11f3_5eed }
    }
}

/// Highest layer a point may be assigned (bounds per-node link storage).
const MAX_LEVEL: u8 = 16;

/// Why a serialized index failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// First four bytes were not `LRAG`.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the declared contents.
    Truncated,
    /// Structurally invalid contents (reason attached).
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an LRAG index (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported LRAG version {v}"),
            DecodeError::Truncated => write!(f, "truncated LRAG index"),
            DecodeError::Corrupt(why) => write!(f, "corrupt LRAG index: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: [u8; 4] = *b"LRAG";
const VERSION: u32 = 1;

/// The index. Points are addressed by insertion order (`u32` ids shared
/// with the caller's side tables, e.g. [`crate::store::RunStore`] records).
#[derive(Debug, Clone, PartialEq)]
pub struct Hnsw {
    cfg: HnswConfig,
    vecs: VecSet,
    /// `links[id][layer]` = neighbor ids of `id` on `layer`.
    links: Vec<Vec<Vec<u32>>>,
    /// Top layer of each point.
    levels: Vec<u8>,
    /// Entry point id (meaningful only when non-empty).
    entry: u32,
    /// Current top layer of the graph.
    max_level: u8,
    /// Level-sampling stream state.
    rng: u64,
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Hnsw {
    /// Empty index over `dim`-dimensional vectors.
    pub fn new(dim: usize, cfg: HnswConfig) -> Hnsw {
        assert!(cfg.m >= 2 && cfg.m0 >= cfg.m, "HNSW needs m >= 2 and m0 >= m");
        assert!(cfg.ef_construction >= cfg.m, "ef_construction must be >= m");
        Hnsw {
            cfg,
            vecs: VecSet::new(dim),
            links: Vec::new(),
            levels: Vec::new(),
            entry: 0,
            max_level: 0,
            rng: cfg.seed,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.vecs.dim()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.vecs.is_empty()
    }

    /// Build parameters.
    pub fn config(&self) -> &HnswConfig {
        &self.cfg
    }

    /// Borrow the flat vector storage (the recall oracle scans this).
    pub fn vectors(&self) -> &VecSet {
        &self.vecs
    }

    fn m_for(&self, layer: u8) -> usize {
        if layer == 0 {
            self.cfg.m0
        } else {
            self.cfg.m
        }
    }

    /// Draw a level: geometric with `mL = 1/ln(M)`, capped at
    /// [`MAX_LEVEL`].
    fn sample_level(&mut self) -> u8 {
        let bits = splitmix64(&mut self.rng);
        // Map the top 53 bits to a uniform in (0, 1].
        let u = ((bits >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let ml = 1.0 / (self.cfg.m as f64).ln();
        let level = (-u.ln() * ml).floor();
        if level.is_finite() && level > 0.0 {
            (level as u64).min(MAX_LEVEL as u64) as u8
        } else {
            0
        }
    }

    /// Greedy descent on one upper layer: walk to the closest neighbor
    /// until no neighbor improves.
    fn greedy_step(&self, q: &[f32], mut ep: u32, layer: u8) -> u32 {
        let mut best = self.vecs.dist(ep, q);
        loop {
            let mut improved = false;
            for &n in &self.links[ep as usize][layer as usize] {
                let d = self.vecs.dist(n, q);
                if d.total_cmp(&best).is_lt() {
                    best = d;
                    ep = n;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search on one layer: returns up to `ef` nearest candidates,
    /// ascending by `(distance, id)`.
    fn search_layer(&self, q: &[f32], ep: u32, ef: usize, layer: u8) -> Vec<Neighbor> {
        let mut visited = vec![false; self.len()];
        visited[ep as usize] = true;
        let start = Neighbor { dist: self.vecs.dist(ep, q), id: ep };
        // Min-heap of frontier candidates, max-heap of current best `ef`.
        let mut frontier: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
        frontier.push(Reverse(start));
        let mut best: BinaryHeap<Neighbor> = BinaryHeap::new();
        best.push(start);

        while let Some(Reverse(cand)) = frontier.pop() {
            if best.len() >= ef {
                if let Some(worst) = best.peek() {
                    if cand.dist.total_cmp(&worst.dist).is_gt() {
                        break;
                    }
                }
            }
            for &n in &self.links[cand.id as usize][layer as usize] {
                if std::mem::replace(&mut visited[n as usize], true) {
                    continue;
                }
                let next = Neighbor { dist: self.vecs.dist(n, q), id: n };
                let admit =
                    best.len() < ef || best.peek().is_none_or(|worst| next.cmp(worst).is_lt());
                if admit {
                    frontier.push(Reverse(next));
                    best.push(next);
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out = best.into_vec();
        out.sort_unstable();
        out
    }

    /// Heuristic neighbor selection: keep a candidate only when it is
    /// closer to the query point than to every neighbor already kept, then
    /// backfill with the nearest skipped candidates ("keep pruned
    /// connections") so low-degree nodes stay reachable.
    fn select_heuristic(&self, cands: &[Neighbor], m: usize) -> Vec<u32> {
        let mut kept: Vec<Neighbor> = Vec::with_capacity(m);
        let mut skipped: Vec<Neighbor> = Vec::new();
        for &c in cands {
            if kept.len() >= m {
                break;
            }
            let diverse = kept.iter().all(|s| {
                let between = l2_sq(self.vecs.get(c.id), self.vecs.get(s.id));
                c.dist.total_cmp(&between).is_lt()
            });
            if diverse {
                kept.push(c);
            } else {
                skipped.push(c);
            }
        }
        for &c in &skipped {
            if kept.len() >= m {
                break;
            }
            kept.push(c);
        }
        kept.into_iter().map(|n| n.id).collect()
    }

    /// Re-prune `node`'s links on `layer` after gaining a backlink, using
    /// the same heuristic as insertion.
    fn shrink_links(&mut self, node: u32, layer: u8) {
        let m = self.m_for(layer);
        let current = &self.links[node as usize][layer as usize];
        if current.len() <= m {
            return;
        }
        let base = self.vecs.get(node);
        let mut cands: Vec<Neighbor> = current
            .iter()
            .map(|&n| Neighbor { dist: l2_sq(self.vecs.get(n), base), id: n })
            .collect();
        cands.sort_unstable();
        let pruned = self.select_heuristic(&cands, m);
        self.links[node as usize][layer as usize] = pruned;
    }

    /// Insert one vector, returning its id.
    pub fn insert(&mut self, v: &[f32]) -> u32 {
        let id = self.vecs.push(v);
        let level = self.sample_level();
        self.levels.push(level);
        self.links.push(vec![Vec::new(); level as usize + 1]);
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return id;
        }

        let q = self.vecs.get(id).to_vec();
        let mut ep = self.entry;
        for layer in (level + 1..=self.max_level).rev() {
            ep = self.greedy_step(&q, ep, layer);
        }
        for layer in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer(&q, ep, self.cfg.ef_construction, layer);
            let chosen = self.select_heuristic(&cands, self.m_for(layer));
            for &n in &chosen {
                self.links[id as usize][layer as usize].push(n);
                self.links[n as usize][layer as usize].push(id);
                self.shrink_links(n, layer);
            }
            if let Some(closest) = cands.first() {
                ep = closest.id;
            }
        }
        if level > self.max_level {
            self.entry = id;
            self.max_level = level;
        }
        id
    }

    /// Search: up to `k` approximate nearest neighbors, ascending by
    /// `(distance, id)`. The beam width is `max(ef_search, k)`.
    pub fn search(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_ef(q, k, self.cfg.ef_search)
    }

    /// Search with an explicit beam width (`ef` is raised to `k`).
    pub fn search_ef(&self, q: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut ep = self.entry;
        for layer in (1..=self.max_level).rev() {
            ep = self.greedy_step(q, ep, layer);
        }
        let mut out = self.search_layer(q, ep, ef.max(k), 0);
        out.truncate(k);
        out
    }

    /// Serialize to the versioned `LRAG` binary format (little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(64 + n * (self.dim() * 4 + 16));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim() as u32).to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.m as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.m0 as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.ef_construction as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.ef_search as u32).to_le_bytes());
        out.extend_from_slice(&self.cfg.seed.to_le_bytes());
        out.extend_from_slice(&self.rng.to_le_bytes());
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.push(self.max_level);
        out.extend_from_slice(&self.levels);
        for per_node in &self.links {
            out.push(per_node.len() as u8);
            for layer in per_node {
                out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
                for &nbr in layer {
                    out.extend_from_slice(&nbr.to_le_bytes());
                }
            }
        }
        for &x in self.vecs.raw() {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Decode an index previously produced by [`Hnsw::to_bytes`]. Every
    /// read is bounds-checked; malformed input yields a [`DecodeError`],
    /// never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Hnsw, DecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let dim = r.u32()? as usize;
        let n = r.u32()? as usize;
        let cfg = HnswConfig {
            m: r.u32()? as usize,
            m0: r.u32()? as usize,
            ef_construction: r.u32()? as usize,
            ef_search: r.u32()? as usize,
            seed: r.u64()?,
        };
        if cfg.m < 2 || cfg.m0 < cfg.m || cfg.ef_construction < cfg.m {
            return Err(DecodeError::Corrupt("invalid build parameters"));
        }
        let rng = r.u64()?;
        let entry = r.u32()?;
        let max_level = r.u8()?;
        if n > 0 && entry as usize >= n {
            return Err(DecodeError::Corrupt("entry point out of range"));
        }
        let mut levels = Vec::with_capacity(n);
        for _ in 0..n {
            let l = r.u8()?;
            if l > MAX_LEVEL {
                return Err(DecodeError::Corrupt("level above cap"));
            }
            levels.push(l);
        }
        let mut links = Vec::with_capacity(n);
        for &level in &levels {
            let layer_count = r.u8()? as usize;
            if layer_count != level as usize + 1 {
                return Err(DecodeError::Corrupt("layer count disagrees with level"));
            }
            let mut per_node = Vec::with_capacity(layer_count);
            for _ in 0..layer_count {
                let cnt = r.u32()? as usize;
                if cnt > n {
                    return Err(DecodeError::Corrupt("neighbor count exceeds points"));
                }
                let mut layer = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    let nbr = r.u32()?;
                    if nbr as usize >= n {
                        return Err(DecodeError::Corrupt("neighbor id out of range"));
                    }
                    layer.push(nbr);
                }
                per_node.push(layer);
            }
            links.push(per_node);
        }
        if dim == 0 {
            return Err(DecodeError::Corrupt("zero dimension"));
        }
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(f32::from_le_bytes(
                r.take(4)?.try_into().map_err(|_| DecodeError::Truncated)?,
            ));
        }
        if r.pos != bytes.len() {
            return Err(DecodeError::Corrupt("trailing bytes"));
        }
        let vecs = VecSet::from_raw(dim, data).ok_or(DecodeError::Corrupt("vector storage"))?;
        Ok(Hnsw { cfg, vecs, links, levels, entry, max_level, rng })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().map_err(|_| DecodeError::Truncated)?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().map_err(|_| DecodeError::Truncated)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecs::exact_knn;

    fn grid_index(n: usize) -> Hnsw {
        let mut h = Hnsw::new(2, HnswConfig::default());
        for i in 0..n {
            h.insert(&[(i % 17) as f32, (i / 17) as f32]);
        }
        h
    }

    #[test]
    fn finds_exact_neighbors_on_small_grid() {
        let h = grid_index(200);
        let q = [3.2, 4.9];
        let got = h.search(&q, 5);
        let want = exact_knn(h.vectors(), &q, 5);
        assert_eq!(got, want, "small-index search should be exact");
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let h = grid_index(137);
        let bytes = h.to_bytes();
        let back = Hnsw::from_bytes(&bytes).expect("own bytes decode");
        assert_eq!(h, back);
        assert_eq!(bytes, back.to_bytes(), "re-serialization is byte-identical");
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert_eq!(Hnsw::from_bytes(b"np"), Err(DecodeError::Truncated));
        assert_eq!(Hnsw::from_bytes(b"nope"), Err(DecodeError::BadMagic));
        assert_eq!(Hnsw::from_bytes(b"XXXX\0\0\0\0"), Err(DecodeError::BadMagic));
        let mut bytes = grid_index(5).to_bytes();
        bytes[4] = 9; // version
        assert_eq!(Hnsw::from_bytes(&bytes), Err(DecodeError::BadVersion(9)));
        let good = grid_index(5).to_bytes();
        for cut in [5, 20, good.len() - 1] {
            assert!(Hnsw::from_bytes(&good[..cut]).is_err());
        }
    }

    #[test]
    fn nan_and_inf_points_do_not_panic_and_order_deterministically() {
        let mut h = Hnsw::new(2, HnswConfig::default());
        for i in 0..32 {
            h.insert(&[i as f32, (i * 3 % 7) as f32]);
        }
        h.insert(&[f32::NAN, 0.0]);
        h.insert(&[f32::INFINITY, f32::NEG_INFINITY]);
        for i in 0..16 {
            h.insert(&[0.5 + i as f32, 0.25]);
        }
        let a = h.search(&[f32::NAN, 1.0], 8);
        let b = h.search(&[f32::NAN, 1.0], 8);
        assert_eq!(a, b, "NaN query must stay deterministic");
        let c = h.search(&[1.0, 1.0], 8);
        let d = h.search(&[1.0, 1.0], 8);
        assert_eq!(c, d);
        assert!(c.iter().all(|n| n.dist.is_finite()), "finite points win over NaN/inf ones");
    }

    #[test]
    fn empty_and_k_zero() {
        let h = Hnsw::new(4, HnswConfig::default());
        assert!(h.search(&[0.0; 4], 3).is_empty());
        let h = grid_index(10);
        assert!(h.search(&[0.0, 0.0], 0).is_empty());
    }
}

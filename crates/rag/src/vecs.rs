//! Flat f32 vector storage and the brute-force exact k-NN oracle.
//!
//! [`VecSet`] stores all points of one index contiguously (`n × dim` f32,
//! row-major) so distance kernels stream cache lines instead of chasing
//! per-point allocations; [`l2_sq`] is written over 4-lane chunks so the
//! auto-vectorizer emits SIMD on every release build. [`exact_knn`] is the
//! ground-truth oracle the HNSW recall gate and the property tests compare
//! against.
//!
//! All comparisons go through [`f32::total_cmp`] (the workspace-wide
//! NaN-safe ranking convention): non-finite distances order deterministically
//! after every finite one instead of poisoning a `partial_cmp` unwrap.

use std::cmp::Ordering;

/// A candidate neighbor: distance plus point id, totally ordered.
///
/// Ordering is by distance via `total_cmp` first (so `NaN` sorts after
/// `+inf`, never panics) and by id second, which makes every heap and sort
/// in the crate fully deterministic even under distance ties.
#[derive(Debug, Clone, Copy)]
pub struct Neighbor {
    /// Squared L2 distance to the query.
    pub dist: f32,
    /// Index of the point in its [`VecSet`].
    pub id: u32,
}

impl PartialEq for Neighbor {
    fn eq(&self, other: &Self) -> bool {
        // Consistent with `Ord`: bitwise on the distance, so NaN == NaN
        // and result lists containing non-finite hits still compare equal.
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist).then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Squared L2 distance between two equal-length slices.
///
/// Four independent accumulator lanes keep the loop free of a serial
/// dependency chain; on x86-64 release builds this compiles to packed SSE.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        for l in 0..4 {
            let d = a[j + l] - b[j + l];
            lanes[l] += d * d;
        }
    }
    let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Flat row-major f32 vector storage.
#[derive(Debug, Clone, PartialEq)]
pub struct VecSet {
    dim: usize,
    data: Vec<f32>,
}

impl VecSet {
    /// Empty set of `dim`-dimensional vectors.
    pub fn new(dim: usize) -> VecSet {
        assert!(dim > 0, "vector dimension must be positive");
        VecSet { dim, data: Vec::new() }
    }

    /// Dimensionality of every stored vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one vector, returning its id. Panics on a dimension
    /// mismatch — that is a programming error, not input data.
    pub fn push(&mut self, v: &[f32]) -> u32 {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(v);
        id
    }

    /// Borrow vector `id`.
    pub fn get(&self, id: u32) -> &[f32] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Squared L2 distance between stored vector `id` and `q`.
    pub fn dist(&self, id: u32, q: &[f32]) -> f32 {
        l2_sq(self.get(id), q)
    }

    /// Raw flat storage (for serialization).
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Rebuild from flat storage (inverse of [`VecSet::raw`]).
    pub fn from_raw(dim: usize, data: Vec<f32>) -> Option<VecSet> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return None;
        }
        Some(VecSet { dim, data })
    }
}

/// Brute-force exact k-nearest-neighbors: full scan, ascending by
/// `(distance, id)`. This is the oracle the HNSW recall gate compares
/// against; O(n·dim) per query.
pub fn exact_knn(vecs: &VecSet, q: &[f32], k: usize) -> Vec<Neighbor> {
    let mut heap: std::collections::BinaryHeap<Neighbor> = std::collections::BinaryHeap::new();
    for id in 0..vecs.len() as u32 {
        let n = Neighbor { dist: vecs.dist(id, q), id };
        if heap.len() < k {
            heap.push(n);
        } else if let Some(worst) = heap.peek() {
            if n < *worst {
                heap.pop();
                heap.push(n);
            }
        }
    }
    let mut out = heap.into_vec();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| 6.0 - i as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn exact_knn_orders_by_distance_then_id() {
        let mut vs = VecSet::new(2);
        vs.push(&[0.0, 0.0]);
        vs.push(&[1.0, 0.0]);
        vs.push(&[0.0, 1.0]); // tie with id 1 at distance 1
        vs.push(&[3.0, 0.0]);
        let got = exact_knn(&vs, &[0.0, 0.0], 3);
        let ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn non_finite_distances_sort_last_and_deterministically() {
        let mut vs = VecSet::new(2);
        vs.push(&[f32::NAN, 0.0]);
        vs.push(&[1.0, 0.0]);
        vs.push(&[f32::INFINITY, 0.0]);
        vs.push(&[0.5, 0.0]);
        let a = exact_knn(&vs, &[0.0, 0.0], 4);
        let b = exact_knn(&vs, &[0.0, 0.0], 4);
        assert_eq!(a, b, "ordering must be deterministic");
        let ids: Vec<u32> = a.iter().map(|n| n.id).collect();
        // Finite distances first (0.25 then 1.0), then +inf, then NaN.
        assert_eq!(ids, vec![3, 1, 2, 0]);
    }
}

//! Property tests: HNSW recall against the brute-force oracle, and
//! bit-identical serialize → deserialize → search behavior.
//!
//! Corpora are generated from a single `u64` seed through splitmix64 (the
//! offline proptest stub has no float-vector strategies, and a seed keeps
//! failure reproduction a one-number affair anyway).

use lite_rag::{exact_knn, Hnsw, HnswConfig};
use proptest::prelude::*;

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in [-1, 1).
fn unit(state: &mut u64) -> f32 {
    ((splitmix64(state) >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
}

fn random_vec(state: &mut u64, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| unit(state)).collect()
}

/// Mildly clustered corpus: half the points huddle around a handful of
/// centers (the regime heuristic pruning exists for), half are uniform.
fn corpus(seed: u64, n: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut state = seed;
    let centers: Vec<Vec<f32>> = (0..4).map(|_| random_vec(&mut state, dim)).collect();
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                random_vec(&mut state, dim)
            } else {
                let c = &centers[(splitmix64(&mut state) % 4) as usize];
                c.iter().map(|&x| x + 0.1 * unit(&mut state)).collect()
            }
        })
        .collect()
}

fn build(points: &[Vec<f32>], dim: usize, seed: u64) -> Hnsw {
    let cfg = HnswConfig { seed, ..HnswConfig::default() };
    let mut h = Hnsw::new(dim, cfg);
    for p in points {
        h.insert(p);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Average recall@k over random queries meets the bench gate (0.95)
    /// even on these adversarially small, clustered corpora.
    #[test]
    fn recall_at_k_meets_gate(seed in any::<u64>(), n in 150usize..500, dim in 6usize..14, k in 1usize..10) {
        let points = corpus(seed, n, dim);
        let h = build(&points, dim, seed ^ 0xabcd);
        let mut state = seed ^ 0x5151;
        let queries = 16;
        let mut hit = 0usize;
        for _ in 0..queries {
            let q = random_vec(&mut state, dim);
            let approx = h.search(&q, k);
            let exact = exact_knn(h.vectors(), &q, k);
            let exact_ids: Vec<u32> = exact.iter().map(|e| e.id).collect();
            hit += approx.iter().filter(|a| exact_ids.contains(&a.id)).count();
        }
        let recall = hit as f64 / (queries * k) as f64;
        prop_assert!(recall >= 0.95, "recall@{k} = {recall:.3} on n={n} dim={dim}");
    }

    /// serialize → deserialize → search is bit-identical, and
    /// re-serialization reproduces the exact byte stream.
    #[test]
    fn roundtrip_search_is_bit_identical(seed in any::<u64>(), n in 50usize..300, dim in 4usize..12) {
        let points = corpus(seed, n, dim);
        let h = build(&points, dim, seed);
        let bytes = h.to_bytes();
        let back = Hnsw::from_bytes(&bytes).expect("own bytes decode");
        prop_assert_eq!(bytes, back.to_bytes());
        let mut state = seed ^ 0x77;
        for k in [1usize, 5, 17] {
            let q = random_vec(&mut state, dim);
            prop_assert_eq!(h.search(&q, k), back.search(&q, k));
        }
    }

    /// Incremental inserts after a roundtrip continue deterministically:
    /// the level-sampling stream state survives serialization.
    #[test]
    fn rng_state_survives_roundtrip(seed in any::<u64>(), n in 20usize..120) {
        let dim = 8;
        let points = corpus(seed, n, dim);
        let mut a = build(&points, dim, seed);
        let mut b = Hnsw::from_bytes(&a.to_bytes()).expect("own bytes decode");
        let mut state = seed ^ 0x99;
        for _ in 0..10 {
            let p = random_vec(&mut state, dim);
            a.insert(&p);
            b.insert(&p);
        }
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
    }
}

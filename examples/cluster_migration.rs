//! Environment transfer (paper RQ3.2 / Table XII).
//!
//! Trains NECS once on clusters A+B only and once on all three clusters,
//! then compares ranking quality for jobs on cluster C. Demonstrates that
//! environment features let NECS transfer across hardware, and that
//! training-environment variety helps.

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use lite_repro::lite::baselines::AnyModel;
use lite_repro::lite::experiment::{gold_times, DatasetBuilder, PredictionContext};
use lite_repro::lite::features::StageInstance;
use lite_repro::lite::necs::{Necs, NecsConfig};
use lite_repro::metrics::ranking::{ndcg_at_k, EXECUTION_CAP_S};
use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::conf::SparkConf;
use lite_repro::workloads::apps::AppId;
use lite_repro::workloads::data::SizeTier;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train(
    clusters: Vec<ClusterSpec>,
    label: &str,
) -> (lite_repro::lite::experiment::Dataset, AnyModel) {
    println!("training NECS on {label}...");
    let ds = lite_repro::lite::experiment::DatasetBuilder {
        clusters,
        ..DatasetBuilder::paper_training(4, 33)
    }
    .build();
    let refs: Vec<&StageInstance> = ds.instances.iter().collect();
    let model = Necs::train(
        &ds.registry,
        &ds.space,
        &refs,
        NecsConfig { epochs: 20, ..Default::default() },
    );
    (ds, AnyModel::Necs(model))
}

fn main() {
    let target = ClusterSpec::cluster_c();
    let variants = [
        ("clusters A+B (never saw C)", vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_b()]),
        ("all clusters", ClusterSpec::all_evaluation_clusters()),
    ];
    for (label, clusters) in variants {
        let (ds, model) = train(clusters, label);
        let mut total = 0.0;
        let mut counted = 0.0;
        for (ai, app) in AppId::all().into_iter().enumerate() {
            let data = app.dataset(SizeTier::Valid);
            let mut rng = StdRng::seed_from_u64(100 + ai as u64);
            let confs: Vec<SparkConf> = (0..25).map(|_| ds.space.sample(&mut rng)).collect();
            let gold = gold_times(&target, app, &data, &confs, 50 + ai as u64);
            let Some(ctx) = PredictionContext::warm(&ds.registry, app, &data, &target) else {
                continue;
            };
            let preds: Vec<f64> = confs
                .iter()
                .map(|c| {
                    if lite_repro::sparksim::exec::preflight(&target, c, data.bytes).is_err() {
                        EXECUTION_CAP_S * 10.0
                    } else {
                        model.predict_app(&ds.registry, &ctx, c)
                    }
                })
                .collect();
            total += ndcg_at_k(&preds, &gold, 5);
            counted += 1.0;
        }
        println!("  NDCG@5 on cluster C jobs: {:.4}\n", total / counted);
    }
    println!("(paper Table XII: training on all environments gives the best NDCG on cluster C)");
}

//! The LITE tuner running as a concurrent service (lite-serve).
//!
//! Trains a small model offline, starts the service with a worker pool and
//! a TCP front-end, serves recommendations from several client threads
//! while observed feedback triggers a background Adaptive Model Update,
//! and shows the resulting hot-swap: same request, new model version,
//! cache transparently invalidated.

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use lite_repro::lite::amu::AmuConfig;
use lite_repro::lite::experiment::DatasetBuilder;
use lite_repro::lite::necs::NecsConfig;
use lite_repro::lite::recommend::LiteTuner;
use lite_repro::obs::{Registry, Tracer};
use lite_repro::serve::{ModelSnapshot, ServeConfig, Service};
use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::exec::simulate;
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;

fn main() {
    println!("training a small model offline...");
    let ds = Arc::new(
        DatasetBuilder {
            apps: vec![AppId::Sort, AppId::KMeans, AppId::PageRank],
            clusters: vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_c()],
            tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
            confs_per_cell: 3,
            seed: 7,
        }
        .build(),
    );
    let tuner = LiteTuner::from_dataset(&ds, NecsConfig { epochs: 4, ..Default::default() }, 7);

    let registry = Registry::new();
    // The validating builder is the supported construction path: it rejects
    // impossible configs (zero queue, inverted deadlines, non-positive
    // drift thresholds) at build time instead of misbehaving at runtime.
    let config = ServeConfig::builder()
        .workers(4)
        .update_batch(16)
        .amu(AmuConfig { epochs: 1, half_batch: 64, ..Default::default() })
        .build()
        .expect("valid service config");
    let service = Service::start(
        ModelSnapshot::from_tuner(&tuner),
        ds.clone(),
        config,
        &registry,
        Tracer::disabled(),
    );
    let handle = service.handle();
    let server = lite_repro::serve::net::serve_tcp(service.handle(), "127.0.0.1:0").expect("bind");
    println!("service up: 4 workers, TCP front-end on {}\n", server.local_addr());

    // Concurrent clients: three in-process threads plus one TCP client.
    let clients: Vec<_> = (0..3)
        .map(|t| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let cluster = ClusterSpec::cluster_a();
                let data = AppId::Sort.dataset(SizeTier::Valid);
                let mut served = 0usize;
                for i in 0..40u64 {
                    if handle.recommend(AppId::Sort, &data, &cluster, 3, i % 4).is_ok() {
                        served += 1;
                    }
                }
                (t, served)
            })
        })
        .collect();
    let mut tcp =
        lite_repro::serve::ClientBuilder::new().connect(server.local_addr()).expect("connect");
    let lite_repro::serve::Response::Pong { version: pinged, .. } =
        tcp.call(&lite_repro::serve::Request::Ping).expect("ping")
    else {
        panic!("ping must answer pong")
    };
    println!("TCP ping: serving model version {pinged}");

    // Feedback loop: execute recommendations and report them back until
    // the background updater publishes a new version.
    let cluster = ClusterSpec::cluster_a();
    let data = AppId::KMeans.dataset(SizeTier::Valid);
    let plan = build_job(AppId::KMeans, &data);
    let before =
        handle.recommend(AppId::KMeans, &data, &cluster, 1, 5).expect("recommend before swap");
    println!(
        "v{}: best KMeans candidate predicted {:.1}s",
        before.version, before.ranked[0].predicted_s
    );

    let t0 = Instant::now();
    let mut round = 0u64;
    while handle.swap_count() == 0 && t0.elapsed() < Duration::from_secs(300) {
        let rec = handle.recommend(AppId::KMeans, &data, &cluster, 1, round).expect("recommend");
        let result = simulate(&cluster, &rec.ranked[0].conf, &plan, 100 + round);
        let fb = handle
            .observe(AppId::KMeans, &data, &cluster, &rec.ranked[0].conf, &result)
            .expect("observe");
        println!(
            "  round {round}: observed {:>6.1}s ({fb} feedback instances)",
            result.total_time_s
        );
        round += 1;
    }
    // Give readers a beat so the swap is visible before we query.
    while handle.version() == before.version && t0.elapsed() < Duration::from_secs(300) {
        std::thread::sleep(Duration::from_millis(10));
    }

    let after =
        handle.recommend(AppId::KMeans, &data, &cluster, 1, 5).expect("recommend after swap");
    println!(
        "\nhot-swap complete: v{} -> v{} (cache invalidated: {} candidates re-scored)",
        before.version, after.version, after.scored
    );
    println!(
        "same request, updated model: predicted {:.1}s -> {:.1}s",
        before.ranked[0].predicted_s, after.ranked[0].predicted_s
    );

    for c in clients {
        let (t, served) = c.join().expect("client thread");
        println!("client {t}: {served}/40 requests served");
    }
    println!("cache hit rate: {:.1}%", handle.cache_hit_rate() * 100.0);

    drop(tcp);
    server.shutdown();
    service.shutdown();
    println!("service drained and stopped.");
}

//! What-if knob exploration on the simulator (Figure 1 style).
//!
//! Sweeps a knob you name on the command line for a chosen application and
//! prints the execution-time curve — handy for building intuition about
//! the simulator's cost model.
//!
//! ```sh
//! cargo run --release --example knob_explorer -- PageRank spark.executor.cores
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::conf::{ConfSpace, Knob, KnobDomain, ALL_KNOBS};
use lite_repro::sparksim::exec::simulate;
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("PageRank");
    let knob_name = args.get(2).map(String::as_str).unwrap_or("spark.executor.cores");

    let app = AppId::all()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(app_name))
        .unwrap_or_else(|| {
            eprintln!("unknown app {app_name}; one of:");
            for a in AppId::all() {
                eprintln!("  {a}");
            }
            std::process::exit(1);
        });
    let knob = ALL_KNOBS.into_iter().find(|k| k.spark_name() == knob_name).unwrap_or_else(|| {
        eprintln!("unknown knob {knob_name}; one of:");
        for k in ALL_KNOBS {
            eprintln!("  {k}");
        }
        std::process::exit(1);
    });

    let space = ConfSpace::table_iv();
    let cluster = ClusterSpec::cluster_a();
    let data = app.dataset(SizeTier::Valid);
    let plan = build_job(app, &data);
    println!(
        "{app} on {:.0} MB, cluster A, sweeping {knob} (other knobs at defaults):\n",
        data.bytes as f64 / (1 << 20) as f64
    );

    let values: Vec<f64> = match *space.domain(knob) {
        KnobDomain::Bool => vec![0.0, 1.0],
        KnobDomain::Frac { min, max } => {
            (0..8).map(|i| min + (max - min) * i as f64 / 7.0).collect()
        }
        KnobDomain::Int { min, max, step } => {
            let n = ((max - min) / step).min(9);
            (0..=n).map(|i| (min + i * ((max - min) / n.max(1))) as f64).collect()
        }
    };
    let mut best = (values[0], f64::INFINITY);
    for v in values {
        let mut conf = space.default_conf();
        conf.set(&space, knob, v);
        // A touch more memory for sweeps that need allocation headroom.
        if knob != Knob::ExecutorMemoryGb {
            conf.set(&space, Knob::ExecutorMemoryGb, 2.0);
        }
        let r = simulate(&cluster, &conf, &plan, 1);
        let label = if r.ok() {
            format!("{:8.1}s", r.total_time_s)
        } else {
            format!("FAILED ({})", r.failure.unwrap().label())
        };
        let t = r.capped_time(7200.0);
        if t < best.1 {
            best = (v, t);
        }
        let bar_len = ((t / 5.0).round() as usize).min(70);
        println!("  {v:>8} | {label} {}", "#".repeat(bar_len));
    }
    println!("\nbest value: {} = {} ({:.1}s)", knob, best.0, best.1);
}

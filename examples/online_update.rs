//! The online feedback loop with Adaptive Model Update (paper Section IV,
//! Step 4 / RQ2.4).
//!
//! LITE recommends, the "user" executes the recommendation on production
//! (validation-size) data, the observed stage times flow back as target-
//! domain feedback, and once a batch accumulates NECS is fine-tuned via
//! the adversarial Adaptive Model Update.

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use lite_repro::lite::amu::AmuConfig;
use lite_repro::lite::experiment::DatasetBuilder;
use lite_repro::lite::necs::NecsConfig;
use lite_repro::lite::recommend::LiteTuner;
use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::exec::simulate;
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;

fn main() {
    let ds = DatasetBuilder::paper_training(4, 77).build();
    let mut tuner =
        LiteTuner::from_dataset(&ds, NecsConfig { epochs: 20, ..Default::default() }, 77);
    tuner.update_batch = 60;
    let cluster = ClusterSpec::cluster_c();

    println!("running the production loop until an update triggers...\n");
    let mut round = 0u64;
    let apps = [AppId::KMeans, AppId::PageRank, AppId::Terasort];
    while !tuner.update_due() {
        let app = apps[(round % 3) as usize];
        let data = app.dataset(SizeTier::Valid);
        let rec = tuner.recommend(app, &data, &cluster, round).expect("warm app");
        let result = simulate(&cluster, &rec[0].conf, &build_job(app, &data), 1000 + round);
        println!(
            "  round {round}: {app:<12} predicted {:>7.1}s, observed {:>7.1}s ({} feedback instances)",
            rec[0].predicted_s,
            result.total_time_s,
            tuner.feedback_len()
        );
        tuner.observe(app, &data, &cluster, &rec[0].conf, &result);
        round += 1;
    }

    println!(
        "\nfeedback batch full ({} instances) — running Adaptive Model Update...",
        tuner.feedback_len()
    );
    let history = tuner.update(&ds, &AmuConfig::default());
    for (e, h) in history.iter().enumerate() {
        println!(
            "  epoch {e}: prediction loss {:.4}, discriminator loss {:.4}",
            h.prediction_loss, h.discriminator_loss
        );
    }
    println!(
        "\nNECS is now fine-tuned toward the production domain (paper Table IX: NECS_u > NECS)."
    );
}

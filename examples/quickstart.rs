//! Quickstart: train LITE on small data, tune TeraSort on large data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full paper pipeline: build the offline training set on the
//! simulator (small inputs only), train NECS + fit Adaptive Candidate
//! Generation, then recommend a configuration for a 16 GB TeraSort on
//! cluster C and compare it against the Spark defaults.

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use lite_repro::lite::experiment::DatasetBuilder;
use lite_repro::lite::necs::NecsConfig;
use lite_repro::lite::recommend::LiteTuner;
use lite_repro::metrics::ranking::etr;
use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::exec::simulate;
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;

fn main() {
    // 1. Offline phase: run every app on small inputs with sampled knobs.
    println!("building offline training set (small inputs, 3 clusters)...");
    let ds = DatasetBuilder::paper_training(4, 42).build();
    println!(
        "  {} application runs -> {} stage-level instances ({} templates)",
        ds.runs.len(),
        ds.instances.len(),
        ds.registry.len()
    );

    // 2. Train NECS and fit ACG.
    println!("training NECS + fitting Adaptive Candidate Generation...");
    let tuner = LiteTuner::from_dataset(&ds, NecsConfig { epochs: 20, ..Default::default() }, 42);

    // 3. Online phase: tune TeraSort on 16 GB input, cluster C.
    let app = AppId::Terasort;
    let cluster = ClusterSpec::cluster_c();
    let data = app.dataset(SizeTier::Test);
    println!(
        "\nrecommending knobs for {app} on {:.1} GB (cluster C)...",
        data.bytes as f64 / (1 << 30) as f64
    );
    let start = std::time::Instant::now();
    let ranked = tuner.recommend(app, &data, &cluster, 7).expect("TeraSort is in the training set");
    println!("  recommendation latency: {:.2}s (paper: < 2s)", start.elapsed().as_secs_f64());
    println!("\ntop recommendation:\n{}", ranked[0].conf);

    // 4. Execute both configurations on the simulated cluster.
    let plan = build_job(app, &data);
    let t_rec = simulate(&cluster, &ranked[0].conf, &plan, 1).capped_time(7200.0);
    let t_def = simulate(&cluster, &ds.space.default_conf(), &plan, 1).capped_time(7200.0);
    println!("\ndefault configuration: {t_def:.0}s");
    println!("LITE recommendation:   {t_rec:.0}s");
    println!("execution time reduction (Eq. 9): {:.2}", etr(t_def, t_rec));
}

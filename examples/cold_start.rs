//! Cold start: tune an application LITE has never seen (paper RQ3.1).
//!
//! TriangleCount is excluded from the training set entirely — its tokens
//! and DAG operations are absent from the vocabularies. LITE instruments
//! it once on the smallest input (Section IV, Step 1), relies on the
//! `<oov>` token / oov operation for unseen vocabulary, and still
//! recommends a competitive configuration.

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use lite_repro::lite::experiment::DatasetBuilder;
use lite_repro::lite::necs::NecsConfig;
use lite_repro::lite::recommend::LiteTuner;
use lite_repro::metrics::ranking::etr;
use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::exec::simulate;
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;

fn main() {
    let held_out = AppId::TriangleCount;
    let train_apps: Vec<AppId> = AppId::all().into_iter().filter(|a| *a != held_out).collect();
    println!("training LITE without {held_out} ({} apps)...", train_apps.len());
    let ds = lite_repro::lite::experiment::DatasetBuilder {
        apps: train_apps,
        ..DatasetBuilder::paper_training(4, 9)
    }
    .build();
    let mut tuner =
        LiteTuner::from_dataset(&ds, NecsConfig { epochs: 20, ..Default::default() }, 9);

    let cluster = ClusterSpec::cluster_c();
    let data = held_out.dataset(SizeTier::Test);
    assert!(tuner.recommend(held_out, &data, &cluster, 1).is_none(), "cold app must not be warm");

    println!("cold-start recommendation (instruments {held_out} on its smallest input)...");
    let ranked = tuner.recommend_cold(held_out, &data, &cluster, 1);
    let plan = build_job(held_out, &data);
    let t_rec = simulate(&cluster, &ranked[0].conf, &plan, 2).capped_time(7200.0);
    let t_def = simulate(&cluster, &ds.space.default_conf(), &plan, 2).capped_time(7200.0);
    println!("default: {t_def:.0}s   LITE (cold): {t_rec:.0}s   ETR = {:.2}", etr(t_def, t_rec));
    println!("(paper Table X: cold-start ETR > 0.95 for most applications)");
}

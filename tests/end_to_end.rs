//! End-to-end integration: offline training → online recommendation →
//! feedback → adaptive update, across all workspace crates.

use lite_repro::lite::amu::AmuConfig;
use lite_repro::lite::experiment::{DatasetBuilder, PredictionContext};
use lite_repro::lite::necs::NecsConfig;
use lite_repro::lite::recommend::LiteTuner;
use lite_repro::metrics::ranking::etr;
use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::exec::{preflight, simulate};
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;

fn small_system() -> (lite_repro::lite::experiment::Dataset, LiteTuner) {
    let ds = lite_repro::lite::experiment::DatasetBuilder {
        apps: vec![AppId::KMeans, AppId::PageRank, AppId::Terasort, AppId::Sort],
        clusters: vec![ClusterSpec::cluster_a(), ClusterSpec::cluster_c()],
        tiers: vec![SizeTier::Train(0), SizeTier::Train(2)],
        confs_per_cell: 4,
        seed: 99,
    }
    .build();
    let tuner = LiteTuner::from_dataset(
        &ds,
        NecsConfig { epochs: 8, batch_size: 256, ..Default::default() },
        99,
    );
    (ds, tuner)
}

#[test]
fn offline_online_pipeline_beats_default_on_large_data() {
    let (ds, tuner) = small_system();
    let cluster = ClusterSpec::cluster_c();
    let mut wins = 0;
    for (i, app) in [AppId::KMeans, AppId::PageRank, AppId::Terasort].iter().enumerate() {
        let data = app.dataset(SizeTier::Test);
        let ranked = tuner.recommend(*app, &data, &cluster, i as u64).expect("warm app");
        // Every surfaced candidate passes the engine's static pre-flight,
        // or is ranked behind all feasible ones.
        assert!(preflight(&cluster, &ranked[0].conf, data.bytes).is_ok());
        let plan = build_job(*app, &data);
        let t_rec = simulate(&cluster, &ranked[0].conf, &plan, 7).capped_time(7200.0);
        let t_def = simulate(&cluster, &ds.space.default_conf(), &plan, 7).capped_time(7200.0);
        if etr(t_def, t_rec) > 0.0 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "LITE beat default on only {wins}/3 apps");
}

#[test]
fn cold_start_app_gets_feasible_recommendation() {
    let (_, mut tuner) = small_system();
    let cluster = ClusterSpec::cluster_c();
    // TriangleCount was not in the training apps.
    let data = AppId::TriangleCount.dataset(SizeTier::Valid);
    assert!(tuner.recommend(AppId::TriangleCount, &data, &cluster, 1).is_none());
    let ranked = tuner.recommend_cold(AppId::TriangleCount, &data, &cluster, 1);
    assert!(!ranked.is_empty());
    assert!(preflight(&cluster, &ranked[0].conf, data.bytes).is_ok());
    let r = simulate(&cluster, &ranked[0].conf, &build_job(AppId::TriangleCount, &data), 3);
    assert!(r.ok(), "cold recommendation failed: {:?}", r.failure);
}

#[test]
fn feedback_accumulates_and_update_runs() {
    let (ds, mut tuner) = small_system();
    tuner.update_batch = 20;
    let cluster = ClusterSpec::cluster_c();
    let data = AppId::PageRank.dataset(SizeTier::Valid);
    let mut k = 0;
    while !tuner.update_due() {
        let rec = tuner.recommend(AppId::PageRank, &data, &cluster, k).unwrap();
        let result = simulate(&cluster, &rec[0].conf, &build_job(AppId::PageRank, &data), 40 + k);
        tuner.observe(AppId::PageRank, &data, &cluster, &rec[0].conf, &result);
        k += 1;
        assert!(k < 40, "feedback never reached the update batch");
    }
    let history = tuner.update(&ds, &AmuConfig { epochs: 2, ..Default::default() });
    assert_eq!(history.len(), 2);
    assert!(history.iter().all(|h| h.prediction_loss.is_finite()));
    // Tuner still works after the update.
    let rec = tuner.recommend(AppId::PageRank, &data, &cluster, 123).unwrap();
    assert!(rec[0].predicted_s.is_finite());
}

#[test]
fn paper_training_protocol_produces_augmented_instances() {
    // The full Table V protocol at minimal sampling: every app, three
    // clusters, four tiers.
    let ds = DatasetBuilder::paper_training(1, 5).build();
    // 15 apps x 3 clusters x 4 tiers x (1 sampled + default) runs.
    assert_eq!(ds.runs.len(), 15 * 3 * 4 * 2);
    // Stage augmentation multiplies instances well beyond runs.
    assert!(ds.instances.len() > 5 * ds.runs.len());
    // Every app contributes templates.
    for app in AppId::all() {
        let data = app.dataset(SizeTier::Valid);
        let ctx = PredictionContext::warm(&ds.registry, app, &data, &ds.clusters[2]);
        assert!(ctx.is_some(), "{app} missing from registry");
    }
}

#[test]
fn recommendation_latency_is_sub_second() {
    let (_, tuner) = small_system();
    let cluster = ClusterSpec::cluster_c();
    let data = AppId::KMeans.dataset(SizeTier::Test);
    let start = std::time::Instant::now();
    let _ = tuner.recommend(AppId::KMeans, &data, &cluster, 5).unwrap();
    // Paper claims < 2 s on their hardware; even a debug build should be
    // well under that here.
    assert!(start.elapsed().as_secs_f64() < 2.0, "recommendation too slow");
}

//! Property-based invariants of the execution simulator, spanning
//! `lite-sparksim` and `lite-workloads`.

use lite_repro::sparksim::cluster::ClusterSpec;
use lite_repro::sparksim::conf::{ConfSpace, Knob, SparkConf, NUM_KNOBS};
use lite_repro::sparksim::exec::{allocate, preflight, simulate};
use lite_repro::workloads::apps::{build_job, AppId};
use lite_repro::workloads::data::SizeTier;
use proptest::prelude::*;

fn arb_conf() -> impl Strategy<Value = SparkConf> {
    proptest::collection::vec(0.0f64..1.0, NUM_KNOBS).prop_map(|u| {
        let mut arr = [0.0; NUM_KNOBS];
        arr.copy_from_slice(&u);
        ConfSpace::table_iv().decode(&arr)
    })
}

fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    prop_oneof![
        Just(ClusterSpec::cluster_a()),
        Just(ClusterSpec::cluster_b()),
        Just(ClusterSpec::cluster_c()),
    ]
}

fn arb_app() -> impl Strategy<Value = AppId> {
    (0usize..15).prop_map(|i| AppId::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_is_deterministic(conf in arb_conf(), cluster in arb_cluster(), app in arb_app(), seed in 0u64..1000) {
        let plan = build_job(app, &app.dataset(SizeTier::Train(1)));
        let a = simulate(&cluster, &conf, &plan, seed);
        let b = simulate(&cluster, &conf, &plan, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn times_are_finite_and_nonnegative(conf in arb_conf(), cluster in arb_cluster(), app in arb_app()) {
        let plan = build_job(app, &app.dataset(SizeTier::Train(2)));
        let r = simulate(&cluster, &conf, &plan, 7);
        prop_assert!(r.total_time_s.is_finite());
        prop_assert!(r.total_time_s >= 0.0);
        for st in &r.stages {
            prop_assert!(st.duration_s.is_finite() && st.duration_s >= 0.0);
            prop_assert!(st.cached_fraction >= 0.0 && st.cached_fraction <= 1.0);
        }
        prop_assert!(r.capped_time(7200.0) <= 7200.0);
        // Inner status must always be a sane model input.
        prop_assert!(r.inner_status().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn more_data_is_never_faster_when_successful(conf in arb_conf(), cluster in arb_cluster(), app in arb_app()) {
        let small = simulate(&cluster, &conf, &build_job(app, &app.dataset(SizeTier::Train(0))), 3);
        let big = simulate(&cluster, &conf, &build_job(app, &app.dataset(SizeTier::Valid)), 3);
        if small.ok() && big.ok() {
            // Generous tolerance: noise is multiplicative and independent.
            prop_assert!(big.total_time_s > 0.5 * small.total_time_s,
                "24x data ran >2x faster: {} vs {}", big.total_time_s, small.total_time_s);
        }
    }

    #[test]
    fn infeasible_allocation_implies_failed_run(conf in arb_conf(), cluster in arb_cluster(), app in arb_app()) {
        let plan = build_job(app, &app.dataset(SizeTier::Train(0)));
        let r = simulate(&cluster, &conf, &plan, 11);
        if allocate(&cluster, &conf).is_none() {
            prop_assert!(!r.ok());
        } else {
            prop_assert!(r.executors >= 1);
            prop_assert_eq!(r.slots, r.executors * conf.executor_cores());
        }
    }

    #[test]
    fn preflight_ok_implies_allocation_and_small_inputs_run(conf in arb_conf(), cluster in arb_cluster(), app in arb_app()) {
        let data = app.dataset(SizeTier::Train(0));
        if preflight(&cluster, &conf, data.bytes).is_ok() {
            prop_assert!(allocate(&cluster, &conf).is_some());
            let r = simulate(&cluster, &conf, &build_job(app, &data), 13);
            // On the smallest inputs a preflight-clean configuration must
            // execute (driver-side failures aside, which need big results).
            prop_assert!(r.failure != Some(lite_repro::sparksim::result::FailureReason::InfeasibleAllocation));
        }
    }

    #[test]
    fn event_log_roundtrips_for_any_run(conf in arb_conf(), cluster in arb_cluster(), app in arb_app()) {
        use lite_repro::sparksim::eventlog::{decode, emit, encode};
        let plan = build_job(app, &app.dataset(SizeTier::Train(1)));
        let r = simulate(&cluster, &conf, &plan, 17);
        let events = emit(&plan, &r);
        prop_assert_eq!(decode(encode(&events)).unwrap(), events);
    }

    #[test]
    fn normalized_roundtrip_for_any_conf(conf in arb_conf()) {
        let space = ConfSpace::table_iv();
        let u = conf.normalized(&space);
        let back = space.decode(&u);
        for (a, b) in conf.values().iter().zip(back.values().iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        prop_assert!(space.is_valid(&conf));
    }
}

#[test]
fn more_executors_do_not_hurt_throughput_on_wide_jobs() {
    // Deterministic directional check kept out of proptest: fixing all but
    // one knob isolates the mechanism.
    let space = ConfSpace::table_iv();
    let cluster = ClusterSpec::cluster_c();
    let plan = build_job(AppId::Sort, &AppId::Sort.dataset(SizeTier::Test));
    let mut one = space.default_conf();
    one.set(&space, Knob::ExecutorInstances, 1.0);
    let mut many = one.clone();
    many.set(&space, Knob::ExecutorInstances, 24.0);
    let t1 = simulate(&cluster, &one, &plan, 5).capped_time(7200.0);
    let t24 = simulate(&cluster, &many, &plan, 5).capped_time(7200.0);
    assert!(t24 < t1, "24 executors {t24} not faster than 1 executor {t1}");
}

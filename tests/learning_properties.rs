//! Property-based invariants of the learning substrates (`lite-nn`,
//! `lite-forest`, `lite-bayesopt`, `lite-metrics`) as used by the core.

use lite_repro::bayesopt::gp::{GaussianProcess, GpConfig};
use lite_repro::forest::cart::TreeConfig;
use lite_repro::forest::RegressionTree;
use lite_repro::metrics::ranking::{hr_at_k, ndcg_at_k, spearman};
use lite_repro::metrics::wilcoxon_signed_rank;
use lite_repro::nn::tape::{Params, Tape};
use lite_repro::nn::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranking_metrics_are_bounded(scores in finite_vec(6..40), k in 1usize..10) {
        let gold: Vec<f64> = (0..scores.len()).map(|i| i as f64).collect();
        let hr = hr_at_k(&scores, &gold, k);
        let ndcg = ndcg_at_k(&scores, &gold, k);
        prop_assert!((0.0..=1.0).contains(&hr));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ndcg));
        // Perfect prediction is always perfect.
        prop_assert_eq!(hr_at_k(&gold, &gold, k), 1.0);
        prop_assert!((ndcg_at_k(&gold, &gold, k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_is_bounded_and_symmetric(a in finite_vec(3..30)) {
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        prop_assert!((spearman(&a, &b) - 1.0).abs() < 1e-9, "monotone map must give rho=1");
        let c: Vec<f64> = a.iter().rev().cloned().collect();
        let r = spearman(&a, &c);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((spearman(&a, &c) - spearman(&c, &a)).abs() < 1e-9);
    }

    #[test]
    fn wilcoxon_p_value_is_a_probability(a in finite_vec(2..40), delta in -5.0f64..5.0) {
        let b: Vec<f64> = a.iter().map(|v| v + delta).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        // Rank sums partition n(n+1)/2.
        let total = r.n * (r.n + 1) / 2;
        prop_assert!((r.w_plus + r.w_minus - total as f64).abs() < 1e-9);
    }

    #[test]
    fn tree_predictions_stay_in_target_hull(
        ys in proptest::collection::vec(-50.0f64..50.0, 8..60),
        probe in -100.0f64..100.0,
    ) {
        let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(&x, &ys, &TreeConfig::default(), &mut rng);
        let (lo, hi) = ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
        let p = tree.predict(&[probe]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn gp_variance_is_nonnegative_and_interpolation_tight(
        xs in proptest::collection::vec(0.0f64..1.0, 3..12),
        probe in -0.5f64..1.5,
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let ys: Vec<f64> = xs.iter().map(|v| (v * 7.0).sin()).collect();
        let gp = GaussianProcess::fit(pts.clone(), &ys, GpConfig::default());
        let (_, var) = gp.predict(&[probe]);
        prop_assert!(var >= 0.0);
        for (p, y) in pts.iter().zip(ys.iter()) {
            let (mu, _) = gp.predict(p);
            prop_assert!((mu - y).abs() < 0.35, "interpolation off: {mu} vs {y}");
        }
        prop_assert!(gp.expected_improvement(&[probe], 0.0, 0.0) >= 0.0);
    }

    #[test]
    fn autograd_matches_finite_differences_on_random_dense_nets(
        seed in 0u64..200,
        rows in 1usize..4,
    ) {
        let mut rng = lite_repro::nn::init::rng(seed);
        let mut params = Params::new();
        let w = params.add("w", lite_repro::nn::init::xavier(3, 2, &mut rng));
        let x = lite_repro::nn::init::normal(rows, 3, 1.0, &mut rng);
        let target = Tensor::zeros(rows, 2);

        let run = |params: &Params| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.param(params, w);
            let h = tape.matmul(xv, wv);
            let h = tape.tanh(h);
            let loss = tape.mse_loss(h, &target);
            tape.value(loss).get(0, 0)
        };
        params.zero_grads();
        {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.param(&params, w);
            let h = tape.matmul(xv, wv);
            let h = tape.tanh(h);
            let loss = tape.mse_loss(h, &target);
            tape.backward(loss, &mut params);
        }
        let eps = 1e-3f32;
        for e in 0..6 {
            let orig = params.value(w).data()[e];
            params.value_mut(w).data_mut()[e] = orig + eps;
            let f1 = run(&params);
            params.value_mut(w).data_mut()[e] = orig - eps;
            let f2 = run(&params);
            params.value_mut(w).data_mut()[e] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let got = params.grad(w).data()[e];
            prop_assert!((numeric - got).abs() <= 2e-2 * (1.0 + numeric.abs().max(got.abs())),
                "elem {e}: fd {numeric} vs autograd {got}");
        }
    }
}

# Convenience targets; `make verify` is the full pre-merge gate.

.PHONY: verify fmt lint build test bench quick loadtest chaos scrape tail demo analyze rag prof benchdiff lsp

verify:
	./scripts/verify.sh

fmt:
	cargo fmt --all

lint:
	cargo clippy --workspace --all-targets -- -D warnings

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench -p lite-bench

# Smoke-run every experiment binary with shrunken settings.
quick:
	LITE_BENCH_QUICK=1 cargo run --release -p lite-bench --bin fig01_knob_surface
	LITE_BENCH_QUICK=1 cargo run --release -p lite-bench --bin fig09_augmentation

# Load-test the tuning service (lite-serve): N client threads, batched
# inference, at least one background hot-swap; manifest goes to
# results/serve_loadtest.manifest.jsonl.
loadtest:
	cargo run --release -p lite-bench --bin serve_loadtest

# Chaos scenario: the service under an armed fault injector (torn frames,
# updater panics, failed swaps, scoring failures, simulator wounds) with
# retrying circuit-breaking clients; fails on any permanently lost request
# or Internal error. Manifest goes to results/chaos_loadtest.manifest.jsonl.
chaos:
	cargo run --release -p lite-bench --bin chaos_loadtest

# Telemetry-plane scenario: scrape the stats/metrics/trace/health admin
# ops under recommend traffic while induced prediction drift triggers a
# hot-swap; writes results/telemetry_scrape.{manifest.jsonl,prom,trace.json}.
scrape:
	cargo run --release -p lite-bench --bin telemetry_scrape

# Tail-forensics scenario: traced load against the serve plane, per-phase
# latency attribution, slow-request exemplar capture, and the tracing
# overhead gate (<5% vs an untraced server); writes
# results/tail_forensics.{manifest.jsonl,trace.json}.
tail:
	cargo run --release -p lite-bench --bin tail_forensics

# Static vs dynamic cold-start extraction (plus the incremental
# re-analysis latency section): wall-time, StageCode equivalence and the
# editor-loop p99 budget across all 15 workloads; manifest goes to
# results/analyze_bench.manifest.jsonl.
analyze:
	cargo run --release -p lite-bench --bin analyze_bench

# Build the LSP server binary and run its scripted stdio session test.
# Wire the built binary into an editor as a language server command:
# target/release/lite-lsp (stdio transport).
lsp:
	cargo build --release -p lite-lsp
	LITE_LSP_QUICK=1 cargo test --release -q -p lite-lsp --test session

# ANN retrieval benchmark: 120k-point index recall/latency/serde gates,
# then the leave-one-app-out cold-start head-to-head (zero-execution RAG
# vs default conf, RAG-seeded vs full-budget ACG); manifest goes to
# results/rag_bench.manifest.jsonl.
rag:
	cargo run --release -p lite-bench --bin rag_bench

# Profiling plane: run the <5% overhead gate for the sampling profiler,
# then refresh the loadtest flamegraph artifacts
# (results/serve_loadtest.{flame.svg,folded}).
prof:
	cargo test --release -p lite-obs --test prof_overhead
	cargo run --release -p lite-bench --bin serve_loadtest

# Compare the two newest states of a manifest: BASE/CAND default to the
# loadtest manifest compared against itself (a smoke of the tool);
# override on the command line, e.g.
#   make benchdiff BASE=old.jsonl CAND=results/serve_loadtest.manifest.jsonl
BASE ?= results/serve_loadtest.manifest.jsonl
CAND ?= results/serve_loadtest.manifest.jsonl
benchdiff:
	cargo run --release -p benchdiff -- $(BASE) $(CAND)

# Interactive end-to-end demo of the tuning service example.
demo:
	cargo run --release --example tuning_service

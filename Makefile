# Convenience targets; `make verify` is the full pre-merge gate.

.PHONY: verify fmt lint build test bench quick loadtest

verify:
	./scripts/verify.sh

fmt:
	cargo fmt --all

lint:
	cargo clippy --workspace --all-targets -- -D warnings

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo bench -p lite-bench

# Smoke-run every experiment binary with shrunken settings.
quick:
	LITE_BENCH_QUICK=1 cargo run --release -p lite-bench --bin fig01_knob_surface
	LITE_BENCH_QUICK=1 cargo run --release -p lite-bench --bin fig09_augmentation

# Load-test the tuning service (lite-serve): N client threads, batched
# inference, at least one background hot-swap; manifest goes to
# results/serve_loadtest.manifest.jsonl.
loadtest:
	cargo run --release -p lite-bench --bin serve_loadtest
